//! Violation campaigns: Table 1 and the Venn distributions of Figures 2–3.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use holes_compiler::{BackendKind, CompilerConfig, OptLevel, Personality};
use holes_core::json::Json;
use holes_core::{Conjecture, Violation};

use crate::fault::{self, FaultPolicy, SubjectFault, SubjectOutcome};
use crate::par;
use crate::Subject;

/// One violation found during a campaign, with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationRecord {
    /// Seed of the program that exposed the violation.
    pub seed: u64,
    /// Index of the subject in the campaign pool.
    pub subject: usize,
    /// Optimization level the violation was observed at.
    pub level: OptLevel,
    /// The violation itself.
    pub violation: Violation,
}

/// The result of running one personality's campaign over a pool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignResult {
    /// Every violation observation (one per level it occurs at).
    pub records: Vec<ViolationRecord>,
    /// Number of programs tested.
    pub programs: usize,
    /// Levels tested.
    pub levels: Vec<OptLevel>,
    /// Subjects whose evaluation faulted and was contained (empty on the
    /// default no-fault path; see [`crate::fault`]). Faulted subjects
    /// contribute no [`ViolationRecord`]s but are counted, never dropped.
    pub faults: Vec<SubjectFault>,
}

/// A unique violation: the paper treats violations at different program lines
/// as distinct and counts one entry per (program, conjecture, line, variable)
/// across levels. The variable name is the record's shared `Arc<str>`, so
/// building a key never allocates.
pub type UniqueKey = (usize, Conjecture, u32, Arc<str>);

/// The owned unique-violation key of a record (shared by the triage and
/// report dedup paths and the streaming [`CampaignTallies`] accumulator).
pub fn unique_key(record: &ViolationRecord) -> UniqueKey {
    (
        record.subject,
        record.violation.conjecture,
        record.violation.line,
        record.violation.variable.clone(),
    )
}

/// [`UniqueKey`] borrowing the variable name from its record: the one-off
/// aggregation queries ([`CampaignResult::unique`], `venn`) build one key
/// per record, so even the `Arc` bump is avoidable.
type UniqueKeyRef<'a> = (usize, Conjecture, u32, &'a str);

fn unique_key_ref(record: &ViolationRecord) -> UniqueKeyRef<'_> {
    (
        record.subject,
        record.violation.conjecture,
        record.violation.line,
        record.violation.variable.as_ref(),
    )
}

/// Every aggregate the campaign renderers need, built by **one pass** over
/// the records — as a batch ([`CampaignResult::tallies`]) or incrementally
/// ([`CampaignTallies::add`]), which is how the streaming `holes report`
/// path folds shard files record-by-record without materializing them.
///
/// Memory is proportional to the number of *unique* violations (plus the
/// per-cell count table), never to the number of records. Both
/// [`CampaignResult::table1`] and [`CampaignResult::summary_json`] render
/// from one of these, so the accumulator is byte-identical to the record
/// re-scanning aggregation it replaced by construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignTallies {
    levels: Vec<OptLevel>,
    programs: usize,
    records: usize,
    /// `per_cell[(conjecture, level)]` — the Table 1 cells.
    per_cell: BTreeMap<(Conjecture, OptLevel), usize>,
    /// Per unique violation, the set of levels it reproduces at (drives the
    /// `unique` row, the Venn distribution, and the at-all-levels count).
    per_violation: BTreeMap<UniqueKey, BTreeSet<OptLevel>>,
    /// Per conjecture, the subjects with at least one violation.
    dirty: BTreeMap<Conjecture, BTreeSet<usize>>,
    /// Subjects whose evaluation faulted (see [`crate::fault`]); 0 on the
    /// default no-fault path.
    faulted: usize,
}

impl CampaignTallies {
    /// An empty accumulator for a campaign over `programs` subjects at
    /// `levels`.
    pub fn new(levels: Vec<OptLevel>, programs: usize) -> CampaignTallies {
        CampaignTallies {
            levels,
            programs,
            records: 0,
            per_cell: BTreeMap::new(),
            per_violation: BTreeMap::new(),
            dirty: BTreeMap::new(),
            faulted: 0,
        }
    }

    /// Fold one contained subject fault in (the streaming `holes report`
    /// path calls this per fault line).
    pub fn add_fault(&mut self) {
        self.faulted += 1;
    }

    /// Number of faulted subjects folded in.
    pub fn faulted(&self) -> usize {
        self.faulted
    }

    /// Fold one violation record in. Order-independent: any interleaving of
    /// the same records produces the same tallies.
    pub fn add(&mut self, record: &ViolationRecord) {
        self.records += 1;
        let conjecture = record.violation.conjecture;
        *self.per_cell.entry((conjecture, record.level)).or_insert(0) += 1;
        self.per_violation
            .entry(unique_key(record))
            .or_default()
            .insert(record.level);
        self.dirty
            .entry(conjecture)
            .or_default()
            .insert(record.subject);
    }

    /// Number of records folded in.
    pub fn records(&self) -> usize {
        self.records
    }

    /// Number of programs the campaign covered.
    pub fn programs(&self) -> usize {
        self.programs
    }

    /// One Table 1 cell.
    pub fn count_at(&self, conjecture: Conjecture, level: OptLevel) -> usize {
        self.per_cell
            .get(&(conjecture, level))
            .copied()
            .unwrap_or(0)
    }

    /// Table 1's unique row for one conjecture.
    pub fn unique(&self, conjecture: Conjecture) -> usize {
        self.per_violation
            .keys()
            .filter(|key| key.1 == conjecture)
            .count()
    }

    /// Programs with no violation at all for a conjecture.
    pub fn clean_programs(&self, conjecture: Conjecture) -> usize {
        let dirty = self.dirty.get(&conjecture).map_or(0, BTreeSet::len);
        self.programs.saturating_sub(dirty)
    }

    /// The Venn distribution of Figures 2–3.
    pub fn venn(&self) -> BTreeMap<Vec<OptLevel>, usize> {
        let mut venn: BTreeMap<Vec<OptLevel>, usize> = BTreeMap::new();
        for levels in self.per_violation.values() {
            let key: Vec<OptLevel> = levels.iter().copied().collect();
            *venn.entry(key).or_insert(0) += 1;
        }
        venn
    }

    /// The unique violations folded in so far, in ascending [`UniqueKey`]
    /// order, each with the set of levels it reproduces at — the seam the
    /// baseline recorder ([`crate::baseline`]) and the SARIF/JUnit report
    /// emitters ([`crate::report::sarif`], [`crate::report::junit`]) read
    /// fingerprints from. Ascending key order makes every consumer
    /// deterministic by construction, independent of fold order.
    pub fn unique_violations(&self) -> impl Iterator<Item = (&UniqueKey, &BTreeSet<OptLevel>)> {
        self.per_violation.iter()
    }

    /// Violations that occur at all tested levels.
    pub fn at_all_levels(&self) -> usize {
        self.per_violation
            .values()
            .filter(|levels| levels.len() == self.levels.len())
            .count()
    }

    /// Render Table 1 (same bytes as [`CampaignResult::table1`]).
    pub fn table1(&self) -> String {
        let mut out = String::from("level      C1      C2      C3\n");
        for &level in &self.levels {
            out.push_str(&format!(
                "{:<8} {:>6} {:>6} {:>6}\n",
                level.flag(),
                self.count_at(Conjecture::C1, level),
                self.count_at(Conjecture::C2, level),
                self.count_at(Conjecture::C3, level),
            ));
        }
        out.push_str(&format!(
            "{:<8} {:>6} {:>6} {:>6}\n",
            "unique",
            self.unique(Conjecture::C1),
            self.unique(Conjecture::C2),
            self.unique(Conjecture::C3),
        ));
        out
    }

    /// The machine-readable summary (same bytes as
    /// [`CampaignResult::summary_json`]).
    pub fn summary_json(&self) -> Json {
        let per_conjecture = |f: &dyn Fn(Conjecture) -> usize| {
            Json::Obj(
                Conjecture::ALL
                    .iter()
                    .map(|&c| (c.to_string(), Json::from_usize(f(c))))
                    .collect(),
            )
        };
        let table1 = self
            .levels
            .iter()
            .map(|&level| {
                (
                    level.flag().to_owned(),
                    per_conjecture(&|c| self.count_at(c, level)),
                )
            })
            .collect::<Vec<_>>();
        let venn = self
            .venn()
            .into_iter()
            .map(|(levels, count)| {
                Json::Obj(vec![
                    (
                        "levels".to_owned(),
                        Json::Arr(levels.iter().map(|l| Json::str(l.flag())).collect()),
                    ),
                    ("count".to_owned(), Json::from_usize(count)),
                ])
            })
            .collect();
        let mut pairs = vec![
            ("programs".to_owned(), Json::from_usize(self.programs)),
            (
                "levels".to_owned(),
                Json::Arr(self.levels.iter().map(|l| Json::str(l.flag())).collect()),
            ),
            ("table1".to_owned(), Json::Obj(table1)),
            ("unique".to_owned(), per_conjecture(&|c| self.unique(c))),
            (
                "clean_programs".to_owned(),
                per_conjecture(&|c| self.clean_programs(c)),
            ),
            (
                "at_all_levels".to_owned(),
                Json::from_usize(self.at_all_levels()),
            ),
            ("venn".to_owned(), Json::Arr(venn)),
        ];
        // Emitted only when faults occurred, so no-fault summaries stay
        // byte-identical to the pre-containment format.
        if self.faulted > 0 {
            pairs.push(("faulted".to_owned(), Json::from_usize(self.faulted)));
        }
        Json::Obj(pairs)
    }
}

impl CampaignResult {
    /// Per-level violation counts for one conjecture (one column pair of
    /// Table 1).
    pub fn count_at(&self, conjecture: Conjecture, level: OptLevel) -> usize {
        self.records
            .iter()
            .filter(|r| r.level == level && r.violation.conjecture == conjecture)
            .count()
    }

    /// Unique violations (counted once even when they occur at several
    /// levels) for one conjecture — Table 1's last row.
    pub fn unique(&self, conjecture: Conjecture) -> usize {
        self.unique_keys(conjecture).len()
    }

    fn unique_keys(&self, conjecture: Conjecture) -> BTreeSet<UniqueKeyRef<'_>> {
        self.records
            .iter()
            .filter(|r| r.violation.conjecture == conjecture)
            .map(unique_key_ref)
            .collect()
    }

    /// Number of programs with no violation at all for a conjecture (the
    /// "no violations in N out of 1000 programs" figure of §5.1).
    pub fn clean_programs(&self, conjecture: Conjecture) -> usize {
        let dirty: BTreeSet<usize> = self
            .records
            .iter()
            .filter(|r| r.violation.conjecture == conjecture)
            .map(|r| r.subject)
            .collect();
        self.programs.saturating_sub(dirty.len())
    }

    /// The Venn distribution of Figures 2–3: for every unique violation, the
    /// set of levels it reproduces at; returns counts per level-set.
    pub fn venn(&self) -> BTreeMap<Vec<OptLevel>, usize> {
        let mut per_violation: BTreeMap<UniqueKeyRef<'_>, BTreeSet<OptLevel>> = BTreeMap::new();
        for r in &self.records {
            per_violation
                .entry(unique_key_ref(r))
                .or_default()
                .insert(r.level);
        }
        let mut venn: BTreeMap<Vec<OptLevel>, usize> = BTreeMap::new();
        for levels in per_violation.values() {
            let key: Vec<OptLevel> = levels.iter().copied().collect();
            *venn.entry(key).or_insert(0) += 1;
        }
        venn
    }

    /// Violations that occur at *all* tested levels (a headline number of
    /// §5.2).
    pub fn at_all_levels(&self) -> usize {
        self.venn()
            .iter()
            .filter(|(levels, _)| levels.len() == self.levels.len())
            .map(|(_, count)| *count)
            .sum()
    }

    /// Fold every record into a [`CampaignTallies`]: the one pass both
    /// renderers below share.
    pub fn tallies(&self) -> CampaignTallies {
        let mut tallies = CampaignTallies::new(self.levels.clone(), self.programs);
        for record in &self.records {
            tallies.add(record);
        }
        for _ in &self.faults {
            tallies.add_fault();
        }
        tallies
    }

    /// Render Table 1 rows (one per level plus the unique row) as plain
    /// text. Built from one pass over the records (see
    /// [`CampaignResult::tallies`]) instead of re-scanning them per cell.
    pub fn table1(&self) -> String {
        self.tallies().table1()
    }

    /// The machine-readable summary of the campaign: Table 1 (per-level and
    /// unique counts), the per-conjecture clean-program counts, and the
    /// Venn distribution of Figures 2–3. Deterministic — equal results
    /// always serialize to equal bytes; built from the same one-pass
    /// [`CampaignTallies`] as [`CampaignResult::table1`].
    pub fn summary_json(&self) -> Json {
        self.tallies().summary_json()
    }
}

/// One subject's records over every level, in level order — the unit of work
/// the campaign drivers and the regression studies share.
pub(crate) fn subject_records(
    subject: &Subject,
    index: usize,
    personality: Personality,
    version: usize,
    backend: BackendKind,
    levels: &[OptLevel],
) -> Vec<ViolationRecord> {
    let mut records = Vec::new();
    for &level in levels {
        let config = CompilerConfig::new(personality, level)
            .with_version(version)
            .with_backend(backend);
        for violation in subject.violations(&config) {
            records.push(ViolationRecord {
                seed: subject.seed,
                subject: index,
                level,
                violation,
            });
        }
    }
    records
}

/// Run the campaign: test every subject at every level of a personality's
/// version against all three conjectures, on the default register backend.
///
/// Subjects are evaluated in parallel (they are independent), and records
/// are reassembled in (subject, level) order, so the result — including
/// every rendered table — is byte-identical to [`run_campaign_serial`].
pub fn run_campaign(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
) -> CampaignResult {
    run_campaign_on(subjects, personality, version, BackendKind::Reg)
}

/// [`run_campaign`] targeting an explicit backend: the same campaign, with
/// every subject compiled for `backend` (so a stack-VM campaign exercises
/// the spill-induced violation classes the register backend cannot
/// express).
pub fn run_campaign_on(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
    backend: BackendKind,
) -> CampaignResult {
    run_campaign_on_with_policy(
        subjects,
        personality,
        version,
        backend,
        &FaultPolicy::default(),
    )
}

/// [`run_campaign_on`] with subject-level fault containment: each subject
/// is evaluated under [`fault::contain`], so a panic or (under a fuel
/// limit) a runaway program becomes a [`SubjectFault`] in the result's
/// `faults` list instead of crashing the campaign. On the default policy
/// the result is byte-identical to [`run_campaign_on`].
pub fn run_campaign_on_with_policy(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
    backend: BackendKind,
    policy: &FaultPolicy,
) -> CampaignResult {
    let levels = personality.levels().to_vec();
    let per_subject = par::par_map(subjects, |index, subject| {
        fault::contain(policy, subject.seed, index, || {
            // A fuel limit is carried on the subject; the clone shares the
            // cache, so no artifact is recomputed.
            let limited;
            let subject = if policy.fuel_limit.is_some() {
                limited = subject.clone().with_fuel_limit(policy.fuel_limit);
                &limited
            } else {
                subject
            };
            subject_records(subject, index, personality, version, backend, &levels)
        })
    });
    let mut records = Vec::new();
    let mut faults = Vec::new();
    for outcome in per_subject {
        match outcome {
            SubjectOutcome::Completed(subject_records) => records.extend(subject_records),
            SubjectOutcome::Faulted(fault) => faults.push(fault),
        }
    }
    CampaignResult {
        records,
        programs: subjects.len(),
        levels,
        faults,
    }
}

/// The serial reference implementation of [`run_campaign`]; the tests and
/// benchmarks hold the parallel driver to byte-identical output.
pub fn run_campaign_serial(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
) -> CampaignResult {
    let levels = personality.levels().to_vec();
    let mut result = CampaignResult {
        records: Vec::new(),
        programs: subjects.len(),
        levels: levels.clone(),
        faults: Vec::new(),
    };
    for (index, subject) in subjects.iter().enumerate() {
        result.records.extend(subject_records(
            subject,
            index,
            personality,
            version,
            BackendKind::Reg,
            &levels,
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject_pool;

    #[test]
    fn campaign_produces_consistent_counts() {
        let subjects = subject_pool(1000, 6);
        let result = run_campaign(&subjects, Personality::Ccg, Personality::Ccg.trunk());
        assert_eq!(result.programs, 6);
        // Every per-level count is at least the number reflected in records.
        let mut total = 0usize;
        for c in Conjecture::ALL {
            for l in &result.levels {
                total += result.count_at(c, *l);
            }
        }
        assert_eq!(total, result.records.len());
        // Unique counts never exceed summed per-level counts.
        for c in Conjecture::ALL {
            let summed: usize = result.levels.iter().map(|l| result.count_at(c, *l)).sum();
            assert!(result.unique(c) <= summed.max(1));
            assert!(result.clean_programs(c) <= result.programs);
        }
        // The Venn distribution partitions the unique violations.
        let venn_total: usize = result.venn().values().sum();
        let unique_total: usize = Conjecture::ALL.iter().map(|c| result.unique(*c)).sum();
        assert_eq!(venn_total, unique_total);
        assert!(result.at_all_levels() <= venn_total);
        let table = result.table1();
        assert!(table.contains("unique"));
    }

    #[test]
    fn tallies_agree_with_the_record_rescanning_queries() {
        let subjects = subject_pool(1030, 8);
        for personality in [Personality::Ccg, Personality::Lcc] {
            let result = run_campaign(&subjects, personality, personality.trunk());
            let tallies = result.tallies();
            assert_eq!(tallies.records(), result.records.len());
            assert_eq!(tallies.programs(), result.programs);
            for c in Conjecture::ALL {
                for &l in &result.levels {
                    assert_eq!(tallies.count_at(c, l), result.count_at(c, l), "{c} {l}");
                }
                assert_eq!(tallies.unique(c), result.unique(c), "{c}");
                assert_eq!(tallies.clean_programs(c), result.clean_programs(c), "{c}");
            }
            assert_eq!(tallies.venn(), result.venn());
            assert_eq!(tallies.at_all_levels(), result.at_all_levels());
            // The incremental accumulator is order-independent: folding the
            // records in reverse produces the same tallies (and bytes).
            let mut reversed = CampaignTallies::new(result.levels.clone(), result.programs);
            for record in result.records.iter().rev() {
                reversed.add(record);
            }
            assert_eq!(reversed.table1(), result.table1());
            assert_eq!(
                reversed.summary_json().to_pretty(),
                result.summary_json().to_pretty()
            );
            assert_ne!(reversed.records(), 0, "campaign produced no records");
        }
    }

    #[test]
    fn parallel_campaign_is_byte_identical_to_serial() {
        let subjects = subject_pool(1020, 8);
        for personality in [Personality::Ccg, Personality::Lcc] {
            // Fresh caches per driver so neither run can borrow the other's
            // artifacts.
            let fresh: Vec<Subject> = subjects.iter().map(Subject::with_fresh_cache).collect();
            let parallel = run_campaign(&fresh, personality, personality.trunk());
            let serial = run_campaign_serial(&subjects, personality, personality.trunk());
            assert_eq!(parallel.records, serial.records);
            assert_eq!(parallel.table1(), serial.table1());
            assert_eq!(parallel.venn(), serial.venn());
        }
    }

    #[test]
    fn defect_free_version_would_be_clean() {
        let subjects = subject_pool(1010, 3);
        for subject in &subjects {
            for &level in Personality::Ccg.levels() {
                let cfg = CompilerConfig::new(Personality::Ccg, level).without_defects();
                assert!(
                    subject.violations(&cfg).is_empty(),
                    "defect-free compiler produced violations"
                );
            }
        }
    }
}
