//! Violation campaigns: Table 1 and the Venn distributions of Figures 2–3.

use std::collections::{BTreeMap, BTreeSet};

use holes_compiler::{BackendKind, CompilerConfig, OptLevel, Personality};
use holes_core::json::Json;
use holes_core::{Conjecture, Violation};

use crate::par;
use crate::Subject;

/// One violation found during a campaign, with its provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ViolationRecord {
    /// Seed of the program that exposed the violation.
    pub seed: u64,
    /// Index of the subject in the campaign pool.
    pub subject: usize,
    /// Optimization level the violation was observed at.
    pub level: OptLevel,
    /// The violation itself.
    pub violation: Violation,
}

/// The result of running one personality's campaign over a pool.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignResult {
    /// Every violation observation (one per level it occurs at).
    pub records: Vec<ViolationRecord>,
    /// Number of programs tested.
    pub programs: usize,
    /// Levels tested.
    pub levels: Vec<OptLevel>,
}

/// A unique violation: the paper treats violations at different program lines
/// as distinct and counts one entry per (program, conjecture, line, variable)
/// across levels.
pub type UniqueKey = (usize, Conjecture, u32, String);

/// The owned unique-violation key of a record (shared by the triage and
/// report dedup paths).
pub fn unique_key(record: &ViolationRecord) -> UniqueKey {
    (
        record.subject,
        record.violation.conjecture,
        record.violation.line,
        record.violation.variable.clone(),
    )
}

/// [`UniqueKey`] borrowing the variable name from its record: the table and
/// Venn aggregations build one key per record per cell, so cloning the
/// `String` there is pure overhead.
type UniqueKeyRef<'a> = (usize, Conjecture, u32, &'a str);

fn unique_key_ref(record: &ViolationRecord) -> UniqueKeyRef<'_> {
    (
        record.subject,
        record.violation.conjecture,
        record.violation.line,
        record.violation.variable.as_str(),
    )
}

impl CampaignResult {
    /// Per-level violation counts for one conjecture (one column pair of
    /// Table 1).
    pub fn count_at(&self, conjecture: Conjecture, level: OptLevel) -> usize {
        self.records
            .iter()
            .filter(|r| r.level == level && r.violation.conjecture == conjecture)
            .count()
    }

    /// Unique violations (counted once even when they occur at several
    /// levels) for one conjecture — Table 1's last row.
    pub fn unique(&self, conjecture: Conjecture) -> usize {
        self.unique_keys(conjecture).len()
    }

    fn unique_keys(&self, conjecture: Conjecture) -> BTreeSet<UniqueKeyRef<'_>> {
        self.records
            .iter()
            .filter(|r| r.violation.conjecture == conjecture)
            .map(unique_key_ref)
            .collect()
    }

    /// Number of programs with no violation at all for a conjecture (the
    /// "no violations in N out of 1000 programs" figure of §5.1).
    pub fn clean_programs(&self, conjecture: Conjecture) -> usize {
        let dirty: BTreeSet<usize> = self
            .records
            .iter()
            .filter(|r| r.violation.conjecture == conjecture)
            .map(|r| r.subject)
            .collect();
        self.programs.saturating_sub(dirty.len())
    }

    /// The Venn distribution of Figures 2–3: for every unique violation, the
    /// set of levels it reproduces at; returns counts per level-set.
    pub fn venn(&self) -> BTreeMap<Vec<OptLevel>, usize> {
        let mut per_violation: BTreeMap<UniqueKeyRef<'_>, BTreeSet<OptLevel>> = BTreeMap::new();
        for r in &self.records {
            per_violation
                .entry(unique_key_ref(r))
                .or_default()
                .insert(r.level);
        }
        let mut venn: BTreeMap<Vec<OptLevel>, usize> = BTreeMap::new();
        for levels in per_violation.values() {
            let key: Vec<OptLevel> = levels.iter().copied().collect();
            *venn.entry(key).or_insert(0) += 1;
        }
        venn
    }

    /// Violations that occur at *all* tested levels (a headline number of
    /// §5.2).
    pub fn at_all_levels(&self) -> usize {
        self.venn()
            .iter()
            .filter(|(levels, _)| levels.len() == self.levels.len())
            .map(|(_, count)| *count)
            .sum()
    }

    /// Render Table 1 rows (one per level plus the unique row) as plain text.
    pub fn table1(&self) -> String {
        let mut out = String::from("level      C1      C2      C3\n");
        for &level in &self.levels {
            out.push_str(&format!(
                "{:<8} {:>6} {:>6} {:>6}\n",
                level.flag(),
                self.count_at(Conjecture::C1, level),
                self.count_at(Conjecture::C2, level),
                self.count_at(Conjecture::C3, level),
            ));
        }
        out.push_str(&format!(
            "{:<8} {:>6} {:>6} {:>6}\n",
            "unique",
            self.unique(Conjecture::C1),
            self.unique(Conjecture::C2),
            self.unique(Conjecture::C3),
        ));
        out
    }

    /// The machine-readable summary of the campaign: Table 1 (per-level and
    /// unique counts), the per-conjecture clean-program counts, and the
    /// Venn distribution of Figures 2–3. Deterministic — equal results
    /// always serialize to equal bytes.
    pub fn summary_json(&self) -> Json {
        let per_conjecture = |f: &dyn Fn(Conjecture) -> usize| {
            Json::Obj(
                Conjecture::ALL
                    .iter()
                    .map(|&c| (c.to_string(), Json::from_usize(f(c))))
                    .collect(),
            )
        };
        let table1 = self
            .levels
            .iter()
            .map(|&level| {
                (
                    level.flag().to_owned(),
                    per_conjecture(&|c| self.count_at(c, level)),
                )
            })
            .collect::<Vec<_>>();
        let venn = self
            .venn()
            .into_iter()
            .map(|(levels, count)| {
                Json::Obj(vec![
                    (
                        "levels".to_owned(),
                        Json::Arr(levels.iter().map(|l| Json::str(l.flag())).collect()),
                    ),
                    ("count".to_owned(), Json::from_usize(count)),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("programs".to_owned(), Json::from_usize(self.programs)),
            (
                "levels".to_owned(),
                Json::Arr(self.levels.iter().map(|l| Json::str(l.flag())).collect()),
            ),
            ("table1".to_owned(), Json::Obj(table1)),
            ("unique".to_owned(), per_conjecture(&|c| self.unique(c))),
            (
                "clean_programs".to_owned(),
                per_conjecture(&|c| self.clean_programs(c)),
            ),
            (
                "at_all_levels".to_owned(),
                Json::from_usize(self.at_all_levels()),
            ),
            ("venn".to_owned(), Json::Arr(venn)),
        ])
    }
}

/// One subject's records over every level, in level order — the unit of work
/// the campaign drivers and the regression studies share.
pub(crate) fn subject_records(
    subject: &Subject,
    index: usize,
    personality: Personality,
    version: usize,
    backend: BackendKind,
    levels: &[OptLevel],
) -> Vec<ViolationRecord> {
    let mut records = Vec::new();
    for &level in levels {
        let config = CompilerConfig::new(personality, level)
            .with_version(version)
            .with_backend(backend);
        for violation in subject.violations(&config) {
            records.push(ViolationRecord {
                seed: subject.seed,
                subject: index,
                level,
                violation,
            });
        }
    }
    records
}

/// Run the campaign: test every subject at every level of a personality's
/// version against all three conjectures, on the default register backend.
///
/// Subjects are evaluated in parallel (they are independent), and records
/// are reassembled in (subject, level) order, so the result — including
/// every rendered table — is byte-identical to [`run_campaign_serial`].
pub fn run_campaign(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
) -> CampaignResult {
    run_campaign_on(subjects, personality, version, BackendKind::Reg)
}

/// [`run_campaign`] targeting an explicit backend: the same campaign, with
/// every subject compiled for `backend` (so a stack-VM campaign exercises
/// the spill-induced violation classes the register backend cannot
/// express).
pub fn run_campaign_on(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
    backend: BackendKind,
) -> CampaignResult {
    let levels = personality.levels().to_vec();
    let per_subject = par::par_map(subjects, |index, subject| {
        subject_records(subject, index, personality, version, backend, &levels)
    });
    CampaignResult {
        records: per_subject.into_iter().flatten().collect(),
        programs: subjects.len(),
        levels,
    }
}

/// The serial reference implementation of [`run_campaign`]; the tests and
/// benchmarks hold the parallel driver to byte-identical output.
pub fn run_campaign_serial(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
) -> CampaignResult {
    let levels = personality.levels().to_vec();
    let mut result = CampaignResult {
        records: Vec::new(),
        programs: subjects.len(),
        levels: levels.clone(),
    };
    for (index, subject) in subjects.iter().enumerate() {
        result.records.extend(subject_records(
            subject,
            index,
            personality,
            version,
            BackendKind::Reg,
            &levels,
        ));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject_pool;

    #[test]
    fn campaign_produces_consistent_counts() {
        let subjects = subject_pool(1000, 6);
        let result = run_campaign(&subjects, Personality::Ccg, Personality::Ccg.trunk());
        assert_eq!(result.programs, 6);
        // Every per-level count is at least the number reflected in records.
        let mut total = 0usize;
        for c in Conjecture::ALL {
            for l in &result.levels {
                total += result.count_at(c, *l);
            }
        }
        assert_eq!(total, result.records.len());
        // Unique counts never exceed summed per-level counts.
        for c in Conjecture::ALL {
            let summed: usize = result.levels.iter().map(|l| result.count_at(c, *l)).sum();
            assert!(result.unique(c) <= summed.max(1));
            assert!(result.clean_programs(c) <= result.programs);
        }
        // The Venn distribution partitions the unique violations.
        let venn_total: usize = result.venn().values().sum();
        let unique_total: usize = Conjecture::ALL.iter().map(|c| result.unique(*c)).sum();
        assert_eq!(venn_total, unique_total);
        assert!(result.at_all_levels() <= venn_total);
        let table = result.table1();
        assert!(table.contains("unique"));
    }

    #[test]
    fn parallel_campaign_is_byte_identical_to_serial() {
        let subjects = subject_pool(1020, 8);
        for personality in [Personality::Ccg, Personality::Lcc] {
            // Fresh caches per driver so neither run can borrow the other's
            // artifacts.
            let fresh: Vec<Subject> = subjects.iter().map(Subject::with_fresh_cache).collect();
            let parallel = run_campaign(&fresh, personality, personality.trunk());
            let serial = run_campaign_serial(&subjects, personality, personality.trunk());
            assert_eq!(parallel.records, serial.records);
            assert_eq!(parallel.table1(), serial.table1());
            assert_eq!(parallel.venn(), serial.venn());
        }
    }

    #[test]
    fn defect_free_version_would_be_clean() {
        let subjects = subject_pool(1010, 3);
        for subject in &subjects {
            for &level in Personality::Ccg.levels() {
                let cfg = CompilerConfig::new(Personality::Ccg, level).without_defects();
                assert!(
                    subject.violations(&cfg).is_empty(),
                    "defect-free compiler produced violations"
                );
            }
        }
    }
}
