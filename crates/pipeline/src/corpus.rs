//! The violation corpus: distilled, replayable records of known
//! debug-information bugs (`holes.corpus/v1`).
//!
//! A campaign proves a violation exists; a [`CorpusEntry`] makes it
//! *portable*: the generator seed, the full compiler configuration
//! (personality, version, level, backend), the violation site, the culprit
//! pass triage identified, and the reduced program text. `holes corpus add`
//! distills entries from campaign output by running the existing triage and
//! reduction machinery ([`distill`]); `holes corpus replay` re-verifies
//! every entry — regenerating the subject from its seed and probing the
//! recorded site with the targeted oracle — so a regression suite fails
//! fast on known bugs before any budget is spent on fresh seeds.
//!
//! Like every other wire format in the workspace the corpus document is
//! hand-rolled deterministic JSON: entries are kept in ascending canonical
//! order and the parser rejects any tampering (unknown format tags,
//! out-of-personality levels, reordered entries) with an error naming the
//! offending entry, never a panic.

use holes_compiler::{BackendKind, CompilerConfig, OptLevel, Personality};
use holes_core::json::Json;
use holes_core::{Conjecture, Observed, SiteQuery, Violation};

use crate::baseline::ViolationFingerprint;
use crate::reduce::reduce;
use crate::triage::triage;
use crate::Subject;

/// The identifying `format` value of a corpus file.
pub const CORPUS_FORMAT: &str = "holes.corpus/v1";

/// Why a corpus document or entry was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusError(pub String);

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "malformed corpus: {}", self.0)
    }
}

impl std::error::Error for CorpusError {}

/// One known violation, distilled for replay: everything needed to
/// reconstruct the exposing configuration and re-probe the violating site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Generator seed of the exposing program.
    pub seed: u64,
    /// The compiler personality.
    pub personality: Personality,
    /// Index into [`Personality::version_names`].
    pub version: usize,
    /// The optimization level the violation was observed at.
    pub level: OptLevel,
    /// The backend the program was compiled for.
    pub backend: BackendKind,
    /// The violated conjecture.
    pub conjecture: Conjecture,
    /// The violating source line in the *original* program.
    pub line: u32,
    /// The affected variable's source name.
    pub variable: String,
    /// What the debugger showed.
    pub observed: Observed,
    /// The culprit pass triage identified (`None` when triage could not
    /// attribute the violation; `"isel"` for codegen-level defects).
    pub culprit: Option<String>,
    /// Statement count of the original program.
    pub original_statements: usize,
    /// Statement count after reduction.
    pub reduced_statements: usize,
    /// The reduced program's rendered source, kept for human consumption
    /// and bug reports (replay regenerates from the seed, which is the
    /// deterministic ground truth).
    pub reduced_source: String,
}

/// The ordering/identity key of an entry: everything except the distilled
/// payload, so re-adding the same violation replaces rather than
/// duplicates.
type EntryKey = (
    u64,
    &'static str,
    usize,
    OptLevel,
    &'static str,
    Conjecture,
    u32,
    String,
);

impl CorpusEntry {
    /// The entry's canonical violation fingerprint — the same spelling the
    /// baseline workflow uses, so corpus and baseline cross-reference.
    pub fn fingerprint(&self) -> ViolationFingerprint {
        ViolationFingerprint {
            seed: self.seed,
            conjecture: self.conjecture,
            line: self.line,
            variable: self.variable.clone(),
        }
    }

    /// The compiler configuration the entry's violation reproduces under.
    pub fn config(&self) -> CompilerConfig {
        CompilerConfig::new(self.personality, self.level)
            .with_version(self.version)
            .with_backend(self.backend)
    }

    /// The canonical identity/sort key.
    fn key(&self) -> EntryKey {
        (
            self.seed,
            self.personality.name(),
            self.version,
            self.level,
            self.backend.name(),
            self.conjecture,
            self.line,
            self.variable.clone(),
        )
    }

    /// Serialize one entry (the `backend` field is omitted on the default
    /// register backend, matching the shard-header convention). This is the
    /// entry object of the `holes.corpus/v1` format — also the payload the
    /// artifact store mirrors beside the subject's compiled artifacts
    /// ([`crate::store::ArtifactStore::save_corpus_entry`]).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("seed".to_owned(), Json::from_u64(self.seed)),
            ("personality".to_owned(), Json::str(self.personality.name())),
            (
                "compiler_version".to_owned(),
                Json::str(self.personality.version_names()[self.version]),
            ),
            ("level".to_owned(), Json::str(self.level.flag())),
        ];
        if self.backend != BackendKind::Reg {
            pairs.push(("backend".to_owned(), Json::str(self.backend.name())));
        }
        pairs.extend([
            (
                "conjecture".to_owned(),
                Json::str(self.conjecture.to_string()),
            ),
            ("line".to_owned(), Json::from_u64(u64::from(self.line))),
            ("variable".to_owned(), Json::str(&self.variable)),
            ("observed".to_owned(), Json::str(self.observed.name())),
        ]);
        if let Some(culprit) = &self.culprit {
            pairs.push(("culprit".to_owned(), Json::str(culprit)));
        }
        pairs.extend([
            (
                "original_statements".to_owned(),
                Json::from_usize(self.original_statements),
            ),
            (
                "reduced_statements".to_owned(),
                Json::from_usize(self.reduced_statements),
            ),
            ("reduced_source".to_owned(), Json::str(&self.reduced_source)),
        ]);
        Json::Obj(pairs)
    }

    /// Parse and validate one entry object (see [`CorpusEntry::to_json`]).
    ///
    /// # Errors
    ///
    /// Returns a [`CorpusError`] naming the offending field.
    pub fn from_json(json: &Json) -> Result<CorpusEntry, CorpusError> {
        let str_field = |key: &str| {
            json.get(key)
                .and_then(Json::as_str)
                .ok_or_else(|| CorpusError(format!("missing or non-string field `{key}`")))
        };
        let personality: Personality = str_field("personality")?
            .parse()
            .map_err(|_| CorpusError("malformed field `personality`".into()))?;
        let version_name = str_field("compiler_version")?;
        let version = personality.version_index(version_name).ok_or_else(|| {
            CorpusError(format!("unknown {personality} version `{version_name}`"))
        })?;
        let level: OptLevel = str_field("level")?
            .parse()
            .map_err(|_| CorpusError("malformed field `level`".into()))?;
        if !personality.levels().contains(&level) {
            return Err(CorpusError(format!(
                "level {} is not tested by the {personality} personality",
                level.flag()
            )));
        }
        let backend = match json.get("backend") {
            None => BackendKind::Reg,
            Some(value) => value
                .as_str()
                .and_then(|name| name.parse().ok())
                .ok_or_else(|| CorpusError("malformed field `backend`".into()))?,
        };
        let seed = json
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or_else(|| CorpusError("missing or malformed field `seed`".into()))?;
        let line = json
            .get("line")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| CorpusError("missing or malformed field `line`".into()))?;
        let conjecture: Conjecture = str_field("conjecture")?
            .parse()
            .map_err(|_| CorpusError("malformed field `conjecture`".into()))?;
        let observed: Observed = str_field("observed")?
            .parse()
            .map_err(|_| CorpusError("malformed field `observed`".into()))?;
        let culprit = match json.get("culprit") {
            None => None,
            Some(value) => Some(
                value
                    .as_str()
                    .filter(|c| !c.is_empty())
                    .ok_or_else(|| CorpusError("malformed field `culprit`".into()))?
                    .to_owned(),
            ),
        };
        let usize_field = |key: &str| {
            json.get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| CorpusError(format!("missing or malformed field `{key}`")))
        };
        let original_statements = usize_field("original_statements")?;
        let reduced_statements = usize_field("reduced_statements")?;
        if reduced_statements > original_statements {
            return Err(CorpusError(
                "reduced statement count exceeds the original".into(),
            ));
        }
        Ok(CorpusEntry {
            seed,
            personality,
            version,
            level,
            backend,
            conjecture,
            line,
            variable: str_field("variable")?.to_owned(),
            observed,
            culprit,
            original_statements,
            reduced_statements,
            reduced_source: str_field("reduced_source")?.to_owned(),
        })
    }

    /// Re-verify this entry against a subject regenerated from its seed:
    /// probe the recorded site under the recorded configuration, then (when
    /// a culprit is recorded) confirm the attribution — a normal pass must
    /// take the violation with it when disabled; the `"isel"` culprit must
    /// keep the violation alive with the whole pass pipeline disabled.
    ///
    /// `subject` must be the entry's subject (built from
    /// [`CorpusEntry::seed`], typically via [`Subject::from_seed`]); passing
    /// it in lets callers attach an artifact store or fuel limit first.
    pub fn replay(&self, subject: &Subject) -> ReplayOutcome {
        let config = self.config();
        let site = SiteQuery {
            conjecture: self.conjecture,
            line: Some(self.line),
            variable: &self.variable,
            function: None,
        };
        let reproduced = subject.query(&config, &site);
        let culprit_confirmed = self.culprit.as_deref().map(|culprit| {
            if culprit == "isel" {
                subject.query(&config.clone().with_pass_budget(0), &site)
            } else {
                !subject.query(&config.clone().with_disabled_pass(culprit), &site)
            }
        });
        ReplayOutcome {
            fingerprint: self.fingerprint(),
            reproduced,
            culprit_confirmed,
        }
    }
}

/// The verdict of replaying one [`CorpusEntry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// The replayed entry's fingerprint.
    pub fingerprint: ViolationFingerprint,
    /// Whether the violation still reproduces at the recorded site.
    pub reproduced: bool,
    /// Whether the recorded culprit attribution still holds (`None` when
    /// the entry records no culprit).
    pub culprit_confirmed: Option<bool>,
}

impl ReplayOutcome {
    /// Whether the entry fully re-verified: the violation reproduces and
    /// any recorded culprit attribution holds.
    pub fn passed(&self) -> bool {
        self.reproduced && self.culprit_confirmed.unwrap_or(true)
    }
}

/// Distill one observed violation into a replayable corpus entry: triage
/// the culprit pass, then reduce the program while preserving the
/// violation (and, for pass-level culprits, the attribution).
pub fn distill(subject: &Subject, config: &CompilerConfig, violation: &Violation) -> CorpusEntry {
    let outcome = triage(subject, config, violation);
    let culprit = outcome.culprits.first().cloned();
    // The reducer's oracle holds "disabling the culprit removes the
    // violation" invariant across every step — meaningful only for
    // pass-level culprits, so codegen-level ("isel") attributions reduce
    // without it and are re-checked by replay's budget-0 probe instead.
    let preserved = culprit.as_deref().filter(|c| *c != "isel");
    let reduced = reduce(subject, config, violation, preserved);
    CorpusEntry {
        seed: subject.seed,
        personality: config.personality,
        version: config.version,
        level: config.level,
        backend: config.backend,
        conjecture: violation.conjecture,
        line: violation.line,
        variable: violation.variable.to_string(),
        observed: violation.observed,
        culprit,
        original_statements: reduced.original_statements,
        reduced_statements: reduced.reduced_statements,
        reduced_source: reduced.subject.source.text.clone(),
    }
}

/// A set of corpus entries in canonical order — the in-memory form of a
/// `holes.corpus/v1` file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Corpus {
    /// The entries, ascending by canonical key, one per known violation.
    pub entries: Vec<CorpusEntry>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Corpus {
        Corpus::default()
    }

    /// Insert an entry at its canonical position; an entry with the same
    /// identity (same seed, configuration, and site) is replaced. Returns
    /// whether the entry was new.
    pub fn add(&mut self, entry: CorpusEntry) -> bool {
        let key = entry.key();
        match self.entries.binary_search_by_key(&key, CorpusEntry::key) {
            Ok(index) => {
                self.entries[index] = entry;
                false
            }
            Err(index) => {
                self.entries.insert(index, entry);
                true
            }
        }
    }

    /// Serialize to the deterministic `holes.corpus/v1` document.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("format".to_owned(), Json::str(CORPUS_FORMAT)),
            (
                "entries".to_owned(),
                Json::Arr(self.entries.iter().map(CorpusEntry::to_json).collect()),
            ),
        ])
    }

    /// Parse and validate a document produced by [`Corpus::to_json`],
    /// rejecting unknown formats, malformed entries, and entries out of
    /// canonical order.
    ///
    /// # Errors
    ///
    /// Returns a [`CorpusError`] naming the offending field or entry index.
    pub fn from_json(json: &Json) -> Result<Corpus, CorpusError> {
        let format = json
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| CorpusError("missing or non-string field `format`".into()))?;
        if format != CORPUS_FORMAT {
            return Err(CorpusError(format!(
                "unsupported format `{format}` (expected `{CORPUS_FORMAT}`)"
            )));
        }
        let raw = json
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| CorpusError("missing `entries` array".into()))?;
        let mut entries = Vec::with_capacity(raw.len());
        for (index, value) in raw.iter().enumerate() {
            let entry = CorpusEntry::from_json(value)
                .map_err(|CorpusError(m)| CorpusError(format!("entry {index}: {m}")))?;
            if entries
                .last()
                .is_some_and(|prev: &CorpusEntry| prev.key() >= entry.key())
            {
                return Err(CorpusError(format!(
                    "entry {index}: not in strictly ascending canonical order"
                )));
            }
            entries.push(entry);
        }
        Ok(Corpus { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::subject_pool;

    fn sample_entry() -> CorpusEntry {
        CorpusEntry {
            seed: 12,
            personality: Personality::Ccg,
            version: Personality::Ccg.trunk(),
            level: OptLevel::O2,
            backend: BackendKind::Reg,
            conjecture: Conjecture::C1,
            line: 7,
            variable: "g0".to_owned(),
            observed: Observed::NotVisible,
            culprit: Some("dce".to_owned()),
            original_statements: 20,
            reduced_statements: 4,
            reduced_source: "int g0;\nint main() {\n}\n".to_owned(),
        }
    }

    #[test]
    fn corpus_round_trips_and_rejects_tampering() {
        let mut corpus = Corpus::new();
        assert!(corpus.add(sample_entry()));
        let mut other = sample_entry();
        other.seed = 3;
        other.culprit = None;
        other.backend = BackendKind::Stack;
        assert!(corpus.add(other));
        // Re-adding an existing identity replaces, preserving the count.
        assert!(!corpus.add(sample_entry()));
        assert_eq!(corpus.entries.len(), 2);
        assert_eq!(corpus.entries[0].seed, 3, "entries not in canonical order");
        let rendered = corpus.to_json().to_pretty();
        let reparsed = Corpus::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(reparsed, corpus);
        assert_eq!(reparsed.to_json().to_pretty(), rendered);
        for (needle, replacement) in [
            ("holes.corpus/v1", "holes.corpus/v0"),
            ("\"ccg\"", "\"gcc\""),
            ("\"trunk\"", "\"0.0\""),
            ("\"-O2\"", "\"-O9\""),
            ("\"stack\"", "\"quantum\""),
            ("\"C1\"", "\"C7\""),
            ("\"not-visible\"", "\"invisible\""),
            ("\"seed\": 3", "\"seed\": 12"), // duplicates entry 1's key prefix order
            ("\"reduced_statements\": 4", "\"reduced_statements\": 4000"),
        ] {
            let bad = rendered.replace(needle, replacement);
            assert_ne!(bad, rendered, "replacement `{needle}` did not apply");
            let parsed = Json::parse(&bad).unwrap();
            assert!(
                Corpus::from_json(&parsed).is_err(),
                "tampered `{needle}` was accepted"
            );
        }
    }

    #[test]
    fn fingerprint_and_config_reconstruct_the_entry_identity() {
        let entry = sample_entry();
        assert_eq!(entry.fingerprint().to_string(), "s12:C1:L7:g0");
        let config = entry.config();
        assert_eq!(config.personality, Personality::Ccg);
        assert_eq!(config.level, OptLevel::O2);
        assert_eq!(config.version, Personality::Ccg.trunk());
    }

    #[test]
    fn distilled_entries_replay_cleanly() {
        let subjects = subject_pool(1300, 6);
        let personality = Personality::Ccg;
        let result = run_campaign(&subjects, personality, personality.trunk());
        let record = result
            .records
            .first()
            .expect("seed pool produced no violations to distill");
        let config = CompilerConfig::new(personality, record.level);
        let subject = &subjects[record.subject];
        let entry = distill(subject, &config, &record.violation);
        assert_eq!(entry.seed, subject.seed);
        assert!(entry.reduced_statements <= entry.original_statements);
        assert!(!entry.reduced_source.is_empty());
        let outcome = entry.replay(&Subject::from_seed(entry.seed));
        assert!(outcome.reproduced, "distilled violation did not replay");
        assert!(
            outcome.passed(),
            "culprit attribution did not re-verify: {outcome:?}"
        );
        // Replay with the culprit pass disabled reports the violation gone.
        if let Some(culprit) = entry.culprit.as_deref().filter(|c| *c != "isel") {
            let disabled = entry.config().with_disabled_pass(culprit);
            let site = SiteQuery {
                conjecture: entry.conjecture,
                line: Some(entry.line),
                variable: &entry.variable,
                function: None,
            };
            assert!(
                !Subject::from_seed(entry.seed).query(&disabled, &site),
                "violation survived disabling its culprit"
            );
        }
    }
}
