//! Subject-level fault containment: panics and runaway programs become
//! structured, reportable outcomes instead of crashing a campaign.
//!
//! A campaign over a million seeds is only trustworthy if one pathological
//! subject cannot kill the whole process and silently truncate a result
//! table. This module provides the containment layer the campaign, triage,
//! and reduction drivers thread a [`FaultPolicy`] through:
//!
//! * every subject evaluation runs under [`std::panic::catch_unwind`], so a
//!   panic anywhere in generation, compilation, tracing, or checking is
//!   caught and converted into a [`SubjectFault`] naming the failing
//!   [`FaultStage`];
//! * a deterministic **fuel limit** ([`FaultPolicy::fuel_limit`]) bounds
//!   the virtual machines' step budgets, so a non-terminating program stops
//!   at exactly the same step on every run and faults instead of hanging;
//! * faulted subjects flow into campaign results, shard files, JSON Lines
//!   streams, and `holes report` as first-class records — they are counted,
//!   never dropped.
//!
//! The default policy ([`FaultPolicy::default`]) reproduces the historical
//! behavior byte for byte: no fuel override, no retries, and — since a
//! defect-free evaluation never panics — no observable change on the
//! no-fault path.

use std::collections::BTreeSet;
use std::panic::AssertUnwindSafe;
use std::time::Duration;

/// How subject evaluation faults are contained and retried.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPolicy {
    /// Step budget for the virtual machines, overriding the default fuel.
    /// `None` keeps each backend's default budget and the historical
    /// behavior of silently truncating an out-of-fuel trace; `Some(fuel)`
    /// turns budget exhaustion (and any other terminal machine error) into
    /// a contained [`SubjectFault`] at the [`FaultStage::Trace`] stage.
    pub fuel_limit: Option<u64>,
    /// How many times a faulted evaluation is retried before the fault is
    /// recorded. Deterministic faults fault again; retries exist for
    /// transient causes (injected chaos, flaky I/O reached through a
    /// store-backed cache).
    pub max_retries: u32,
    /// Sleep between retries, multiplied by the attempt number.
    pub backoff: Duration,
    /// Seeds whose evaluation is made to panic on purpose — the fault
    /// injection seam the chaos tests and the CI smoke job drive via the
    /// `HOLES_FAULT_SEEDS` environment variable. Empty in normal operation.
    pub inject_seeds: BTreeSet<u64>,
}

impl FaultPolicy {
    /// The policy the CLI builds: an optional fuel limit plus any injected
    /// fault seeds named by the `HOLES_FAULT_SEEDS` environment variable (a
    /// comma-separated seed list).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending entry when the variable is
    /// set but not a valid seed list. A chaos schedule that silently loses
    /// entries would make an injection test pass vacuously, so a typo is a
    /// hard error, never ignored.
    pub fn from_env(fuel_limit: Option<u64>) -> Result<FaultPolicy, String> {
        let inject_seeds = match std::env::var("HOLES_FAULT_SEEDS") {
            Err(_) => BTreeSet::new(),
            Ok(list) => {
                parse_seed_list(&list).map_err(|entry| format!("HOLES_FAULT_SEEDS: {entry}"))?
            }
        };
        Ok(FaultPolicy {
            fuel_limit,
            inject_seeds,
            ..FaultPolicy::default()
        })
    }

    /// Whether this policy can produce faults at all (so drivers on the
    /// default policy skip nothing and change nothing).
    pub fn is_default(&self) -> bool {
        *self == FaultPolicy::default()
    }
}

/// Parse a comma-separated seed list (the `HOLES_FAULT_SEEDS` syntax).
/// Empty entries — a trailing comma, doubled separators — are tolerated;
/// anything else that is not an unsigned integer is rejected with a message
/// naming the entry.
///
/// # Errors
///
/// Returns the offending entry and the expected syntax.
pub fn parse_seed_list(list: &str) -> Result<BTreeSet<u64>, String> {
    let mut seeds = BTreeSet::new();
    for entry in list.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let seed: u64 = entry.parse().map_err(|_| {
            format!(
                "`{entry}` is not a seed (expected a comma-separated list \
                 of unsigned integers, e.g. `7,23`)"
            )
        })?;
        seeds.insert(seed);
    }
    Ok(seeds)
}

/// The pipeline stage a contained fault was attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultStage {
    /// Program generation (seed to subject).
    Generate,
    /// Compilation (or snapshot-derived code generation).
    Compile,
    /// Debugger tracing, including fuel exhaustion of the virtual machine.
    Trace,
    /// Conjecture checking against the trace.
    Check,
}

impl FaultStage {
    /// Every stage, in pipeline order.
    pub const ALL: [FaultStage; 4] = [
        FaultStage::Generate,
        FaultStage::Compile,
        FaultStage::Trace,
        FaultStage::Check,
    ];

    /// The stable spelling used in fault records (`generate`, `compile`,
    /// `trace`, `check`).
    pub fn name(self) -> &'static str {
        match self {
            FaultStage::Generate => "generate",
            FaultStage::Compile => "compile",
            FaultStage::Trace => "trace",
            FaultStage::Check => "check",
        }
    }
}

impl std::fmt::Display for FaultStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for FaultStage {
    type Err = String;

    fn from_str(s: &str) -> Result<FaultStage, String> {
        FaultStage::ALL
            .into_iter()
            .find(|stage| stage.name() == s)
            .ok_or_else(|| format!("unknown fault stage `{s}`"))
    }
}

/// One contained subject failure: the structured record a panic or a fuel
/// exhaustion becomes instead of crashing the campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SubjectFault {
    /// Seed of the subject that faulted.
    pub seed: u64,
    /// Global subject index in the campaign range.
    pub subject: usize,
    /// The pipeline stage the fault was attributed to.
    pub stage: FaultStage,
    /// Human-readable cause (the panic message or machine error).
    pub cause: String,
}

impl std::fmt::Display for SubjectFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "subject {} (seed {}) faulted during {}: {}",
            self.subject, self.seed, self.stage, self.cause
        )
    }
}

/// The outcome of one contained subject evaluation: either the subject's
/// violation records, or the fault that replaced them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubjectOutcome<T> {
    /// The evaluation completed normally.
    Completed(T),
    /// The evaluation faulted; the fault carries seed, stage, and cause.
    Faulted(SubjectFault),
}

thread_local! {
    static STAGE: std::cell::Cell<FaultStage> = const { std::cell::Cell::new(FaultStage::Generate) };
    static CONTAINED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Mark the pipeline stage the current thread is executing, for fault
/// attribution. Cheap (one thread-local store); called by the [`Subject`]
/// oracle methods as evaluation progresses.
///
/// [`Subject`]: crate::Subject
pub(crate) fn set_stage(stage: FaultStage) {
    STAGE.with(|cell| cell.set(stage));
}

/// Install (once, process-wide) a panic hook that stays silent for panics
/// the containment layer is about to catch, and delegates to the previous
/// hook for everything else — so contained faults do not spray backtraces
/// over campaign progress output.
fn silence_contained_panics() {
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !CONTAINED.with(std::cell::Cell::get) {
                previous(info);
            }
        }));
    });
}

/// Extract a human-readable cause from a caught panic payload.
fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(message) = payload.downcast_ref::<String>() {
        return message.clone();
    }
    if let Some(message) = payload.downcast_ref::<&str>() {
        return (*message).to_owned();
    }
    "panic with a non-string payload".to_owned()
}

/// Run one subject evaluation under containment: catch panics (including
/// the fuel-exhaustion panic the tracing layer raises under a
/// [`FaultPolicy::fuel_limit`]), attribute them to the stage the thread
/// last entered, and retry per the policy. Returns the evaluation's value
/// or the final attempt's fault.
pub fn contain<T>(
    policy: &FaultPolicy,
    seed: u64,
    subject: usize,
    evaluate: impl Fn() -> T,
) -> SubjectOutcome<T> {
    silence_contained_panics();
    let mut fault = None;
    for attempt in 0..=policy.max_retries {
        if attempt > 0 {
            std::thread::sleep(policy.backoff * attempt);
        }
        set_stage(FaultStage::Generate);
        CONTAINED.with(|cell| cell.set(true));
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            if policy.inject_seeds.contains(&seed) {
                panic!("injected fault (HOLES_FAULT_SEEDS)");
            }
            evaluate()
        }));
        CONTAINED.with(|cell| cell.set(false));
        match caught {
            Ok(value) => return SubjectOutcome::Completed(value),
            Err(payload) => {
                fault = Some(SubjectFault {
                    seed,
                    subject,
                    stage: STAGE.with(std::cell::Cell::get),
                    cause: panic_cause(payload),
                });
            }
        }
    }
    SubjectOutcome::Faulted(fault.expect("at least one attempt ran"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_inert_and_completions_pass_through() {
        let policy = FaultPolicy::default();
        assert!(policy.is_default());
        assert_eq!(policy.fuel_limit, None);
        match contain(&policy, 7, 7, || 42) {
            SubjectOutcome::Completed(value) => assert_eq!(value, 42),
            SubjectOutcome::Faulted(fault) => panic!("spurious fault: {fault}"),
        }
    }

    #[test]
    fn panics_become_faults_with_stage_and_cause() {
        let policy = FaultPolicy::default();
        let outcome = contain(&policy, 3, 1, || {
            set_stage(FaultStage::Check);
            panic!("boom at {}", 9);
        });
        match outcome {
            SubjectOutcome::Completed(()) => panic!("panic escaped containment"),
            SubjectOutcome::Faulted(fault) => {
                assert_eq!(fault.seed, 3);
                assert_eq!(fault.subject, 1);
                assert_eq!(fault.stage, FaultStage::Check);
                assert_eq!(fault.cause, "boom at 9");
                assert!(fault.to_string().contains("during check"));
            }
        }
    }

    #[test]
    fn injected_seeds_fault_at_the_generate_stage() {
        let policy = FaultPolicy {
            inject_seeds: [11u64].into_iter().collect(),
            ..FaultPolicy::default()
        };
        assert!(!policy.is_default());
        match contain(&policy, 11, 0, || unreachable!("must be injected first")) {
            SubjectOutcome::Faulted(fault) => {
                assert_eq!(fault.stage, FaultStage::Generate);
                assert!(fault.cause.contains("HOLES_FAULT_SEEDS"), "{}", fault.cause);
            }
            SubjectOutcome::Completed(()) => panic!("injection did not fire"),
        }
        // Other seeds are untouched.
        assert!(matches!(
            contain(&policy, 12, 1, || 5),
            SubjectOutcome::Completed(5)
        ));
    }

    #[test]
    fn retries_rerun_the_evaluation_and_can_recover() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let attempts = AtomicU32::new(0);
        let policy = FaultPolicy {
            max_retries: 2,
            ..FaultPolicy::default()
        };
        let outcome = contain(&policy, 0, 0, || {
            if attempts.fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient");
            }
            "ok"
        });
        assert!(matches!(outcome, SubjectOutcome::Completed("ok")));
        assert_eq!(attempts.load(Ordering::SeqCst), 3);

        // A deterministic fault exhausts the retries and is recorded once.
        let exhausted = AtomicU32::new(0);
        let outcome = contain(&policy, 0, 0, || {
            exhausted.fetch_add(1, Ordering::SeqCst);
            panic!("permanent");
        });
        assert!(matches!(outcome, SubjectOutcome::Faulted(_)));
        assert_eq!(exhausted.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn stage_names_round_trip() {
        for stage in FaultStage::ALL {
            assert_eq!(stage.name().parse::<FaultStage>(), Ok(stage));
        }
        assert!("link".parse::<FaultStage>().is_err());
    }

    #[test]
    fn env_policy_parses_seed_lists() {
        // `from_env` reads the environment at call time, so the parse logic
        // is exercised through `parse_seed_list` directly (the variable is
        // unset in the test environment).
        let policy = FaultPolicy::from_env(Some(500)).expect("unset variable parses");
        assert_eq!(policy.fuel_limit, Some(500));
        assert_eq!(
            parse_seed_list("3, 17,29,").unwrap(),
            [3u64, 17, 29].into_iter().collect()
        );
        assert_eq!(parse_seed_list("").unwrap(), BTreeSet::new());
    }

    #[test]
    fn seed_list_typos_are_rejected_with_the_offending_entry() {
        for bad in ["x", "3,x,17", "3;17", "-1", "1.5"] {
            let err = parse_seed_list(bad).unwrap_err();
            assert!(
                err.contains("is not a seed") && err.contains("comma-separated"),
                "`{bad}` -> {err}"
            );
        }
        // The message names the entry, not the whole list.
        assert!(parse_seed_list("3,oops,17").unwrap_err().contains("`oops`"));
    }

    #[test]
    fn zero_retries_means_exactly_one_attempt_and_no_backoff_sleep() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let attempts = AtomicU32::new(0);
        let policy = FaultPolicy {
            max_retries: 0,
            // A backoff that would stall the test if any retry slept.
            backoff: Duration::from_secs(3600),
            ..FaultPolicy::default()
        };
        let started = std::time::Instant::now();
        let outcome = contain(&policy, 5, 2, || {
            attempts.fetch_add(1, Ordering::SeqCst);
            panic!("first and only attempt");
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 1);
        assert!(started.elapsed() < Duration::from_secs(60), "backoff slept");
        match outcome {
            SubjectOutcome::Faulted(fault) => assert_eq!(fault.cause, "first and only attempt"),
            SubjectOutcome::Completed(()) => panic!("panic escaped containment"),
        }
    }

    #[test]
    fn fuel_exhaustion_on_the_final_retry_records_the_last_attempt() {
        use std::sync::atomic::{AtomicU32, Ordering};
        // Every attempt exhausts its fuel (the trace-stage panic a
        // fuel-limited VM raises); the recorded fault must be the *final*
        // attempt's, after exactly max_retries + 1 attempts.
        let attempts = AtomicU32::new(0);
        let policy = FaultPolicy {
            fuel_limit: Some(10),
            max_retries: 2,
            ..FaultPolicy::default()
        };
        let outcome = contain(&policy, 9, 4, || {
            let attempt = attempts.fetch_add(1, Ordering::SeqCst);
            set_stage(FaultStage::Trace);
            panic!("fuel exhausted after 10 steps (attempt {attempt})");
        });
        assert_eq!(attempts.load(Ordering::SeqCst), 3);
        match outcome {
            SubjectOutcome::Faulted(fault) => {
                assert_eq!(fault.stage, FaultStage::Trace);
                assert_eq!(fault.cause, "fuel exhausted after 10 steps (attempt 2)");
            }
            SubjectOutcome::Completed(()) => panic!("exhaustion escaped containment"),
        }
    }
}
