//! The end-to-end testing pipeline of the paper: program generation,
//! compilation matrices, debugger tracing, conjecture checking, violation
//! triage, test-case reduction, and the aggregation that regenerates every
//! table and figure of the evaluation.
//!
//! The central type is [`Subject`]: one generated program together with its
//! analyses, compiled and traced on demand for any compiler configuration.
//! On top of it:
//!
//! * [`campaign`] runs the violation campaigns of §5.1/§5.2 (Table 1,
//!   Figures 2 and 3),
//! * [`triage`] pinpoints culprit optimizations via pass bisection (lcc) or
//!   per-flag disabling (ccg), as in §4.3 (Table 2),
//! * [`reduce`] shrinks a violating program while preserving both the
//!   violation and its culprit, as in §4.4,
//! * [`report`] classifies violations by DIE manifestation and debugger
//!   cross-check, as in §5.3 (Table 3),
//! * [`regression`] reruns pools across compiler versions for the §5.4
//!   regression study (Table 4, Figure 4) and the §2 quantitative study
//!   (Figure 1),
//! * [`baseline`] snapshots a run's unique-violation set and diffs later
//!   runs against it (known/new/fixed) — the §5.4 workflow as a CI gate,
//! * [`corpus`] persists distilled, replayable records of known violations
//!   (`holes.corpus/v1`) for fail-fast regression suites.
//!
//! # The evaluation engine: caching and parallelism
//!
//! The oracle the whole pipeline revolves around is *compile + trace +
//! check* — the stage the paper reports at ~30 s per program per conjecture
//! and ~20 min of triage per gcc program. Two mechanisms make our
//! reproduction of it fast:
//!
//! **Artifact caching.** Every [`Subject`] owns an [`ArtifactCache`] keyed
//! by the full compiler configuration (the stable [`Fingerprint`] names a
//! configuration in logs and on disk): executables, debug traces (per
//! debugger personality), and full violation sets are each computed at
//! most once per configuration, and every later oracle query against that
//! configuration is a hash lookup. Clones of a subject share the cache, so
//! triage and reduction re-querying a campaign's configurations get the
//! campaign's artifacts for free. On top of the cache sits a *targeted*
//! oracle, [`Subject::violation_occurs`]: instead of sweeping every
//! conjecture site with `check_all`, it re-checks only the one queried
//! `(conjecture, line, variable)` site against the memoized trace.
//!
//! **Stop plans and pass snapshots.** Two precomputations keep the oracle's
//! *misses* cheap, too. Tracing runs through a cached
//! [`holes_debugger::StopPlan`] — every scope walk, location-list scan, and
//! personality quirk resolved once per (executable, debugger), every stop a
//! plan lookup plus one batched machine read, every name interned as
//! `Arc<str>` ([`CacheStats::plan_hits`]). And a configuration with a pass
//! budget — the shape triage bisection probes dozens of times — is derived
//! from its base pipeline's recorded IR checkpoints by code generation
//! alone ([`holes_compiler::PassSnapshots`],
//! [`CacheStats::codegen_only`]): a bisection runs the optimization
//! pipeline once, not once per probed budget.
//!
//! **Persistence.** The cache can spill to and reload from a [`store`]
//! rooted at a cache directory (`HOLES_CACHE_DIR`, or the CLI's
//! `--cache-dir`): artifacts persist *across processes*, so a range that
//! was campaigned once is free for every later `triage`/`reduce`/`report`
//! invocation — the warm run performs zero compiles and zero traces. For
//! very large ranges, [`stream`] replaces the in-memory shard document
//! with a record-streaming JSON Lines format of bounded memory.
//!
//! **Deterministic parallelism.** The outer loops — subjects × levels in
//! [`campaign::run_campaign`], violations in [`triage::triage_campaign`],
//! flags in a gcc-style flag search, (version, level) cells in the
//! regression studies — are embarrassingly parallel and fan out over scoped
//! threads ([`par::par_map`]). Results are reassembled **in input order**,
//! so every rendered table and Venn distribution is byte-identical to a
//! serial run (`campaign::run_campaign_serial` is kept as the reference
//! implementation, and the test suite asserts the equivalence); setting
//! `HOLES_THREADS=1` forces serial execution. Determinism also does not
//! depend on timing: compilation is a pure function of (program,
//! configuration), so cache races at worst duplicate work, never change a
//! result.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod baseline;
pub mod campaign;
pub mod corpus;
pub mod fault;
pub mod reduce;
pub mod regression;
pub mod report;
pub mod serve;
pub mod shard;
pub mod store;
pub mod stream;
pub mod triage;

mod cache;
pub mod par;

pub use cache::{ArtifactCache, CacheStats};
pub use fault::{FaultPolicy, FaultStage, SubjectFault, SubjectOutcome};
pub use holes_compiler::{BackendKind, Fingerprint};
pub use store::{
    install_process_store, ArtifactStore, GcStats, RemoteFetch, RemoteSource, StoreStats,
    SubjectKey,
};

use std::sync::Arc;

use holes_compiler::{compile, CompilerConfig, Executable, OptLevel, PassSnapshots, Personality};
use holes_core::{SiteQuery, Violation};
use holes_debugger::{trace_with_plan_fuel, DebugTrace, DebuggerKind, StopPlan};
use holes_minic::analysis::ProgramAnalysis;
use holes_minic::ast::Program;
use holes_minic::lines::SourceMap;
use holes_progen::{GeneratedProgram, ProgramGenerator};

/// One test subject: a program plus everything needed to check conjectures
/// against any compiler configuration, with all derived artifacts memoized
/// per configuration (see the crate docs).
#[derive(Debug, Clone)]
pub struct Subject {
    /// The program (lines assigned).
    pub program: Program,
    /// Rendered source and line maps.
    pub source: SourceMap,
    /// Static analyses (conjecture sites).
    pub analysis: ProgramAnalysis,
    /// Seed that generated the program (0 for directed programs).
    pub seed: u64,
    /// Memoized executables, traces, and violation sets; shared by clones.
    cache: ArtifactCache,
    /// Step budget override for the virtual machines (see
    /// [`Subject::with_fuel_limit`]); `None` keeps the backend defaults.
    fuel_limit: Option<u64>,
}

impl Subject {
    /// Generate the subject for a seed — the single seed-to-subject mapping
    /// shared by [`subject_pool`], the sharded campaign driver, and the CLI.
    pub fn from_seed(seed: u64) -> Subject {
        Subject::from_generated(ProgramGenerator::from_seed(seed).generate())
    }

    /// Wrap a generated program.
    pub fn from_generated(generated: GeneratedProgram) -> Subject {
        let subject = Subject {
            program: generated.program,
            source: generated.source,
            analysis: generated.analysis,
            seed: generated.seed,
            cache: ArtifactCache::default(),
            fuel_limit: None,
        };
        subject.attach_env_store();
        subject
    }

    /// Wrap a hand-written program (lines are assigned here).
    pub fn from_program(mut program: Program) -> Subject {
        let source = program.assign_lines();
        let analysis = ProgramAnalysis::analyze(&program);
        let subject = Subject {
            program,
            source,
            analysis,
            seed: 0,
            cache: ArtifactCache::default(),
            fuel_limit: None,
        };
        subject.attach_env_store();
        subject
    }

    /// Override the virtual machines' step budget for this subject's traces
    /// (see [`fault::FaultPolicy::fuel_limit`]). With a limit set, a trace
    /// whose machine run ends in a terminal error — fuel exhaustion of a
    /// non-terminating program, or any other machine fault — raises a
    /// contained panic that [`fault::contain`] converts into a
    /// [`fault::SubjectFault`] at the [`fault::FaultStage::Trace`] stage.
    /// With `None` (the default), the backend's default budget applies and
    /// terminal errors keep the historical behavior of silently truncating
    /// the trace.
    pub fn with_fuel_limit(mut self, fuel_limit: Option<u64>) -> Subject {
        self.fuel_limit = fuel_limit;
        self
    }

    /// Bind this subject's cache to a persistent [`ArtifactStore`] as its
    /// write-through second level (see [`store`]). The subject's stable
    /// on-disk identity is derived from its seed and rendered source. At
    /// most one store takes effect per cache; later calls are no-ops.
    pub fn attach_store(&self, store: std::sync::Arc<ArtifactStore>) {
        let key = SubjectKey::derive(self.seed, &self.source.text);
        self.cache.attach_store(store, key);
    }

    /// Attach the process-wide store named by `HOLES_CACHE_DIR`, if any.
    fn attach_env_store(&self) {
        if let Some(store) = ArtifactStore::from_env() {
            self.attach_store(store);
        }
    }

    /// The persistent store this subject's cache is bound to, if any.
    pub fn store(&self) -> Option<&std::sync::Arc<ArtifactStore>> {
        self.cache.store()
    }

    /// Compile under a configuration (memoized; the returned artifact is
    /// shared with the cache). Budgeted configurations whose base pipeline
    /// has been (or can be) recorded are derived by code generation alone
    /// — see [`holes_compiler::PassSnapshots`] and
    /// [`CacheStats::codegen_only`].
    pub fn compile_shared(&self, config: &CompilerConfig) -> Arc<Executable> {
        fault::set_stage(fault::FaultStage::Compile);
        self.cache.executable(
            config,
            || self.derive_from_snapshots(config),
            || compile(&self.program, config),
        )
    }

    /// The snapshot codegen-only path: a configuration with a pass budget
    /// is a strict prefix of its budget-free base pipeline, so its
    /// executable falls out of the base's recorded IR checkpoints without
    /// re-running a single pass. Returns `None` for unbudgeted
    /// configurations (they *are* the base).
    fn derive_from_snapshots(&self, config: &CompilerConfig) -> Option<Executable> {
        config.pass_budget?;
        let mut base = config.clone();
        base.pass_budget = None;
        let snapshots = self
            .cache
            .snapshots(&base, || PassSnapshots::record(&self.program, &base));
        Some(snapshots.codegen_budget(&self.program, config))
    }

    /// Compile under a configuration.
    pub fn compile(&self, config: &CompilerConfig) -> Executable {
        (*self.compile_shared(config)).clone()
    }

    /// Compile and trace with a specific debugger (memoized). Tracing runs
    /// through the executable's cached [`holes_debugger::StopPlan`]: each
    /// stop is a plan lookup plus a batched machine read, counted by
    /// [`CacheStats::plan_hits`].
    pub fn trace_shared(&self, config: &CompilerConfig, kind: DebuggerKind) -> Arc<DebugTrace> {
        self.cache.trace(config, kind, || {
            let executable = self.compile_shared(config);
            let plan = self
                .cache
                .stop_plan(config, kind, || StopPlan::compute(&executable, kind));
            fault::set_stage(fault::FaultStage::Trace);
            let (trace, error) = trace_with_plan_fuel(&executable, &plan, self.fuel_limit);
            if let (Some(error), Some(_)) = (&error, self.fuel_limit) {
                // Under an explicit fuel limit a terminal machine error is a
                // containable fault, not a silently truncated trace.
                std::panic::panic_any(format!("machine error while tracing: {error}"));
            }
            self.cache.note_plan_hits(trace.stops.len());
            trace
        })
    }

    /// Compile and trace with the native debugger of the configuration's
    /// personality.
    pub fn trace(&self, config: &CompilerConfig) -> DebugTrace {
        (*self.trace_shared(config, DebuggerKind::native_for(config.personality))).clone()
    }

    /// Check all conjectures under a configuration with a specific debugger
    /// (memoized).
    pub fn violations_shared(
        &self,
        config: &CompilerConfig,
        kind: DebuggerKind,
    ) -> Arc<Vec<Violation>> {
        self.cache.violations(config, kind, || {
            let trace = self.trace_shared(config, kind);
            fault::set_stage(fault::FaultStage::Check);
            holes_core::check_all(&self.program, &self.analysis, &self.source, &trace)
        })
    }

    /// Check all conjectures under a configuration, using the native
    /// debugger.
    pub fn violations(&self, config: &CompilerConfig) -> Vec<Violation> {
        let kind = DebuggerKind::native_for(config.personality);
        (*self.violations_shared(config, kind)).clone()
    }

    /// Check whether a *specific* violation (same conjecture, line, variable)
    /// occurs under a configuration — the oracle used by triage and
    /// reduction. Checks only the queried site against the memoized trace,
    /// not every site of the program.
    pub fn violation_occurs(&self, config: &CompilerConfig, violation: &Violation) -> bool {
        self.query(config, &SiteQuery::for_violation(violation))
    }

    /// Run an arbitrary targeted oracle query (see [`SiteQuery`]) against
    /// the memoized native-debugger trace.
    pub fn query(&self, config: &CompilerConfig, query: &SiteQuery<'_>) -> bool {
        let kind = DebuggerKind::native_for(config.personality);
        let trace = self.trace_shared(config, kind);
        holes_core::query_violation(&self.program, &self.analysis, &self.source, &trace, query)
    }

    /// A snapshot of the subject's cache activity (compiles, traces, checks
    /// performed; lookups answered from the cache).
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Drop the subject's memoized artifacts (used by benchmarks that must
    /// measure cold-cache behaviour).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// A copy of this subject with its own empty cache, detached from this
    /// subject's memoized artifacts and counters. The fresh cache has **no
    /// persistent store** attached either (so cold-cache measurements stay
    /// cold); call [`Subject::attach_store`] on the copy to rebind one.
    pub fn with_fresh_cache(&self) -> Subject {
        Subject {
            program: self.program.clone(),
            source: self.source.clone(),
            analysis: self.analysis.clone(),
            seed: self.seed,
            cache: ArtifactCache::default(),
            fuel_limit: self.fuel_limit,
        }
    }
}

/// Generate a pool of subjects from consecutive seeds.
///
/// Generation is seed-deterministic and per-seed independent, so the pool
/// is produced in parallel and returned in seed order — identical to the
/// serial [`holes_progen::generate_pool`] path.
pub fn subject_pool(base_seed: u64, count: usize) -> Vec<Subject> {
    let seeds: Vec<u64> = (0..count as u64)
        .map(|i| base_seed.wrapping_add(i))
        .collect();
    par::par_map(&seeds, |_, &seed| Subject::from_seed(seed))
}

/// The levels the paper evaluates for a personality (excluding `-O0`).
pub fn evaluated_levels(personality: Personality) -> Vec<OptLevel> {
    personality.levels().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subjects_compile_and_trace() {
        let subjects = subject_pool(900, 2);
        assert_eq!(subjects.len(), 2);
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        for subject in &subjects {
            let trace = subject.trace(&config);
            assert!(trace.lines_reached() > 0);
        }
    }

    #[test]
    fn violation_oracle_is_consistent() {
        let subjects = subject_pool(901, 4);
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        for subject in subjects {
            for violation in subject.violations(&config) {
                assert!(subject.violation_occurs(&config, &violation));
            }
        }
    }

    #[test]
    fn repeat_queries_are_answered_from_the_cache() {
        let subjects = subject_pool(902, 1);
        let subject = &subjects[0];
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        let first = subject.violations(&config);
        let after_first = subject.cache_stats();
        assert_eq!(after_first.compiles, 1);
        assert_eq!(after_first.traces, 1);
        assert_eq!(after_first.checks, 1);
        let second = subject.violations(&config);
        let after_second = subject.cache_stats();
        assert_eq!(first, second);
        assert_eq!(after_second.compiles, 1, "second call recompiled");
        assert_eq!(after_second.traces, 1, "second call retraced");
        assert_eq!(after_second.checks, 1, "second call rechecked");
        assert!(after_second.hits > after_first.hits);
    }

    #[test]
    fn clones_share_the_cache_but_fresh_caches_are_cold() {
        let subjects = subject_pool(903, 1);
        let subject = &subjects[0];
        let config = CompilerConfig::new(Personality::Lcc, OptLevel::O2);
        let _ = subject.violations(&config);
        let clone = subject.clone();
        let _ = clone.violations(&config);
        assert_eq!(
            clone.cache_stats().compiles,
            1,
            "clone missed the shared cache"
        );
        let fresh = subject.with_fresh_cache();
        assert_eq!(fresh.cache_stats(), CacheStats::default());
        let _ = fresh.violations(&config);
        assert_eq!(fresh.cache_stats().compiles, 1);
        assert_eq!(subject.cache_stats().compiles, 1, "fresh cache leaked back");
    }

    #[test]
    fn distinct_configurations_do_not_alias_in_the_cache() {
        let subjects = subject_pool(904, 1);
        let subject = &subjects[0];
        let o2 = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        for budget in 0..=o2.pass_schedule().len() {
            let _ = subject.violations(&o2.clone().with_pass_budget(budget));
        }
        let stats = subject.cache_stats();
        // Every budget is a distinct cache entry — but all of them are
        // derived from one recorded pipeline by code generation alone, so
        // no full compile runs at all.
        assert_eq!(stats.codegen_only, o2.pass_schedule().len() + 1);
        assert_eq!(stats.compiles, 0);
        // Each budget's trace is serviced through its stop plan.
        assert!(stats.plan_hits > 0);
    }

    #[test]
    fn snapshot_derived_executables_match_from_scratch_budget_compiles() {
        // The cache-level counterpart of the compiler's snapshot tests:
        // a budgeted compile through `Subject` (codegen-only) must equal
        // the plain `compile()` of the same configuration, structurally.
        let subjects = subject_pool(906, 2);
        let config = CompilerConfig::new(Personality::Lcc, OptLevel::O2);
        for subject in &subjects {
            for budget in [0, 3, config.pass_schedule().len()] {
                let budgeted = config.clone().with_pass_budget(budget);
                let derived = subject.compile_shared(&budgeted);
                assert_eq!(
                    *derived,
                    compile(&subject.program, &budgeted),
                    "budget {budget}"
                );
            }
            let stats = subject.cache_stats();
            assert_eq!(stats.compiles, 0, "a budgeted compile ran the pipeline");
            assert_eq!(stats.codegen_only, 3);
        }
    }

    #[test]
    fn targeted_oracle_agrees_with_the_full_sweep() {
        let subjects = subject_pool(905, 4);
        for subject in &subjects {
            for personality in [Personality::Ccg, Personality::Lcc] {
                for &level in personality.levels() {
                    let config = CompilerConfig::new(personality, level);
                    for violation in subject.violations(&config).iter() {
                        assert!(subject.violation_occurs(&config, violation));
                    }
                    // A variable no program contains never violates.
                    let bogus = Violation {
                        variable: "no_such_variable".into(),
                        ..subject
                            .violations(&config)
                            .first()
                            .cloned()
                            .unwrap_or(Violation {
                                conjecture: holes_core::Conjecture::C1,
                                line: 1,
                                variable: "".into(),
                                function: subject.program.main(),
                                observed: holes_core::Observed::NotVisible,
                            })
                    };
                    assert!(!subject.violation_occurs(&config, &bogus));
                }
            }
        }
    }
}
