//! The end-to-end testing pipeline of the paper: program generation,
//! compilation matrices, debugger tracing, conjecture checking, violation
//! triage, test-case reduction, and the aggregation that regenerates every
//! table and figure of the evaluation.
//!
//! The central type is [`Subject`]: one generated program together with its
//! analyses, compiled and traced on demand for any compiler configuration.
//! On top of it:
//!
//! * [`campaign`] runs the violation campaigns of §5.1/§5.2 (Table 1,
//!   Figures 2 and 3),
//! * [`triage`] pinpoints culprit optimizations via pass bisection (lcc) or
//!   per-flag disabling (ccg), as in §4.3 (Table 2),
//! * [`reduce`] shrinks a violating program while preserving both the
//!   violation and its culprit, as in §4.4,
//! * [`report`] classifies violations by DIE manifestation and debugger
//!   cross-check, as in §5.3 (Table 3),
//! * [`regression`] reruns pools across compiler versions for the §5.4
//!   regression study (Table 4, Figure 4) and the §2 quantitative study
//!   (Figure 1).

#![forbid(unsafe_code)]

pub mod campaign;
pub mod reduce;
pub mod regression;
pub mod report;
pub mod triage;

use holes_compiler::{compile, CompilerConfig, Executable, OptLevel, Personality};
use holes_core::Violation;
use holes_debugger::{trace, DebugTrace, DebuggerKind};
use holes_minic::analysis::ProgramAnalysis;
use holes_minic::ast::Program;
use holes_minic::lines::SourceMap;
use holes_progen::{generate_pool, GeneratedProgram};

/// One test subject: a program plus everything needed to check conjectures
/// against any compiler configuration.
#[derive(Debug, Clone)]
pub struct Subject {
    /// The program (lines assigned).
    pub program: Program,
    /// Rendered source and line maps.
    pub source: SourceMap,
    /// Static analyses (conjecture sites).
    pub analysis: ProgramAnalysis,
    /// Seed that generated the program (0 for directed programs).
    pub seed: u64,
}

impl Subject {
    /// Wrap a generated program.
    pub fn from_generated(generated: GeneratedProgram) -> Subject {
        Subject {
            program: generated.program,
            source: generated.source,
            analysis: generated.analysis,
            seed: generated.seed,
        }
    }

    /// Wrap a hand-written program (lines are assigned here).
    pub fn from_program(mut program: Program) -> Subject {
        let source = program.assign_lines();
        let analysis = ProgramAnalysis::analyze(&program);
        Subject {
            program,
            source,
            analysis,
            seed: 0,
        }
    }

    /// Compile under a configuration.
    pub fn compile(&self, config: &CompilerConfig) -> Executable {
        compile(&self.program, config)
    }

    /// Compile and trace with the native debugger of the configuration's
    /// personality.
    pub fn trace(&self, config: &CompilerConfig) -> DebugTrace {
        let exe = self.compile(config);
        trace(&exe, DebuggerKind::native_for(config.personality))
    }

    /// Check all conjectures under a configuration, using the native
    /// debugger.
    pub fn violations(&self, config: &CompilerConfig) -> Vec<Violation> {
        let trace = self.trace(config);
        holes_core::check_all(&self.program, &self.analysis, &self.source, &trace)
    }

    /// Check whether a *specific* violation (same conjecture, line, variable)
    /// occurs under a configuration — the oracle used by triage and
    /// reduction.
    pub fn violation_occurs(&self, config: &CompilerConfig, violation: &Violation) -> bool {
        self.violations(config).iter().any(|v| {
            v.conjecture == violation.conjecture
                && v.line == violation.line
                && v.variable == violation.variable
        })
    }
}

/// Generate a pool of subjects from consecutive seeds.
pub fn subject_pool(base_seed: u64, count: usize) -> Vec<Subject> {
    generate_pool(base_seed, count)
        .into_iter()
        .map(Subject::from_generated)
        .collect()
}

/// The levels the paper evaluates for a personality (excluding `-O0`).
pub fn evaluated_levels(personality: Personality) -> Vec<OptLevel> {
    personality.levels().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subjects_compile_and_trace() {
        let subjects = subject_pool(900, 2);
        assert_eq!(subjects.len(), 2);
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        for subject in &subjects {
            let trace = subject.trace(&config);
            assert!(trace.lines_reached() > 0);
        }
    }

    #[test]
    fn violation_oracle_is_consistent() {
        let subjects = subject_pool(901, 4);
        let config = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
        for subject in subjects {
            for violation in subject.violations(&config) {
                assert!(subject.violation_occurs(&config, &violation));
            }
        }
    }
}
