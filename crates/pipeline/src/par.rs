//! Deterministic scoped-thread parallelism for the embarrassingly parallel
//! outer loops of the pipeline.
//!
//! The campaigns, triage sweeps, and regression studies evaluate independent
//! (subject, configuration) cells; [`par_map`] fans them out over a small
//! scoped worker pool and returns the results **in input order**, so every
//! aggregate built from them (Table 1, the Venn distributions, Table 4, the
//! Figure 4 grid) is byte-identical to a serial run. Work is handed out via
//! an atomic cursor, so uneven cell costs (a subject with many violations
//! next to a clean one) balance automatically.
//!
//! The worker count follows `std::thread::available_parallelism`, capped by
//! the `HOLES_THREADS` environment variable (`HOLES_THREADS=1` forces serial
//! execution, which is occasionally useful for profiling and debugging).
//! Parallelism is **single-level**: a [`par_map`] reached from inside
//! another `par_map`'s worker runs its items inline on that worker, so
//! composed stages (a parallel triage whose flag search is itself a
//! `par_map`, a campaign invoked from a caller's fan-out) never multiply
//! into workers × workers threads.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

thread_local! {
    /// Set while the current thread is a `par_map` worker.
    static IN_PAR_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// The worker-pool size used by [`par_map`].
pub fn max_workers() -> usize {
    let available = std::thread::available_parallelism().map_or(1, usize::from);
    match std::env::var("HOLES_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(requested) => requested.clamp(1, available.max(1)),
        None => available,
    }
}

/// Apply `f` to every item on a scoped thread pool and return the results in
/// input order. `f` receives the item's index alongside the item.
///
/// # Panics
///
/// Re-raises the panic of any worker after the scope joins.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = max_workers().min(items.len());
    if workers <= 1 || IN_PAR_WORKER.get() {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| f(i, item))
            .collect();
    }
    let cursor = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    IN_PAR_WORKER.set(true);
                    let mut chunk = Vec::new();
                    loop {
                        let index = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(item) = items.get(index) else { break };
                        chunk.push((index, f(index, item)));
                    }
                    chunk
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|handle| {
                handle
                    .join()
                    .unwrap_or_else(|panic| std::panic::resume_unwind(panic))
            })
            .collect()
    });
    debug_assert_eq!(indexed.len(), items.len());
    indexed.sort_unstable_by_key(|(index, _)| *index);
    indexed.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..257).collect();
        let doubled = par_map(&items, |index, &item| {
            assert_eq!(index, item);
            item * 2
        });
        assert_eq!(doubled, items.iter().map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn handles_empty_and_single_inputs() {
        assert_eq!(par_map(&[] as &[u8], |_, &b| b), Vec::<u8>::new());
        assert_eq!(par_map(&[7u8], |_, &b| b + 1), vec![8]);
    }

    #[test]
    fn matches_serial_map_on_uneven_workloads() {
        let items: Vec<u64> = (0..64).collect();
        let expensive = |_, &n: &u64| {
            // Uneven per-item cost to exercise the work-stealing cursor.
            (0..(n % 7) * 1000).fold(n, |acc, x| acc.wrapping_add(x))
        };
        let serial: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, n)| expensive(i, n))
            .collect();
        assert_eq!(par_map(&items, expensive), serial);
    }

    #[test]
    fn worker_count_is_positive() {
        assert!(max_workers() >= 1);
    }

    #[test]
    fn nested_par_map_runs_inline_on_the_worker() {
        let outer: Vec<usize> = (0..16).collect();
        let results = par_map(&outer, |_, &o| {
            // If this inner call spawned workers, they would be fresh threads
            // with IN_PAR_WORKER unset; assert it stays inline instead.
            let inner: Vec<usize> = (0..8).collect();
            let inner_results = par_map(&inner, |_, &i| {
                assert!(
                    IN_PAR_WORKER.get() || max_workers() == 1,
                    "nested par_map escaped to a new thread"
                );
                o * 100 + i
            });
            inner_results.iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..16).map(|o| (0..8).map(|i| o * 100 + i).sum()).collect();
        assert_eq!(results, expected);
    }
}
