//! Violation-preserving test-case reduction (§4.4).
//!
//! The paper builds on C-Reduce and adds an oracle that keeps both the
//! conjecture violation *and* the culprit optimization alive at every
//! reduction step. Our reducer works directly on the MiniC AST: it repeatedly
//! tries to delete statements (outermost first) and accepts a deletion only
//! when
//!
//! 1. the program still validates and terminates,
//! 2. the same violation (conjecture + variable) still occurs when compiling
//!    with the original configuration, and
//! 3. — when a culprit pass is supplied — the violation still *disappears*
//!    when that pass is disabled, so a different, more dominant defect cannot
//!    silently take over (the paper's §4.4 refinement).

use holes_compiler::CompilerConfig;
use holes_core::{Conjecture, SiteQuery, Violation};
use holes_minic::ast::{Program, Stmt, StmtKind};
use holes_minic::interp::Interpreter;
use holes_minic::validate::validate;

use crate::fault::{self, FaultPolicy, SubjectOutcome};
use crate::Subject;

/// The result of reducing a violating program.
#[derive(Debug, Clone)]
pub struct ReducedCase {
    /// The reduced subject.
    pub subject: Subject,
    /// Number of statements in the original program.
    pub original_statements: usize,
    /// Number of statements after reduction.
    pub reduced_statements: usize,
    /// Number of reduction attempts performed.
    pub attempts: usize,
}

impl ReducedCase {
    /// Fraction of statements removed.
    pub fn reduction_ratio(&self) -> f64 {
        if self.original_statements == 0 {
            return 0.0;
        }
        1.0 - self.reduced_statements as f64 / self.original_statements as f64
    }
}

/// The oracle: does `program` still exhibit the violation (and, if a culprit
/// is given, does disabling the culprit still make it disappear)?
fn still_violates(
    program: &Program,
    config: &CompilerConfig,
    conjecture: Conjecture,
    variable: &str,
    culprit: Option<&str>,
    fuel_limit: Option<u64>,
) -> bool {
    if validate(program).is_err() {
        return false;
    }
    if Interpreter::new(program).run().is_err() {
        return false;
    }
    let subject = Subject::from_program(program.clone()).with_fuel_limit(fuel_limit);
    // Reduction moves lines around, so the oracle matches the violation by
    // (conjecture, variable) at *any* line — a targeted query that stops at
    // the first matching site instead of sweeping every conjecture.
    let query = SiteQuery {
        conjecture,
        line: None,
        variable,
        function: None,
    };
    if !subject.query(config, &query) {
        return false;
    }
    if let Some(pass) = culprit {
        let disabled = config.clone().with_disabled_pass(pass);
        if subject.query(&disabled, &query) {
            // The violation survives without the culprit: a different defect
            // took over, reject the step to keep triage sound.
            return false;
        }
    }
    true
}

/// Reduce a violating subject. `culprit` is the pass identified by triage
/// (pass `None` to reduce without culprit preservation).
pub fn reduce(
    subject: &Subject,
    config: &CompilerConfig,
    violation: &Violation,
    culprit: Option<&str>,
) -> ReducedCase {
    reduce_with_fuel(subject, config, violation, culprit, None)
}

/// [`reduce`] under an explicit [`FaultPolicy`]: the whole reduction —
/// including every oracle probe on every candidate program — runs inside
/// [`fault::contain`] with the policy's fuel limit threaded into each
/// probe's virtual machines, so a candidate that panics the pipeline or
/// never terminates becomes a [`crate::fault::SubjectFault`] instead of
/// hanging or crashing the reducer.
pub fn reduce_with_policy(
    subject: &Subject,
    config: &CompilerConfig,
    violation: &Violation,
    culprit: Option<&str>,
    policy: &FaultPolicy,
    subject_index: usize,
) -> SubjectOutcome<ReducedCase> {
    fault::contain(policy, subject.seed, subject_index, || {
        reduce_with_fuel(subject, config, violation, culprit, policy.fuel_limit)
    })
}

/// The reduction engine, with the step budget each oracle probe's machines
/// run under (`None` = the backends' default fuel and the historical
/// silent-truncation behavior).
fn reduce_with_fuel(
    subject: &Subject,
    config: &CompilerConfig,
    violation: &Violation,
    culprit: Option<&str>,
    fuel_limit: Option<u64>,
) -> ReducedCase {
    let conjecture = violation.conjecture;
    let variable = violation.variable.clone();
    let mut best = subject.program.clone();
    let original_statements = best.stmt_count();
    let mut attempts = 0usize;
    let mut progress = true;
    while progress {
        progress = false;
        let main = best.main();
        let body_len = best.function(main).body.len();
        for index in (0..body_len).rev() {
            let mut candidate = best.clone();
            let removed = candidate.functions[main.0].body.remove(index);
            // Never remove the statement hosting the violating construct
            // trivially: removal is attempted anyway and rejected by the
            // oracle when the violation disappears.
            if matches!(removed.kind, StmtKind::Return(_)) && index == body_len - 1 {
                continue;
            }
            attempts += 1;
            // One candidate per attempt: mutate it, re-assign its lines in
            // place, and keep it directly on oracle success (line
            // assignment is a pure function of program structure, so the
            // next round's re-assignment sees the same program either way).
            candidate.assign_lines();
            if still_violates(
                &candidate, config, conjecture, &variable, culprit, fuel_limit,
            ) {
                best = candidate;
                progress = true;
            }
        }
        // Also try hollowing out loop and branch bodies.
        let main = best.main();
        for index in 0..best.function(main).body.len() {
            let mut candidate = best.clone();
            let stmt = &mut candidate.functions[main.0].body[index];
            let simplified = simplify_stmt(stmt);
            if !simplified {
                continue;
            }
            attempts += 1;
            candidate.assign_lines();
            if still_violates(
                &candidate, config, conjecture, &variable, culprit, fuel_limit,
            ) {
                best = candidate;
                progress = true;
            }
        }
    }
    let mut final_program = best;
    final_program.assign_lines();
    let reduced_statements = final_program.stmt_count();
    ReducedCase {
        subject: Subject::from_program(final_program),
        original_statements,
        reduced_statements,
        attempts,
    }
}

/// Try to shrink a compound statement in place; returns whether anything
/// changed.
fn simplify_stmt(stmt: &mut Stmt) -> bool {
    match &mut stmt.kind {
        StmtKind::For { body, .. } if body.len() > 1 => {
            body.truncate(1);
            true
        }
        StmtKind::If {
            then_branch,
            else_branch,
            ..
        } if !else_branch.is_empty() || then_branch.len() > 1 => {
            else_branch.clear();
            then_branch.truncate(1);
            true
        }
        StmtKind::Block(body) if body.len() > 1 => {
            body.truncate(1);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::subject_pool;
    use holes_compiler::Personality;

    #[test]
    fn reduction_preserves_the_violation_and_shrinks_the_program() {
        let subjects = subject_pool(1300, 6);
        let personality = Personality::Ccg;
        let result = run_campaign(&subjects, personality, personality.trunk());
        let Some(record) = result.records.first() else {
            // Extremely unlikely with the trunk defect catalogue; nothing to
            // reduce in that case.
            return;
        };
        let config = CompilerConfig::new(personality, record.level);
        let subject = &subjects[record.subject];
        let reduced = reduce(subject, &config, &record.violation, None);
        assert!(reduced.reduced_statements <= reduced.original_statements);
        // The reduced program still violates the same conjecture for the same
        // variable.
        let still = reduced.subject.violations(&config).iter().any(|v| {
            v.conjecture == record.violation.conjecture && v.variable == record.violation.variable
        });
        assert!(still, "reduction lost the violation");
        assert!(reduced.attempts > 0);
        let _ = reduced.reduction_ratio();
    }
}
