//! Cross-version studies: the quantitative study of §2 (Figure 1), the
//! regression study of §5.4 (Table 4) and the per-program conjecture grid
//! (Figure 4).

use std::collections::BTreeSet;

use holes_compiler::{CompilerConfig, OptLevel, Personality};
use holes_core::metrics::Metrics;
use holes_core::Conjecture;
use holes_debugger::{trace, DebuggerKind};

use crate::campaign::run_campaign;
use crate::Subject;

/// One row of the Figure 1 data: average metrics for a (version, level).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRow {
    /// Version name.
    pub version: &'static str,
    /// Optimization level.
    pub level: OptLevel,
    /// Pool-averaged metrics.
    pub metrics: Metrics,
}

/// Compute the Figure 1 series: for every version and level of a personality,
/// the pool-averaged line coverage, availability of variables and product.
pub fn quantitative_study(subjects: &[Subject], personality: Personality) -> Vec<MetricsRow> {
    let mut rows = Vec::new();
    for (version, name) in personality.version_names().iter().enumerate() {
        for &level in personality.levels() {
            let mut values = Vec::with_capacity(subjects.len());
            for subject in subjects {
                let baseline_cfg =
                    CompilerConfig::new(personality, OptLevel::O0).with_version(version);
                let opt_cfg = CompilerConfig::new(personality, level).with_version(version);
                let baseline = trace(
                    &subject.compile(&baseline_cfg),
                    DebuggerKind::native_for(personality),
                );
                let optimized = trace(
                    &subject.compile(&opt_cfg),
                    DebuggerKind::native_for(personality),
                );
                values.push(Metrics::compute(&optimized, &baseline));
            }
            rows.push(MetricsRow {
                version: name,
                level,
                metrics: Metrics::average(&values),
            });
        }
    }
    rows
}

/// Table 4: unique violation counts per conjecture for every version of a
/// personality.
#[derive(Debug, Clone, Default)]
pub struct VersionTable {
    /// `(version name, [C1, C2, C3] unique counts)`.
    pub rows: Vec<(&'static str, [usize; 3])>,
}

impl VersionTable {
    /// Render as plain text.
    pub fn render(&self) -> String {
        let mut out = String::from("version     C1     C2     C3\n");
        for (name, counts) in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>5} {:>5} {:>5}\n",
                name, counts[0], counts[1], counts[2]
            ));
        }
        out
    }

    /// Unique counts for a version, if present.
    pub fn counts_for(&self, version: &str) -> Option<[usize; 3]> {
        self.rows
            .iter()
            .find(|(name, _)| *name == version)
            .map(|(_, c)| *c)
    }
}

/// Run the campaign for every version of a personality (Table 4).
pub fn version_table(subjects: &[Subject], personality: Personality) -> VersionTable {
    let mut table = VersionTable::default();
    for (version, name) in personality.version_names().iter().enumerate() {
        let result = run_campaign(subjects, personality, version);
        table.rows.push((
            name,
            [
                result.unique(Conjecture::C1),
                result.unique(Conjecture::C2),
                result.unique(Conjecture::C3),
            ],
        ));
    }
    table
}

/// Figure 4: for each version, the number of conjectures (0–3) each program
/// violates.
pub fn conjecture_grid(subjects: &[Subject], personality: Personality) -> Vec<Vec<u8>> {
    let mut grid = Vec::new();
    for version in 0..personality.version_names().len() {
        let result = run_campaign(subjects, personality, version);
        let mut row = vec![0u8; subjects.len()];
        for (index, cell) in row.iter_mut().enumerate() {
            let conjectures: BTreeSet<Conjecture> = result
                .records
                .iter()
                .filter(|r| r.subject == index)
                .map(|r| r.violation.conjecture)
                .collect();
            *cell = conjectures.len() as u8;
        }
        grid.push(row);
    }
    grid
}

/// Render the Figure 4 grid with the paper's colour-coded cells replaced by
/// digits (rows of 25 programs, one block per version).
pub fn render_grid(grid: &[Vec<u8>], personality: Personality) -> String {
    let mut out = String::new();
    for (version, row) in grid.iter().enumerate() {
        out.push_str(&format!(
            "{} {}\n",
            personality.name(),
            personality.version_names()[version]
        ));
        for chunk in row.chunks(25) {
            let line: String = chunk.iter().map(|c| char::from(b'0' + *c)).collect();
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject_pool;

    #[test]
    fn version_table_shows_regressions_being_fixed() {
        let subjects = subject_pool(1400, 8);
        let table = version_table(&subjects, Personality::Ccg);
        assert_eq!(table.rows.len(), 6);
        let oldest = table.counts_for("4.8").unwrap();
        let trunk = table.counts_for("trunk").unwrap();
        let patched = table.counts_for("patched").unwrap();
        let total = |c: [usize; 3]| c.iter().sum::<usize>();
        // The strong trend of Table 4: Conjecture 2 violations decrease a lot
        // between old releases and trunk, and the patched release improves on
        // trunk overall (the 105158 fix).
        assert!(
            oldest[1] >= trunk[1],
            "older releases should have at least as many C2 violations: {table:?}"
        );
        assert!(
            total(patched) <= total(trunk),
            "the patched release should improve on trunk: {table:?}"
        );
        assert!(table.render().contains("trunk"));
    }

    #[test]
    fn grid_has_one_row_per_version_and_cell_per_program() {
        let subjects = subject_pool(1410, 5);
        let grid = conjecture_grid(&subjects, Personality::Lcc);
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().all(|row| row.len() == 5));
        assert!(grid.iter().flatten().all(|&c| c <= 3));
        let rendered = render_grid(&grid, Personality::Lcc);
        assert!(rendered.contains("lcc trunk"));
    }

    #[test]
    fn quantitative_study_produces_rows_for_every_level() {
        let subjects = subject_pool(1420, 2);
        let rows = quantitative_study(&subjects, Personality::Ccg);
        assert_eq!(
            rows.len(),
            Personality::Ccg.version_names().len() * Personality::Ccg.levels().len()
        );
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.metrics.line_coverage));
            assert!((0.0..=1.0).contains(&row.metrics.availability));
        }
    }
}
