//! Cross-version studies: the quantitative study of §2 (Figure 1), the
//! regression study of §5.4 (Table 4) and the per-program conjecture grid
//! (Figure 4).

use std::collections::BTreeSet;

use holes_compiler::{CompilerConfig, OptLevel, Personality};
use holes_core::metrics::Metrics;
use holes_core::Conjecture;
use holes_debugger::DebuggerKind;

use crate::campaign::CampaignResult;
use crate::par;
use crate::Subject;

/// One row of the Figure 1 data: average metrics for a (version, level).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRow {
    /// Version name.
    pub version: &'static str,
    /// Optimization level.
    pub level: OptLevel,
    /// Pool-averaged metrics.
    pub metrics: Metrics,
}

/// Compute the Figure 1 series: for every version and level of a personality,
/// the pool-averaged line coverage, availability of variables and product.
///
/// The (version, level) cells are independent and evaluated in parallel, in
/// row order. Within a version, the `-O0` baseline trace of each subject is
/// shared across all levels through the subject's artifact cache instead of
/// being re-debugged per level.
pub fn quantitative_study(subjects: &[Subject], personality: Personality) -> Vec<MetricsRow> {
    let kind = DebuggerKind::native_for(personality);
    let cells: Vec<(usize, &'static str, OptLevel)> = personality
        .version_names()
        .iter()
        .enumerate()
        .flat_map(|(version, &name)| {
            personality
                .levels()
                .iter()
                .map(move |&level| (version, name, level))
        })
        .collect();
    par::par_map(&cells, |_, &(version, name, level)| {
        let baseline_cfg = CompilerConfig::new(personality, OptLevel::O0).with_version(version);
        let opt_cfg = CompilerConfig::new(personality, level).with_version(version);
        let values: Vec<Metrics> = subjects
            .iter()
            .map(|subject| {
                let baseline = subject.trace_shared(&baseline_cfg, kind);
                let optimized = subject.trace_shared(&opt_cfg, kind);
                Metrics::compute(&optimized, &baseline)
            })
            .collect();
        MetricsRow {
            version: name,
            level,
            metrics: Metrics::average(&values),
        }
    })
}

/// Table 4: unique violation counts per conjecture for every version of a
/// personality.
#[derive(Debug, Clone, Default)]
pub struct VersionTable {
    /// `(version name, [C1, C2, C3] unique counts)`.
    pub rows: Vec<(&'static str, [usize; 3])>,
}

impl VersionTable {
    /// Render as plain text.
    pub fn render(&self) -> String {
        let mut out = String::from("version     C1     C2     C3\n");
        for (name, counts) in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>5} {:>5} {:>5}\n",
                name, counts[0], counts[1], counts[2]
            ));
        }
        out
    }

    /// Unique counts for a version, if present.
    pub fn counts_for(&self, version: &str) -> Option<[usize; 3]> {
        self.rows
            .iter()
            .find(|(name, _)| *name == version)
            .map(|(_, c)| *c)
    }
}

/// The version-major (version, subject) cell list the cross-version studies
/// fan out over: one flat `par_map` over all cells keeps full parallelism
/// without nesting a per-version campaign inside a per-version worker.
fn version_subject_cells(subjects: &[Subject], personality: Personality) -> Vec<(usize, usize)> {
    (0..personality.version_names().len())
        .flat_map(|version| (0..subjects.len()).map(move |subject| (version, subject)))
        .collect()
}

/// Run the campaign for every version of a personality (Table 4). All
/// (version, subject) cells are evaluated in one parallel fan-out; rows are
/// assembled oldest-version-first as before, byte-identical to running
/// [`crate::campaign::run_campaign`] per version.
pub fn version_table(subjects: &[Subject], personality: Personality) -> VersionTable {
    let levels = personality.levels().to_vec();
    let cells = version_subject_cells(subjects, personality);
    let per_cell = par::par_map(&cells, |_, &(version, subject)| {
        crate::campaign::subject_records(
            &subjects[subject],
            subject,
            personality,
            version,
            holes_compiler::BackendKind::Reg,
            &levels,
        )
    });
    let mut cells_left = per_cell.into_iter();
    let rows = personality
        .version_names()
        .iter()
        .map(|&name| {
            let result = CampaignResult {
                records: cells_left.by_ref().take(subjects.len()).flatten().collect(),
                programs: subjects.len(),
                levels: levels.clone(),
                faults: Vec::new(),
            };
            (
                name,
                [
                    result.unique(Conjecture::C1),
                    result.unique(Conjecture::C2),
                    result.unique(Conjecture::C3),
                ],
            )
        })
        .collect();
    VersionTable { rows }
}

/// Figure 4: for each version, the number of conjectures (0–3) each program
/// violates. All (version, subject) cells run in one parallel fan-out; rows
/// stay in version order.
pub fn conjecture_grid(subjects: &[Subject], personality: Personality) -> Vec<Vec<u8>> {
    let levels = personality.levels().to_vec();
    let cells = version_subject_cells(subjects, personality);
    let counts = par::par_map(&cells, |_, &(version, subject)| {
        let records = crate::campaign::subject_records(
            &subjects[subject],
            subject,
            personality,
            version,
            holes_compiler::BackendKind::Reg,
            &levels,
        );
        let conjectures: BTreeSet<Conjecture> =
            records.iter().map(|r| r.violation.conjecture).collect();
        conjectures.len() as u8
    });
    counts.chunks(subjects.len()).map(<[u8]>::to_vec).collect()
}

/// Render the Figure 4 grid with the paper's colour-coded cells replaced by
/// digits (rows of 25 programs, one block per version).
pub fn render_grid(grid: &[Vec<u8>], personality: Personality) -> String {
    let mut out = String::new();
    for (version, row) in grid.iter().enumerate() {
        out.push_str(&format!(
            "{} {}\n",
            personality.name(),
            personality.version_names()[version]
        ));
        for chunk in row.chunks(25) {
            let line: String = chunk.iter().map(|c| char::from(b'0' + *c)).collect();
            out.push_str(&line);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject_pool;

    #[test]
    fn version_table_shows_regressions_being_fixed() {
        let subjects = subject_pool(1400, 8);
        let table = version_table(&subjects, Personality::Ccg);
        assert_eq!(table.rows.len(), 6);
        let oldest = table.counts_for("4.8").unwrap();
        let trunk = table.counts_for("trunk").unwrap();
        let patched = table.counts_for("patched").unwrap();
        let total = |c: [usize; 3]| c.iter().sum::<usize>();
        // The strong trend of Table 4: Conjecture 2 violations decrease a lot
        // between old releases and trunk, and the patched release improves on
        // trunk overall (the 105158 fix).
        assert!(
            oldest[1] >= trunk[1],
            "older releases should have at least as many C2 violations: {table:?}"
        );
        assert!(
            total(patched) <= total(trunk),
            "the patched release should improve on trunk: {table:?}"
        );
        assert!(table.render().contains("trunk"));
    }

    #[test]
    fn grid_has_one_row_per_version_and_cell_per_program() {
        let subjects = subject_pool(1410, 5);
        let grid = conjecture_grid(&subjects, Personality::Lcc);
        assert_eq!(grid.len(), 6);
        assert!(grid.iter().all(|row| row.len() == 5));
        assert!(grid.iter().flatten().all(|&c| c <= 3));
        let rendered = render_grid(&grid, Personality::Lcc);
        assert!(rendered.contains("lcc trunk"));
    }

    #[test]
    fn quantitative_study_produces_rows_for_every_level() {
        let subjects = subject_pool(1420, 2);
        let rows = quantitative_study(&subjects, Personality::Ccg);
        assert_eq!(
            rows.len(),
            Personality::Ccg.version_names().len() * Personality::Ccg.levels().len()
        );
        for row in &rows {
            assert!((0.0..=1.0).contains(&row.metrics.line_coverage));
            assert!((0.0..=1.0).contains(&row.metrics.availability));
        }
    }
}
