//! JUnit XML emission: render a set of per-violation verdicts as the
//! `testsuites` XML dialect every CI test-summary UI understands.
//!
//! The mapping (used by [`crate::baseline::BaselineDiff::junit`]) treats
//! each violation fingerprint as one test case: *known* violations pass
//! (the gate tolerates them), *new* ones fail (they gate), and *fixed*
//! ones are skipped (gone, kept visible for bookkeeping). The XML is
//! hand-rolled like the rest of the wire formats and fully deterministic.

/// The verdict of one test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CaseOutcome {
    /// The case passed (a known, tolerated violation).
    Passed,
    /// The case failed with a message (a gating regression).
    Failed {
        /// Message shown by the CI UI for the failure.
        message: String,
    },
    /// The case was skipped with a message (a fixed violation).
    Skipped {
        /// Message shown by the CI UI for the skip.
        message: String,
    },
}

/// One JUnit test case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestCase {
    /// Grouping key shown as the case's class (e.g. `holes.C1`).
    pub classname: String,
    /// The case name — by convention a canonical violation fingerprint.
    pub name: String,
    /// The verdict.
    pub outcome: CaseOutcome,
}

/// Escape a string for use in XML text and attribute values.
fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Render a complete JUnit document with one `testsuite` named `suite`
/// holding the given cases, in the order given. Deterministic: equal
/// inputs produce equal bytes, and the output ends with a newline.
pub fn junit_xml(suite: &str, cases: &[TestCase]) -> String {
    let failures = cases
        .iter()
        .filter(|c| matches!(c.outcome, CaseOutcome::Failed { .. }))
        .count();
    let skipped = cases
        .iter()
        .filter(|c| matches!(c.outcome, CaseOutcome::Skipped { .. }))
        .count();
    let mut out = String::from("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str(&format!(
        "<testsuites tests=\"{total}\" failures=\"{failures}\">\n\
         \u{20} <testsuite name=\"{name}\" tests=\"{total}\" failures=\"{failures}\" \
         skipped=\"{skipped}\">\n",
        total = cases.len(),
        name = xml_escape(suite),
    ));
    for case in cases {
        let open = format!(
            "    <testcase classname=\"{}\" name=\"{}\"",
            xml_escape(&case.classname),
            xml_escape(&case.name),
        );
        match &case.outcome {
            CaseOutcome::Passed => {
                out.push_str(&open);
                out.push_str("/>\n");
            }
            CaseOutcome::Failed { message } => {
                out.push_str(&open);
                out.push_str(&format!(
                    ">\n      <failure message=\"{}\"/>\n    </testcase>\n",
                    xml_escape(message),
                ));
            }
            CaseOutcome::Skipped { message } => {
                out.push_str(&open);
                out.push_str(&format!(
                    ">\n      <skipped message=\"{}\"/>\n    </testcase>\n",
                    xml_escape(message),
                ));
            }
        }
    }
    out.push_str("  </testsuite>\n</testsuites>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_structure_cover_all_outcomes() {
        let xml = junit_xml(
            "baseline-diff",
            &[
                TestCase {
                    classname: "holes.C1".to_owned(),
                    name: "s1:C1:L5:a".to_owned(),
                    outcome: CaseOutcome::Passed,
                },
                TestCase {
                    classname: "holes.C3".to_owned(),
                    name: "s10:C3:L2:c".to_owned(),
                    outcome: CaseOutcome::Failed {
                        message: "new violation".to_owned(),
                    },
                },
                TestCase {
                    classname: "holes.C2".to_owned(),
                    name: "s2:C2:L6:b".to_owned(),
                    outcome: CaseOutcome::Skipped {
                        message: "fixed".to_owned(),
                    },
                },
            ],
        );
        assert!(xml.starts_with("<?xml version=\"1.0\""));
        assert!(xml.contains("<testsuites tests=\"3\" failures=\"1\">"));
        assert!(xml.contains("name=\"baseline-diff\" tests=\"3\" failures=\"1\" skipped=\"1\""));
        assert!(xml.contains("<testcase classname=\"holes.C1\" name=\"s1:C1:L5:a\"/>"));
        assert!(xml.contains("<failure message=\"new violation\"/>"));
        assert!(xml.contains("<skipped message=\"fixed\"/>"));
        assert!(xml.ends_with("</testsuites>\n"));
    }

    #[test]
    fn escaping_covers_the_five_xml_specials() {
        assert_eq!(
            xml_escape("a&b<c>d\"e'f"),
            "a&amp;b&lt;c&gt;d&quot;e&apos;f"
        );
        let xml = junit_xml(
            "a<b>",
            &[TestCase {
                classname: "x&y".to_owned(),
                name: "\"quoted\"".to_owned(),
                outcome: CaseOutcome::Failed {
                    message: "it's <broken>".to_owned(),
                },
            }],
        );
        assert!(xml.contains("name=\"a&lt;b&gt;\""));
        assert!(xml.contains("classname=\"x&amp;y\""));
        assert!(xml.contains("message=\"it&apos;s &lt;broken&gt;\""));
    }

    #[test]
    fn empty_suite_renders_zero_counts() {
        let xml = junit_xml("empty", &[]);
        assert!(xml.contains("<testsuites tests=\"0\" failures=\"0\">"));
        assert!(xml.contains("skipped=\"0\""));
    }
}
