//! Issue classification and reporting (§5.3, Table 3).
//!
//! For every unique violation the reporter determines:
//!
//! * the **DIE-level manifestation** — Missing, Hollow, Incomplete or
//!   covered-but-undisplayable DIE — by inspecting the executable's debug
//!   information at the violating program point, and
//! * whether the issue lies in the **compiler or the debugger**, by repeating
//!   the inspection in the *other* debugger personality, exactly as the paper
//!   validates violations "also in a different debugger" (§4.2).
//!
//! The [`sarif`] and [`junit`] submodules render violation sets in the two
//! CI-native interchange formats — SARIF 2.1.0 for code-scanning uploads
//! and JUnit XML for test-summary UIs — consumed by `holes report --format`
//! and `holes baseline diff --format` (see [`crate::baseline`]).

pub mod junit;
pub mod sarif;

use std::collections::{BTreeMap, BTreeSet};

use holes_compiler::CompilerConfig;
use holes_core::json::Json;
use holes_core::{Conjecture, Violation};
use holes_debugger::DebuggerKind;
use holes_debuginfo::{categorize_variable, DieCategory};

use crate::campaign::{unique_key, CampaignResult, UniqueKey};
use crate::Subject;

/// Whether a violation is attributed to the compiler or to the native
/// debugger.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum IssueComponent {
    /// The debug information itself is incomplete: a compiler issue.
    Compiler,
    /// The debug information is sufficient and another debugger displays the
    /// value, but the native debugger does not: a debugger issue.
    Debugger,
}

/// One row of the issue report (the reproduction's Table 3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueRow {
    /// Seed of the exposing program.
    pub seed: u64,
    /// The conjecture that exposed the issue.
    pub conjecture: Conjecture,
    /// The affected variable (shared with the violation record's name).
    pub variable: std::sync::Arc<str>,
    /// The violating line.
    pub line: u32,
    /// DIE-level manifestation.
    pub category: DieCategory,
    /// Compiler or debugger issue.
    pub component: IssueComponent,
}

/// The full issue report.
#[derive(Debug, Clone, Default)]
pub struct IssueReport {
    /// All rows.
    pub rows: Vec<IssueRow>,
}

impl IssueReport {
    /// Number of rows with a given DIE category.
    pub fn count_category(&self, category: DieCategory) -> usize {
        self.rows.iter().filter(|r| r.category == category).count()
    }

    /// Number of rows attributed to the debugger.
    pub fn debugger_issues(&self) -> usize {
        self.rows
            .iter()
            .filter(|r| r.component == IssueComponent::Debugger)
            .count()
    }

    /// Number of rows attributed to the compiler.
    pub fn compiler_issues(&self) -> usize {
        self.rows.len() - self.debugger_issues()
    }

    /// Render as plain text, one row per issue plus a category summary.
    pub fn render(&self) -> String {
        let mut out =
            String::from("seed  conj  variable        line  category          component\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{:<5} {:<5} {:<15} {:<5} {:<17} {:?}\n",
                row.seed,
                row.conjecture.to_string(),
                row.variable,
                row.line,
                row.category.to_string(),
                row.component
            ));
        }
        out.push_str(&format!(
            "\nMissing: {}  Hollow: {}  Incomplete: {}  Covered: {}  (compiler {}, debugger {})\n",
            self.count_category(DieCategory::MissingDie),
            self.count_category(DieCategory::HollowDie),
            self.count_category(DieCategory::IncompleteDie),
            self.count_category(DieCategory::Covered),
            self.compiler_issues(),
            self.debugger_issues(),
        ));
        out
    }

    /// The machine-readable issue report: one entry per row plus the
    /// category and component summaries. Deterministic — equal reports
    /// always serialize to equal bytes.
    pub fn to_json(&self) -> Json {
        let rows = self
            .rows
            .iter()
            .map(|row| {
                Json::Obj(vec![
                    ("seed".to_owned(), Json::from_u64(row.seed)),
                    (
                        "conjecture".to_owned(),
                        Json::str(row.conjecture.to_string()),
                    ),
                    ("variable".to_owned(), Json::str(row.variable.as_ref())),
                    ("line".to_owned(), Json::from_u64(row.line.into())),
                    ("category".to_owned(), Json::str(row.category.to_string())),
                    (
                        "component".to_owned(),
                        Json::str(match row.component {
                            IssueComponent::Compiler => "compiler",
                            IssueComponent::Debugger => "debugger",
                        }),
                    ),
                ])
            })
            .collect();
        let categories = [
            ("missing", DieCategory::MissingDie),
            ("hollow", DieCategory::HollowDie),
            ("incomplete", DieCategory::IncompleteDie),
            ("covered", DieCategory::Covered),
        ]
        .into_iter()
        .map(|(name, category)| {
            (
                name.to_owned(),
                Json::from_usize(self.count_category(category)),
            )
        })
        .collect::<Vec<_>>();
        Json::Obj(vec![
            ("format".to_owned(), Json::str("holes.issues/v1")),
            ("rows".to_owned(), Json::Arr(rows)),
            ("categories".to_owned(), Json::Obj(categories)),
            (
                "compiler_issues".to_owned(),
                Json::from_usize(self.compiler_issues()),
            ),
            (
                "debugger_issues".to_owned(),
                Json::from_usize(self.debugger_issues()),
            ),
        ])
    }
}

/// Classify one violation.
pub fn classify(
    subject: &Subject,
    config: &CompilerConfig,
    violation: &Violation,
) -> (DieCategory, IssueComponent) {
    let exe = subject.compile_shared(config);
    let address = exe
        .debug
        .line_table
        .first_address_of_line(violation.line)
        .unwrap_or(0);
    let category = categorize_variable(&exe.debug, &violation.variable, address);
    // Cross-check with the other debugger personality (memoized per
    // configuration, like the native trace).
    let native = DebuggerKind::native_for(config.personality);
    let other = match native {
        DebuggerKind::GdbLike => DebuggerKind::LldbLike,
        DebuggerKind::LldbLike => DebuggerKind::GdbLike,
    };
    let other_trace = subject.trace_shared(config, other);
    let other_shows_it = other_trace
        .var_at(violation.line, &violation.variable)
        .map(|s| s.is_available())
        .unwrap_or(false);
    let component = if other_shows_it {
        IssueComponent::Debugger
    } else {
        IssueComponent::Compiler
    };
    (category, component)
}

/// Build the issue report for (a sample of) a campaign's unique violations.
/// The `backend` must be the one the campaign ran on, so the classified
/// executables carry the location descriptions the violations were
/// observed against.
pub fn build_report(
    subjects: &[Subject],
    result: &CampaignResult,
    personality: holes_compiler::Personality,
    version: usize,
    backend: holes_compiler::BackendKind,
    limit: usize,
) -> IssueReport {
    let mut report = IssueReport::default();
    let mut seen: BTreeSet<UniqueKey> = BTreeSet::new();
    for record in &result.records {
        if report.rows.len() >= limit {
            break;
        }
        if !seen.insert(unique_key(record)) {
            continue;
        }
        let config = CompilerConfig::new(personality, record.level)
            .with_version(version)
            .with_backend(backend);
        let (category, component) = classify(&subjects[record.subject], &config, &record.violation);
        report.rows.push(IssueRow {
            seed: record.seed,
            conjecture: record.violation.conjecture,
            variable: record.violation.variable.clone(),
            line: record.violation.line,
            category,
            component,
        });
    }
    report
}

/// [`build_report`] without a pre-generated pool: subjects are regenerated
/// from the records' seeds, and only for the (at most `limit`) programs the
/// report actually classifies — the right entry point for drivers holding a
/// merged campaign over a large seed range.
///
/// Requires records whose `seed` fields are the generator seeds of their
/// programs (true for every generated campaign; not for hand-written
/// subjects, whose seed is 0). Produces exactly the rows `build_report`
/// would.
pub fn build_report_from_seeds(
    result: &CampaignResult,
    personality: holes_compiler::Personality,
    version: usize,
    backend: holes_compiler::BackendKind,
    limit: usize,
) -> IssueReport {
    let mut report = IssueReport::default();
    let mut seen: BTreeSet<UniqueKey> = BTreeSet::new();
    let mut subjects: BTreeMap<usize, Subject> = BTreeMap::new();
    for record in &result.records {
        if report.rows.len() >= limit {
            break;
        }
        if !seen.insert(unique_key(record)) {
            continue;
        }
        let subject = subjects
            .entry(record.subject)
            .or_insert_with(|| Subject::from_seed(record.seed));
        let config = CompilerConfig::new(personality, record.level)
            .with_version(version)
            .with_backend(backend);
        let (category, component) = classify(subject, &config, &record.violation);
        report.rows.push(IssueRow {
            seed: record.seed,
            conjecture: record.violation.conjecture,
            variable: record.violation.variable.clone(),
            line: record.violation.line,
            category,
            component,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::subject_pool;
    use holes_compiler::Personality;

    #[test]
    fn seed_driven_report_matches_the_pool_driven_report() {
        let subjects = subject_pool(1510, 6);
        let personality = Personality::Ccg;
        let result = run_campaign(&subjects, personality, personality.trunk());
        let from_pool = build_report(
            &subjects,
            &result,
            personality,
            personality.trunk(),
            holes_compiler::BackendKind::Reg,
            10,
        );
        let from_seeds = build_report_from_seeds(
            &result,
            personality,
            personality.trunk(),
            holes_compiler::BackendKind::Reg,
            10,
        );
        assert_eq!(from_pool.rows, from_seeds.rows);
    }

    #[test]
    fn report_classifies_violations_into_categories() {
        let subjects = subject_pool(1500, 6);
        let personality = Personality::Ccg;
        let result = run_campaign(&subjects, personality, personality.trunk());
        let report = build_report(
            &subjects,
            &result,
            personality,
            personality.trunk(),
            holes_compiler::BackendKind::Reg,
            25,
        );
        if result.records.is_empty() {
            return;
        }
        assert!(!report.rows.is_empty());
        let rendered = report.render();
        assert!(rendered.contains("category"));
        // Every row has a sensible category (covered DIEs correspond to the
        // paper's "Incorrect DIE" / debugger cases).
        assert_eq!(
            report.rows.len(),
            report.count_category(DieCategory::MissingDie)
                + report.count_category(DieCategory::HollowDie)
                + report.count_category(DieCategory::IncompleteDie)
                + report.count_category(DieCategory::Covered)
        );
    }
}
