//! SARIF 2.1.0 emission: render a set of violation results as a Static
//! Analysis Results Interchange Format log, the format GitHub code
//! scanning (and most SARIF-aware CI viewers) ingest directly.
//!
//! The emitter is deliberately small and deterministic: one `run` by the
//! `holes` driver, one rule per conjecture (C1–C3), and one result per
//! violation carrying the generator seed's virtual source file, the
//! violating line, and the canonical fingerprint under the
//! `partialFingerprints` key `holes/v1` — the same spelling
//! [`crate::baseline::ViolationFingerprint`] uses, so scanning UIs dedup
//! results across runs exactly like `holes baseline diff` does.

use holes_core::json::Json;
use holes_core::Conjecture;

/// One SARIF result: a single violation rendered for a code-scanning UI.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SarifResult {
    /// The violated conjecture; becomes the result's `ruleId`.
    pub rule: Conjecture,
    /// SARIF severity (`"error"` for regressions, `"warning"` for report
    /// listings).
    pub level: &'static str,
    /// Human-readable message shown by the UI.
    pub message: String,
    /// Virtual artifact URI of the exposing program (e.g.
    /// `seed-12.minic`).
    pub uri: String,
    /// The violating source line (1-based).
    pub line: u32,
    /// Canonical fingerprint, stored under `partialFingerprints` as
    /// `holes/v1`.
    pub fingerprint: String,
}

/// Short description of a conjecture, used as the SARIF rule description.
fn rule_description(conjecture: Conjecture) -> &'static str {
    match conjecture {
        Conjecture::C1 => "a variable in scope at an unoptimized breakpoint must stay visible",
        Conjecture::C2 => "a variable's value must not appear optimized out when it is live",
        Conjecture::C3 => "a variable that left scope must not reappear",
    }
}

/// Assemble a complete SARIF 2.1.0 log with a single `holes` run holding
/// the given results, in the order given. The output is deterministic:
/// equal inputs produce equal bytes.
pub fn sarif_log(results: &[SarifResult]) -> Json {
    let rules = Conjecture::ALL
        .iter()
        .map(|conjecture| {
            Json::Obj(vec![
                ("id".to_owned(), Json::str(conjecture.to_string())),
                (
                    "shortDescription".to_owned(),
                    Json::Obj(vec![(
                        "text".to_owned(),
                        Json::str(rule_description(*conjecture)),
                    )]),
                ),
            ])
        })
        .collect();
    let rendered = results
        .iter()
        .map(|result| {
            Json::Obj(vec![
                ("ruleId".to_owned(), Json::str(result.rule.to_string())),
                ("level".to_owned(), Json::str(result.level)),
                (
                    "message".to_owned(),
                    Json::Obj(vec![("text".to_owned(), Json::str(&result.message))]),
                ),
                (
                    "locations".to_owned(),
                    Json::Arr(vec![Json::Obj(vec![(
                        "physicalLocation".to_owned(),
                        Json::Obj(vec![
                            (
                                "artifactLocation".to_owned(),
                                Json::Obj(vec![("uri".to_owned(), Json::str(&result.uri))]),
                            ),
                            (
                                "region".to_owned(),
                                Json::Obj(vec![(
                                    "startLine".to_owned(),
                                    Json::from_u64(u64::from(result.line)),
                                )]),
                            ),
                        ]),
                    )])]),
                ),
                (
                    "partialFingerprints".to_owned(),
                    Json::Obj(vec![(
                        "holes/v1".to_owned(),
                        Json::str(&result.fingerprint),
                    )]),
                ),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "$schema".to_owned(),
            Json::str(
                "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
            ),
        ),
        ("version".to_owned(), Json::str("2.1.0")),
        (
            "runs".to_owned(),
            Json::Arr(vec![Json::Obj(vec![
                (
                    "tool".to_owned(),
                    Json::Obj(vec![(
                        "driver".to_owned(),
                        Json::Obj(vec![
                            ("name".to_owned(), Json::str("holes")),
                            (
                                "informationUri".to_owned(),
                                Json::str("https://github.com/holes/holes"),
                            ),
                            ("rules".to_owned(), Json::Arr(rules)),
                        ]),
                    )]),
                ),
                ("results".to_owned(), Json::Arr(rendered)),
            ])]),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_log_still_carries_schema_rules_and_results_array() {
        let log = sarif_log(&[]);
        let runs = log.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 1);
        let results = runs[0].get("results").and_then(Json::as_arr).unwrap();
        assert!(results.is_empty());
        let rules = runs[0]
            .get("tool")
            .and_then(|t| t.get("driver"))
            .and_then(|d| d.get("rules"))
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(rules.len(), 3);
    }

    #[test]
    fn results_carry_location_and_fingerprint() {
        let log = sarif_log(&[SarifResult {
            rule: Conjecture::C2,
            level: "error",
            message: "it broke".to_owned(),
            uri: "seed-7.minic".to_owned(),
            line: 4,
            fingerprint: "s7:C2:L4:g0".to_owned(),
        }]);
        let text = log.to_pretty();
        assert!(text.contains("\"ruleId\": \"C2\""));
        assert!(text.contains("\"uri\": \"seed-7.minic\""));
        assert!(text.contains("\"startLine\": 4"));
        assert!(text.contains("\"holes/v1\": \"s7:C2:L4:g0\""));
        // Equal inputs produce equal bytes.
        assert_eq!(
            text,
            sarif_log(&[SarifResult {
                rule: Conjecture::C2,
                level: "error",
                message: "it broke".to_owned(),
                uri: "seed-7.minic".to_owned(),
                line: 4,
                fingerprint: "s7:C2:L4:g0".to_owned(),
            }])
            .to_pretty()
        );
    }
}
