//! The `holes.cache-rpc/v1` fleet-wide artifact cache protocol.
//!
//! A worker that misses its in-memory cache and its local disk store can
//! ask the coordinator for the artifact before falling back to a compile:
//! the lookup ladder becomes memory → local store → **remote fetch** →
//! recompute, and every artifact a worker derives itself is written
//! through to the coordinator so the next cold worker finds it warm.
//!
//! The protocol rides the same line-delimited JSON transport as
//! `holes.rpc/v1` — one TCP connection, one request line, one reply line —
//! and is served by the same coordinator listener, dispatched on the `rpc`
//! version tag. Two requests exist:
//!
//! * [`CacheRequest::Fetch`] — look up `(subject, fingerprint, kind)`;
//!   the coordinator revalidates the stored envelope before shipping it.
//! * [`CacheRequest::Put`] — offer a complete `holes.artifact/v1`
//!   envelope; the coordinator revalidates it before a byte touches disk.
//!
//! The client side, [`RemoteStore`], is deliberately paranoid:
//!
//! * every exchange has connect/read/write timeouts and bounded retry
//!   with exponential backoff;
//! * a fetched envelope is **untrusted** — the worker's [`ArtifactStore`]
//!   runs it through the same checksum/version/tamper gates as a disk
//!   load, and a failed gate quarantines the bytes and recomputes;
//! * after a configurable run of consecutive transport failures a circuit
//!   breaker trips: the fleet degrades to local-only caching with a single
//!   warning, and a half-open probe re-checks the server periodically.
//!
//! Nothing on this path can change campaign bytes — a cache that is slow,
//! absent, lying, or corrupt only ever costs a recompute.
//!
//! [`ArtifactStore`]: crate::store::ArtifactStore

use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use holes_compiler::Fingerprint;
use holes_core::json::Json;

use super::chaos::{CacheMode, CachePlan};
use super::protocol::{connect_with_timeout, missing, read_message, str_field, write_message};
use super::ServeError;
use crate::store::{valid_kind, ArtifactStore, RemoteFetch, RemoteSource, SubjectKey};

/// Version tag every `holes.cache-rpc/v1` message carries in its `rpc`
/// field; the coordinator listener dispatches on it, and mismatched
/// peers are rejected before any payload is interpreted.
pub const CACHE_RPC_FORMAT: &str = "holes.cache-rpc/v1";

/// A worker-to-coordinator cache message (one per connection).
#[derive(Debug)]
pub enum CacheRequest {
    /// Look up one artifact by its full content address.
    Fetch {
        /// The subject the artifact belongs to.
        subject: SubjectKey,
        /// The compiler configuration fingerprint it was derived under.
        fingerprint: Fingerprint,
        /// The artifact kind (`exe`, `trace-gdb`, `viol-o2`, ...).
        kind: String,
    },
    /// Write one complete `holes.artifact/v1` envelope through to the
    /// coordinator's store (revalidated server-side before it lands).
    Put {
        /// The envelope exactly as the worker's store would write it.
        envelope: Json,
    },
}

/// A coordinator-to-worker cache message (one per connection).
#[derive(Debug)]
pub enum CacheReply {
    /// The artifact exists; here is its envelope, revalidated at read
    /// time. The client must revalidate again — the wire is untrusted.
    Hit {
        /// The stored `holes.artifact/v1` envelope.
        envelope: Json,
    },
    /// The artifact is not in the coordinator's store.
    Miss,
    /// The offered envelope passed validation and was stored.
    Accepted,
    /// The request was unintelligible, the envelope failed validation,
    /// or the coordinator is not serving a cache at all.
    Error {
        /// What the coordinator objected to.
        message: String,
    },
}

impl CacheRequest {
    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("rpc".to_owned(), Json::str(CACHE_RPC_FORMAT))];
        match self {
            CacheRequest::Fetch {
                subject,
                fingerprint,
                kind,
            } => {
                pairs.push(("req".to_owned(), Json::str("fetch")));
                pairs.push(("subject".to_owned(), Json::str(subject.to_string())));
                pairs.push(("fingerprint".to_owned(), Json::str(fingerprint.to_string())));
                pairs.push(("kind".to_owned(), Json::str(kind)));
            }
            CacheRequest::Put { envelope } => {
                pairs.push(("req".to_owned(), Json::str("put")));
                pairs.push(("envelope".to_owned(), envelope.clone()));
            }
        }
        Json::Obj(pairs)
    }

    /// Parse and validate a request. Only addressing fields are checked
    /// here; an embedded envelope is validated by the store before any
    /// byte of it is trusted.
    pub fn from_json(json: &Json) -> Result<CacheRequest, ServeError> {
        check_cache_version(json)?;
        match str_field(json, "req")? {
            "fetch" => {
                let subject = str_field(json, "subject")?
                    .parse::<SubjectKey>()
                    .map_err(|error| ServeError::Protocol(format!("bad subject: {error}")))?;
                let fingerprint = str_field(json, "fingerprint")?
                    .parse::<Fingerprint>()
                    .map_err(|error| ServeError::Protocol(format!("bad fingerprint: {error}")))?;
                let kind = str_field(json, "kind")?;
                // Same gate as `ArtifactStore::put_envelope`: the kind
                // becomes an on-disk file name, so a wire value carrying
                // path separators or `..` must die here, before it can
                // address anything outside the store root.
                if !valid_kind(kind) {
                    return Err(ServeError::Protocol(format!(
                        "`{kind}` is not a valid artifact kind"
                    )));
                }
                Ok(CacheRequest::Fetch {
                    subject,
                    fingerprint,
                    kind: kind.to_owned(),
                })
            }
            "put" => Ok(CacheRequest::Put {
                envelope: json
                    .get("envelope")
                    .ok_or_else(|| missing("envelope"))?
                    .clone(),
            }),
            other => Err(ServeError::Protocol(format!(
                "unknown cache request `{other}`"
            ))),
        }
    }
}

impl CacheReply {
    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("rpc".to_owned(), Json::str(CACHE_RPC_FORMAT))];
        match self {
            CacheReply::Hit { envelope } => {
                pairs.push(("reply".to_owned(), Json::str("hit")));
                pairs.push(("envelope".to_owned(), envelope.clone()));
            }
            CacheReply::Miss => pairs.push(("reply".to_owned(), Json::str("miss"))),
            CacheReply::Accepted => pairs.push(("reply".to_owned(), Json::str("accepted"))),
            CacheReply::Error { message } => {
                pairs.push(("reply".to_owned(), Json::str("error")));
                pairs.push(("message".to_owned(), Json::str(message)));
            }
        }
        Json::Obj(pairs)
    }

    /// Parse and validate a reply. A `hit` envelope is passed through
    /// untouched — the store's validation gates, not the parser, decide
    /// whether it can be trusted.
    pub fn from_json(json: &Json) -> Result<CacheReply, ServeError> {
        check_cache_version(json)?;
        match str_field(json, "reply")? {
            "hit" => Ok(CacheReply::Hit {
                envelope: json
                    .get("envelope")
                    .ok_or_else(|| missing("envelope"))?
                    .clone(),
            }),
            "miss" => Ok(CacheReply::Miss),
            "accepted" => Ok(CacheReply::Accepted),
            "error" => Ok(CacheReply::Error {
                message: str_field(json, "message")?.to_owned(),
            }),
            other => Err(ServeError::Protocol(format!(
                "unknown cache reply `{other}`"
            ))),
        }
    }
}

fn check_cache_version(json: &Json) -> Result<(), ServeError> {
    match json.get("rpc").and_then(Json::as_str) {
        Some(CACHE_RPC_FORMAT) => Ok(()),
        Some(other) => Err(ServeError::Protocol(format!(
            "unsupported rpc version `{other}` (expected `{CACHE_RPC_FORMAT}`)"
        ))),
        None => Err(missing("rpc")),
    }
}

/// Evaluate one parsed cache message against the coordinator's store and
/// produce the reply JSON. `None` for the store means the coordinator was
/// started without `--cache-dir`; every request then gets a clean error
/// reply rather than a hang or a connection reset.
pub fn handle_request(store: Option<&Arc<ArtifactStore>>, message: &Json) -> Json {
    let reply = match CacheRequest::from_json(message) {
        Err(error) => CacheReply::Error {
            message: error.to_string(),
        },
        Ok(_) if store.is_none() => CacheReply::Error {
            message: "coordinator is not serving a cache (start `holes serve` with --cache-dir)"
                .to_owned(),
        },
        Ok(CacheRequest::Fetch {
            subject,
            fingerprint,
            kind,
        }) => match store
            .expect("checked above")
            .fetch_envelope(subject, fingerprint, &kind)
        {
            Some(envelope) => CacheReply::Hit { envelope },
            None => CacheReply::Miss,
        },
        Ok(CacheRequest::Put { envelope }) => {
            match store.expect("checked above").put_envelope(&envelope) {
                Ok(()) => CacheReply::Accepted,
                Err(message) => CacheReply::Error { message },
            }
        }
    };
    reply.to_json()
}

/// How long a `delay:N` chaos schedule stalls the victim reply. Longer
/// than any client read timeout in the tests and the CLI default, so a
/// stalled reply always manifests as a client-side timeout.
const CHAOS_STALL: Duration = Duration::from_secs(6);

/// Serve one already-parsed cache message on its own (detached) thread:
/// evaluate it against the store, apply any pending chaos mutation, and
/// write the reply line. Peer-side write failures are logged and dropped —
/// a vanished worker must not disturb the coordinator.
pub(crate) fn serve_cache_connection(
    mut writer: TcpStream,
    store: Option<Arc<ArtifactStore>>,
    message: Json,
    chaos: Option<Arc<CachePlan>>,
    quiet: bool,
) {
    let reply = handle_request(store.as_ref(), &message);
    let outcome = match chaos.as_deref().and_then(CachePlan::fire) {
        Some(CacheMode::Drop) => {
            if !quiet {
                eprintln!("serve: cache chaos: dropping a reply");
            }
            Ok(())
        }
        Some(CacheMode::Delay) => {
            if !quiet {
                eprintln!("serve: cache chaos: stalling a reply for {CHAOS_STALL:?}");
            }
            std::thread::sleep(CHAOS_STALL);
            write_message(&mut writer, &reply)
        }
        Some(CacheMode::Corrupt) => {
            if !quiet {
                eprintln!("serve: cache chaos: bit-flipping a reply");
            }
            let mut bytes = reply.to_compact().into_bytes();
            let middle = bytes.len() / 2;
            if let Some(byte) = bytes.get_mut(middle) {
                *byte ^= 0x01;
            }
            bytes.push(b'\n');
            std::io::Write::write_all(&mut writer, &bytes)
                .and_then(|()| std::io::Write::flush(&mut writer))
                .map_err(ServeError::Io)
        }
        None => write_message(&mut writer, &reply),
    };
    if let Err(error) = outcome {
        if !quiet {
            eprintln!("serve: cache peer dropped: {error}");
        }
    }
}

/// Default per-exchange connect/read/write timeout for the cache client.
pub const DEFAULT_CACHE_TIMEOUT: Duration = Duration::from_secs(2);

/// Default consecutive-failure threshold before the circuit breaker
/// trips (overridable with `--cache-failures N`).
pub const DEFAULT_CACHE_FAILURES: u32 = 3;

/// How long the breaker stays open before a half-open probe is admitted.
const PROBE_AFTER: Duration = Duration::from_secs(2);

/// Attempts per exchange (first try plus bounded retries).
const RPC_ATTEMPTS: u32 = 3;

/// Initial retry backoff; doubles per attempt.
const RETRY_BACKOFF: Duration = Duration::from_millis(25);

/// The worker-side `holes.cache-rpc/v1` client: a [`RemoteSource`] the
/// local [`ArtifactStore`] consults between a disk miss and a recompute,
/// with write-through puts on every save.
///
/// Failure posture: every exchange is bounded by timeouts and retried
/// with exponential backoff; a run of `threshold` consecutive failed
/// exchanges trips a circuit breaker that degrades the worker to
/// local-only caching (one warning), after which a single half-open probe
/// per cooldown window checks whether the server came back.
#[derive(Debug)]
pub struct RemoteStore {
    addr: String,
    timeout: Duration,
    threshold: u32,
    probe_after: Duration,
    /// Consecutive failed exchanges since the last success.
    consecutive: AtomicU32,
    /// `Some(t)` while the breaker is open: no exchange until `t`, then
    /// exactly one half-open probe per cooldown window.
    open_until: Mutex<Option<Instant>>,
    warned: AtomicBool,
    quiet: bool,
}

impl RemoteStore {
    /// A client for the cache served at `addr` (same address as the
    /// coordinator's `holes.rpc/v1` listener), with default timeouts and
    /// breaker threshold.
    pub fn new(addr: impl Into<String>) -> RemoteStore {
        RemoteStore {
            addr: addr.into(),
            timeout: DEFAULT_CACHE_TIMEOUT,
            threshold: DEFAULT_CACHE_FAILURES,
            probe_after: PROBE_AFTER,
            consecutive: AtomicU32::new(0),
            open_until: Mutex::new(None),
            warned: AtomicBool::new(false),
            quiet: false,
        }
    }

    /// Override the per-exchange connect/read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> RemoteStore {
        self.timeout = timeout;
        self
    }

    /// Override the consecutive-failure threshold (`--cache-failures N`;
    /// clamped to at least 1).
    pub fn with_failure_threshold(mut self, threshold: u32) -> RemoteStore {
        self.threshold = threshold.max(1);
        self
    }

    /// Override the open-breaker cooldown before a half-open probe.
    pub fn with_probe_after(mut self, probe_after: Duration) -> RemoteStore {
        self.probe_after = probe_after;
        self
    }

    /// Suppress the degradation warning (tests).
    pub fn with_quiet(mut self, quiet: bool) -> RemoteStore {
        self.quiet = quiet;
        self
    }

    /// Whether the circuit breaker is currently open (the client is in
    /// local-only degradation, modulo half-open probes).
    pub fn degraded(&self) -> bool {
        self.open_until
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .is_some()
    }

    /// Breaker gate: `true` admits an exchange. While open, admits
    /// exactly one probe per `probe_after` window.
    fn admit(&self) -> bool {
        let mut open = self
            .open_until
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        match *open {
            None => true,
            Some(until) if Instant::now() < until => false,
            Some(_) => {
                // Half-open: let this caller probe, and push the window
                // forward so concurrent callers stay degraded meanwhile.
                *open = Some(Instant::now() + self.probe_after);
                true
            }
        }
    }

    fn note_success(&self) {
        self.consecutive.store(0, Ordering::SeqCst);
        let mut open = self
            .open_until
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if open.take().is_some() {
            // Re-arm the degradation warning: each degrade episode should
            // announce itself once, so a recovery line is never followed by
            // a silent re-degradation.
            self.warned.store(false, Ordering::SeqCst);
            if !self.quiet {
                eprintln!(
                    "work: cache server {} recovered; resuming remote caching",
                    self.addr
                );
            }
        }
    }

    fn note_failure(&self) {
        let run = self.consecutive.fetch_add(1, Ordering::SeqCst) + 1;
        if run >= self.threshold {
            *self
                .open_until
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(Instant::now() + self.probe_after);
            if !self.warned.swap(true, Ordering::SeqCst) && !self.quiet {
                eprintln!(
                    "work: warning: cache server {} failed {run} consecutive exchange(s); \
                     degrading to local-only caching (half-open re-probe every {:?})",
                    self.addr, self.probe_after
                );
            }
        }
    }

    /// One request/reply exchange with bounded retry and exponential
    /// backoff. Retries absorb transient faults (a dropped or corrupted
    /// reply line, a timeout); only the final verdict feeds the breaker.
    fn exchange(&self, request: &Json) -> Result<Json, ServeError> {
        let mut backoff = RETRY_BACKOFF;
        let mut attempt = 0;
        loop {
            attempt += 1;
            match self.try_exchange(request) {
                Ok(reply) => return Ok(reply),
                Err(error) if attempt >= RPC_ATTEMPTS => return Err(error),
                Err(_) => {
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
            }
        }
    }

    fn try_exchange(&self, request: &Json) -> Result<Json, ServeError> {
        let stream = connect_with_timeout(&self.addr, self.timeout)?;
        let mut writer = stream.try_clone().map_err(ServeError::Io)?;
        write_message(&mut writer, request)?;
        let mut reader = BufReader::new(stream);
        read_message(&mut reader)
    }
}

impl RemoteSource for RemoteStore {
    fn fetch(&self, subject: SubjectKey, fingerprint: Fingerprint, kind: &str) -> RemoteFetch {
        if !self.admit() {
            return RemoteFetch::Unavailable;
        }
        let request = CacheRequest::Fetch {
            subject,
            fingerprint,
            kind: kind.to_owned(),
        }
        .to_json();
        match self
            .exchange(&request)
            .and_then(|reply| CacheReply::from_json(&reply))
        {
            Ok(CacheReply::Hit { envelope }) => {
                self.note_success();
                RemoteFetch::Hit(envelope)
            }
            Ok(CacheReply::Miss) => {
                self.note_success();
                RemoteFetch::Miss
            }
            // An error reply (or a reply that makes no sense for a fetch)
            // means the server cannot serve this cache; count it toward
            // the breaker so a misconfigured coordinator degrades quickly
            // instead of taxing every lookup with a doomed round-trip.
            Ok(CacheReply::Error { .. } | CacheReply::Accepted) | Err(_) => {
                self.note_failure();
                RemoteFetch::Unavailable
            }
        }
    }

    fn put(&self, envelope: &Json) -> bool {
        if !self.admit() {
            return false;
        }
        let request = CacheRequest::Put {
            envelope: envelope.clone(),
        }
        .to_json();
        match self
            .exchange(&request)
            .and_then(|reply| CacheReply::from_json(&reply))
        {
            Ok(CacheReply::Accepted) => {
                self.note_success();
                true
            }
            // The server answered but rejected the envelope: transport is
            // healthy (no breaker debit), the write-through just failed.
            Ok(CacheReply::Error { .. }) => {
                self.note_success();
                false
            }
            Ok(CacheReply::Hit { .. } | CacheReply::Miss) | Err(_) => {
                self.note_failure();
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(request: &CacheRequest) -> CacheRequest {
        let json = Json::parse(&request.to_json().to_compact()).expect("wire line parses");
        CacheRequest::from_json(&json).expect("request round-trips")
    }

    #[test]
    fn cache_requests_and_replies_round_trip_the_wire() {
        let fetch = round_trip_request(&CacheRequest::Fetch {
            subject: SubjectKey(0xdead_beef_0000_0001),
            fingerprint: Fingerprint(0x0123_4567_89ab_cdef),
            kind: "trace-gdb".to_owned(),
        });
        match fetch {
            CacheRequest::Fetch {
                subject,
                fingerprint,
                kind,
            } => {
                assert_eq!(subject, SubjectKey(0xdead_beef_0000_0001));
                assert_eq!(fingerprint.0, 0x0123_4567_89ab_cdef);
                assert_eq!(kind, "trace-gdb");
            }
            other => panic!("wrong request: {other:?}"),
        }

        let envelope = Json::Obj(vec![("format".to_owned(), Json::str("holes.artifact/v1"))]);
        let put = round_trip_request(&CacheRequest::Put {
            envelope: envelope.clone(),
        });
        match put {
            CacheRequest::Put { envelope: sent } => {
                assert_eq!(sent.to_compact(), envelope.to_compact());
            }
            other => panic!("wrong request: {other:?}"),
        }

        for reply in [
            CacheReply::Hit { envelope },
            CacheReply::Miss,
            CacheReply::Accepted,
            CacheReply::Error {
                message: "no".to_owned(),
            },
        ] {
            let json = Json::parse(&reply.to_json().to_compact()).expect("wire line parses");
            let parsed = CacheReply::from_json(&json).expect("reply round-trips");
            assert_eq!(parsed.to_json().to_compact(), reply.to_json().to_compact());
        }
    }

    #[test]
    fn version_mismatch_and_unknown_requests_are_rejected() {
        let wrong = Json::Obj(vec![
            ("rpc".to_owned(), Json::str("holes.rpc/v1")),
            ("req".to_owned(), Json::str("fetch")),
        ]);
        assert!(CacheRequest::from_json(&wrong).is_err(), "wrong rpc tag");

        let unknown = Json::Obj(vec![
            ("rpc".to_owned(), Json::str(CACHE_RPC_FORMAT)),
            ("req".to_owned(), Json::str("steal")),
        ]);
        let error = CacheRequest::from_json(&unknown).expect_err("unknown request");
        assert!(error.to_string().contains("steal"), "{error}");

        let bad_subject = Json::Obj(vec![
            ("rpc".to_owned(), Json::str(CACHE_RPC_FORMAT)),
            ("req".to_owned(), Json::str("fetch")),
            ("subject".to_owned(), Json::str("not-hex")),
            ("fingerprint".to_owned(), Json::str("0000000000000000")),
            ("kind".to_owned(), Json::str("exe")),
        ]);
        assert!(CacheRequest::from_json(&bad_subject).is_err());
    }

    #[test]
    fn path_escaping_fetch_kinds_are_rejected_at_the_wire() {
        for kind in ["x/../../../../journal", "../x", "a\\b", "a.b", "", "/etc"] {
            let request = Json::Obj(vec![
                ("rpc".to_owned(), Json::str(CACHE_RPC_FORMAT)),
                ("req".to_owned(), Json::str("fetch")),
                ("subject".to_owned(), Json::str(SubjectKey(1).to_string())),
                (
                    "fingerprint".to_owned(),
                    Json::str(Fingerprint(2).to_string()),
                ),
                ("kind".to_owned(), Json::str(kind)),
            ]);
            let error = CacheRequest::from_json(&request)
                .expect_err("a kind that cannot name an artifact file must die at parse");
            assert!(
                error.to_string().contains("artifact kind"),
                "kind `{kind}`: {error}"
            );
        }
    }

    #[test]
    fn recovery_rearms_the_degradation_warning() {
        let remote = RemoteStore::new("127.0.0.1:1")
            .with_failure_threshold(1)
            .with_quiet(true);
        remote.note_failure();
        assert!(remote.degraded(), "breaker tripped");
        assert!(
            remote.warned.load(Ordering::SeqCst),
            "tripping records the (suppressed) warning"
        );
        remote.note_success();
        assert!(!remote.degraded(), "breaker closed on success");
        assert!(
            !remote.warned.load(Ordering::SeqCst),
            "recovery re-arms the warning for the next degradation episode"
        );
    }

    #[test]
    fn a_coordinator_without_a_store_replies_with_a_clean_error() {
        let request = CacheRequest::Fetch {
            subject: SubjectKey(1),
            fingerprint: Fingerprint(2),
            kind: "exe".to_owned(),
        }
        .to_json();
        let reply = handle_request(None, &request);
        match CacheReply::from_json(&reply).expect("reply parses") {
            CacheReply::Error { message } => {
                assert!(message.contains("--cache-dir"), "actionable: {message}")
            }
            other => panic!("expected error, got {other:?}"),
        }
    }

    #[test]
    fn the_breaker_trips_after_consecutive_failures_and_half_opens() {
        // Nothing listens on this address: every exchange fails fast.
        let remote = RemoteStore::new("127.0.0.1:1")
            .with_timeout(Duration::from_millis(50))
            .with_failure_threshold(2)
            .with_probe_after(Duration::from_millis(40))
            .with_quiet(true);

        assert!(!remote.degraded(), "breaker starts closed");
        assert_eq!(
            remote.fetch(SubjectKey(1), Fingerprint(2), "exe"),
            RemoteFetch::Unavailable
        );
        assert!(!remote.degraded(), "one failure is below the threshold");
        assert_eq!(
            remote.fetch(SubjectKey(1), Fingerprint(2), "exe"),
            RemoteFetch::Unavailable
        );
        assert!(remote.degraded(), "second consecutive failure trips it");

        // While open, exchanges are refused without touching the network.
        let before = Instant::now();
        assert!(!remote.put(&Json::Obj(vec![])), "degraded put is refused");
        assert!(
            before.elapsed() < Duration::from_millis(30),
            "an open breaker answers instantly"
        );

        // After the cooldown a half-open probe is admitted (and fails
        // again here, leaving the breaker open).
        std::thread::sleep(Duration::from_millis(60));
        assert!(remote.admit(), "half-open probe admitted after cooldown");
        assert!(!remote.admit(), "only one probe per window");
    }
}
