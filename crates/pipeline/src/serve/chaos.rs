//! The `HOLES_SERVE_CHAOS` fault-injection knob.
//!
//! The distributed campaign service promises that preemption is invisible
//! in the final report. That promise needs an executioner: this module
//! turns an environment variable into deterministic process-level chaos
//! so the CI smoke (and anyone reproducing a flake) can kill workers at
//! exact, repeatable points.
//!
//! Two modes, both counted so the N-th event fires exactly once:
//!
//! * `abort:N` — the process calls [`std::process::abort`] immediately
//!   after the N-th line is written to a streaming shard file. No
//!   destructors, no flushes: indistinguishable from `kill -9` mid-shard,
//!   which is exactly the failure the truncation-tolerant resume footer
//!   exists for.
//! * `preempt:N` — the N-th lease taken by a worker runs to completion but
//!   never heartbeats, so the coordinator revokes the lease out from under
//!   a live process; the worker then submits its (now stale) result, which
//!   the coordinator must discard idempotently.
//!
//! A malformed value is a hard error (`exit 1`) the first time chaos is
//! consulted — a typo'd kill schedule silently doing nothing would make a
//! red chaos run look green.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::OnceLock;

/// The environment variable holding the chaos plan (`abort:N` or
/// `preempt:N`).
pub const SERVE_CHAOS_ENV: &str = "HOLES_SERVE_CHAOS";

#[derive(Debug, PartialEq, Eq)]
enum Mode {
    Abort,
    Preempt,
}

#[derive(Debug)]
struct Plan {
    mode: Mode,
    /// Counts down; the event whose decrement observes `1` fires.
    remaining: AtomicI64,
}

static PLAN: OnceLock<Option<Plan>> = OnceLock::new();

fn plan() -> Option<&'static Plan> {
    PLAN.get_or_init(parse_env).as_ref()
}

fn parse_env() -> Option<Plan> {
    let raw = std::env::var(SERVE_CHAOS_ENV).ok()?;
    match parse_plan(&raw) {
        Ok(plan) => plan,
        Err(message) => {
            eprintln!("holes: {SERVE_CHAOS_ENV}: {message}");
            std::process::exit(1);
        }
    }
}

fn parse_plan(raw: &str) -> Result<Option<Plan>, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(None);
    }
    let (mode, count) = raw.split_once(':').ok_or_else(|| {
        format!("`{raw}` is not a chaos plan (expected `abort:N` or `preempt:N`)")
    })?;
    let mode = match mode {
        "abort" => Mode::Abort,
        "preempt" => Mode::Preempt,
        other => {
            return Err(format!(
                "unknown chaos mode `{other}` (expected `abort` or `preempt`)"
            ))
        }
    };
    let count: i64 = count
        .parse()
        .ok()
        .filter(|n| *n >= 1)
        .ok_or_else(|| format!("`{count}` is not a positive event count"))?;
    Ok(Some(Plan {
        mode,
        remaining: AtomicI64::new(count),
    }))
}

/// Called by the streaming shard writer after every emitted line; under
/// `abort:N` the N-th call hard-kills the process (no unwinding, no
/// flushes), leaving a torn shard file behind.
pub(crate) fn on_line_emitted() {
    if let Some(plan) = plan() {
        if plan.mode == Mode::Abort && plan.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
            std::process::abort();
        }
    }
}

/// Consulted by the worker once per lease; returns `true` when this lease
/// is the `preempt:N` victim that must run without heartbeats and submit
/// a late (discardable) result.
pub fn preempt_this_lease() -> bool {
    match plan() {
        Some(plan) if plan.mode == Mode::Preempt => {
            plan.remaining.fetch_sub(1, Ordering::SeqCst) == 1
        }
        _ => false,
    }
}

/// The environment variable holding the cache-reply chaos plan
/// (`drop:N`, `corrupt:N`, or `delay:N`).
pub const CACHE_CHAOS_ENV: &str = "HOLES_CACHE_CHAOS";

/// What `HOLES_CACHE_CHAOS` does to the N-th `holes.cache-rpc/v1` reply
/// the coordinator sends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Close the connection without replying — the client sees a torn
    /// exchange and must retry or degrade.
    Drop,
    /// Flip one bit of the reply line — either the line no longer parses
    /// (a transport-level failure) or it parses into an envelope the
    /// store's validation gates must quarantine. Both end in a recompute,
    /// never a wrong byte.
    Corrupt,
    /// Hold the reply past the client's read timeout before sending it.
    Delay,
}

/// A counted cache-reply mutation: the N-th reply after the plan engages
/// is dropped, corrupted, or delayed — exactly once, like the serve plans.
/// Constructable directly ([`CachePlan::new`]) so in-process fleet tests
/// can inject chaos without touching the process-global environment.
#[derive(Debug)]
pub struct CachePlan {
    mode: CacheMode,
    remaining: AtomicI64,
}

impl CachePlan {
    /// A plan firing `mode` on the `count`-th reply (1-based).
    pub fn new(mode: CacheMode, count: u32) -> CachePlan {
        CachePlan {
            mode,
            remaining: AtomicI64::new(i64::from(count.max(1))),
        }
    }

    /// Consulted once per cache reply; `Some(mode)` on the N-th call only.
    pub fn fire(&self) -> Option<CacheMode> {
        (self.remaining.fetch_sub(1, Ordering::SeqCst) == 1).then_some(self.mode)
    }
}

static CACHE_PLAN: OnceLock<Option<std::sync::Arc<CachePlan>>> = OnceLock::new();

/// The process-wide cache chaos plan named by [`CACHE_CHAOS_ENV`], if any.
/// Like the serve plan, a malformed value is a hard `exit 1` the first
/// time chaos is consulted — a typo'd schedule must not silently pass.
pub fn cache_plan_from_env() -> Option<std::sync::Arc<CachePlan>> {
    CACHE_PLAN
        .get_or_init(|| {
            let raw = std::env::var(CACHE_CHAOS_ENV).ok()?;
            match parse_cache_plan(&raw) {
                Ok(plan) => plan.map(std::sync::Arc::new),
                Err(message) => {
                    eprintln!("holes: {CACHE_CHAOS_ENV}: {message}");
                    std::process::exit(1);
                }
            }
        })
        .clone()
}

fn parse_cache_plan(raw: &str) -> Result<Option<CachePlan>, String> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(None);
    }
    let (mode, count) = raw.split_once(':').ok_or_else(|| {
        format!("`{raw}` is not a cache chaos plan (expected `drop:N`, `corrupt:N`, or `delay:N`)")
    })?;
    let mode = match mode {
        "drop" => CacheMode::Drop,
        "corrupt" => CacheMode::Corrupt,
        "delay" => CacheMode::Delay,
        other => {
            return Err(format!(
                "unknown cache chaos mode `{other}` (expected `drop`, `corrupt`, or `delay`)"
            ))
        }
    };
    let count: u32 = count
        .parse()
        .ok()
        .filter(|n| *n >= 1)
        .ok_or_else(|| format!("`{count}` is not a positive event count"))?;
    Ok(Some(CachePlan::new(mode, count)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chaos_plans_parse_and_typos_are_rejected() {
        assert!(parse_plan("").expect("empty is no plan").is_none());
        assert!(parse_plan("  ").expect("blank is no plan").is_none());

        let abort = parse_plan("abort:3")
            .expect("valid plan")
            .expect("plan present");
        assert!(abort.mode == Mode::Abort);
        assert_eq!(abort.remaining.load(Ordering::SeqCst), 3);

        let preempt = parse_plan("preempt:1")
            .expect("valid plan")
            .expect("plan present");
        assert!(preempt.mode == Mode::Preempt);

        for bogus in [
            "abort", "abort:", "abort:0", "abort:-2", "abort:x", "stall:4", "4",
        ] {
            assert!(parse_plan(bogus).is_err(), "`{bogus}` should be rejected");
        }
        let message = parse_plan("stall:4").expect_err("unknown mode");
        assert!(
            message.contains("stall"),
            "message names the mode: {message}"
        );
    }

    #[test]
    fn the_nth_event_fires_exactly_once() {
        let plan = parse_plan("preempt:2").expect("valid").expect("present");
        let fired: Vec<bool> = (0..4)
            .map(|_| plan.remaining.fetch_sub(1, Ordering::SeqCst) == 1)
            .collect();
        assert_eq!(fired, vec![false, true, false, false]);
    }

    #[test]
    fn cache_chaos_plans_parse_and_fire_exactly_once() {
        assert!(parse_cache_plan("").expect("empty is no plan").is_none());
        for (raw, mode) in [
            ("drop:1", CacheMode::Drop),
            ("corrupt:3", CacheMode::Corrupt),
            ("delay:2", CacheMode::Delay),
        ] {
            let plan = parse_cache_plan(raw).expect("valid").expect("present");
            assert_eq!(plan.mode, mode, "{raw}");
        }
        for bogus in ["drop", "drop:", "drop:0", "corrupt:-1", "stall:4", "4"] {
            assert!(
                parse_cache_plan(bogus).is_err(),
                "`{bogus}` should be rejected"
            );
        }

        let plan = CachePlan::new(CacheMode::Corrupt, 2);
        let fired: Vec<Option<CacheMode>> = (0..4).map(|_| plan.fire()).collect();
        assert_eq!(
            fired,
            vec![None, Some(CacheMode::Corrupt), None, None],
            "the N-th reply is mutated exactly once"
        );
    }
}
