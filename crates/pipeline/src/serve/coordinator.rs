//! The campaign coordinator: the transport-free service core
//! ([`ServeState`]) and the thin TCP accept loop around it
//! ([`Coordinator`]).
//!
//! The split is deliberate. Everything that decides — leasing, revocation,
//! idempotent discards, journaling-before-acknowledgement, the merge — is
//! in [`ServeState::handle`] and takes `now: Instant` as an argument, so
//! the determinism proptests can drive the *actual* service logic through
//! random kill/restart/late-submit schedules without sockets or sleeps.
//! The TCP layer only moves lines and never makes a scheduling decision.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use holes_core::json::Json;

use super::cache::{serve_cache_connection, CACHE_RPC_FORMAT};
use super::chaos::{cache_plan_from_env, CachePlan};
use super::journal::Journal;
use super::lease::{Assignment, LeaseConfig, LeaseTable, Revocation, Submission};
use super::protocol::{read_message, write_message, Reply, Request};
use super::ServeError;
use crate::shard::{CampaignShard, CampaignSpec};
use crate::store::ArtifactStore;
use crate::stream::{write_merged_stream, StreamRun};

/// Coordinator configuration: how to decompose the campaign and where to
/// journal accepted work.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How many shard leases to cut the campaign into.
    pub lease_shards: u64,
    /// Heartbeat cadence and retry budget for leases.
    pub lease: LeaseConfig,
    /// Path of the `holes.serve-journal/v1` crash journal.
    pub journal: PathBuf,
    /// The artifact store served to the fleet over `holes.cache-rpc/v1`;
    /// `None` disables the shared cache (cache requests get a clean
    /// error reply and workers degrade to local-only caching).
    pub cache: Option<Arc<ArtifactStore>>,
    /// Cache-reply chaos override for in-process tests; when `None` the
    /// `HOLES_CACHE_CHAOS` environment plan applies.
    pub cache_chaos: Option<Arc<CachePlan>>,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
}

/// The coordinator's in-memory service state: lease table, accepted
/// results, and the crash journal, with every decision point parameterized
/// on the clock.
#[derive(Debug)]
pub struct ServeState {
    table: LeaseTable,
    results: Vec<Option<CampaignShard>>,
    journal: Journal,
    heartbeat_ms: u64,
    recovered: usize,
    quiet: bool,
}

/// The end state of a serve run: every accepted shard (by index), the
/// quarantined holes, and whether the run was cut short by a drain.
#[derive(Debug)]
pub struct ServeReport {
    /// Accepted shard results, indexed by shard; `None` where the campaign
    /// was drained or quarantined before the shard resolved.
    pub shards: Vec<Option<CampaignShard>>,
    /// Shards excluded after exhausting their lease attempts, with causes.
    pub quarantined: Vec<(usize, String)>,
    /// Whether the run ended in a drain with work still unassigned or
    /// unfinished (as opposed to resolving every shard).
    pub drained: bool,
}

impl ServeReport {
    /// Whether every shard of the decomposition was evaluated and accepted.
    pub fn complete(&self) -> bool {
        self.shards.iter().all(Option::is_some)
    }

    /// Accepted violation records across all shards.
    pub fn records(&self) -> usize {
        self.shards
            .iter()
            .flatten()
            .map(|s| s.result.records.len())
            .sum()
    }

    /// Contained subject faults carried by the accepted shards.
    pub fn faulted(&self) -> usize {
        self.shards
            .iter()
            .flatten()
            .map(|s| s.result.faults.len())
            .sum()
    }

    /// Write the merged campaign stream — byte-identical to a
    /// single-process unsharded run of the same spec. Only meaningful when
    /// [`ServeReport::complete`]; an incomplete merge is refused by the
    /// shard validators rather than silently emitting a partial campaign.
    pub fn write_merged<W: Write>(&self, out: W) -> Result<StreamRun, ServeError> {
        let shards: Vec<CampaignShard> = self.shards.iter().flatten().cloned().collect();
        Ok(write_merged_stream(shards, out)?)
    }
}

impl ServeState {
    /// Decompose `spec` into the configured lease shards and recover any
    /// previously journaled completions. `spec` must be the whole campaign
    /// (an unsharded spec): the coordinator owns the sharding.
    pub fn open(spec: &CampaignSpec, config: &ServeConfig) -> Result<ServeState, ServeError> {
        spec.validate()?;
        if spec.shards != 1 {
            return Err(ServeError::Protocol(
                "serve takes the whole campaign (an unsharded spec); \
                 the coordinator does its own sharding"
                    .into(),
            ));
        }
        let k = config.lease_shards.max(1);
        let specs: Vec<CampaignSpec> = (0..k).map(|i| spec.clone().with_shard(k, i)).collect();
        let (journal, entries) = Journal::open(&config.journal, spec, k)?;
        let mut table = LeaseTable::new(specs, config.lease);
        let mut results: Vec<Option<CampaignShard>> = vec![None; k as usize];
        let recovered = entries.len();
        for (index, shard) in entries {
            table.mark_done(index);
            results[index] = Some(shard);
        }
        Ok(ServeState {
            table,
            results,
            journal,
            heartbeat_ms: config.lease.heartbeat.as_millis().max(1) as u64,
            recovered,
            quiet: config.quiet,
        })
    }

    /// Serve one request at time `now`. Infallible decisions come back as
    /// replies (including discards); an `Err` means the coordinator itself
    /// is broken (journal write failure) and the run must abort — losing
    /// durability silently would betray the resume guarantee.
    pub fn handle(&mut self, request: &Request, now: Instant) -> Result<Reply, ServeError> {
        match request {
            Request::Lease { worker } => Ok(match self.table.assign(now) {
                Assignment::Lease { lease, index, spec } => {
                    self.log(&format!(
                        "lease {lease}: shard {index} of {} -> {worker}",
                        self.table.shards()
                    ));
                    Reply::Lease {
                        lease,
                        spec,
                        heartbeat_ms: self.heartbeat_ms,
                    }
                }
                Assignment::Wait => Reply::Wait {
                    backoff_ms: (self.heartbeat_ms / 2).max(10),
                },
                Assignment::Shutdown => Reply::Shutdown,
            }),
            Request::Heartbeat { lease } => Ok(Reply::Heartbeat {
                active: self.table.heartbeat(*lease, now),
            }),
            Request::Result { lease, shard } => {
                let Some(index) = self.table.lease_index(*lease) else {
                    return Ok(Reply::Discarded {
                        reason: format!(
                            "lease {lease} is not active (revoked, already completed, or unknown)"
                        ),
                    });
                };
                if *self.table.shard_spec(index) != shard.spec {
                    return Ok(Reply::Discarded {
                        reason: format!(
                            "result spec does not match the shard leased under {lease}"
                        ),
                    });
                }
                // Durability precedes acknowledgement: journal first, so a
                // coordinator that crashes after replying `accepted` can
                // never forget the shard.
                self.journal.record(index, shard)?;
                match self.table.submit(*lease, &shard.spec) {
                    Submission::Accepted { index } => {
                        self.results[index] = Some((**shard).clone());
                        self.log(&format!(
                            "lease {lease}: shard {index} accepted ({} records, {} faults)",
                            shard.result.records.len(),
                            shard.result.faults.len()
                        ));
                        Ok(Reply::Accepted)
                    }
                    Submission::Discarded { reason } => Ok(Reply::Discarded { reason }),
                }
            }
        }
    }

    /// Revoke every lease whose deadline has passed (see
    /// [`LeaseTable::revoke_expired`]), logging each loss.
    pub fn reap(&mut self, now: Instant) -> Vec<Revocation> {
        let revoked = self.table.revoke_expired(now);
        for revocation in &revoked {
            self.log(&format!(
                "lease {}: shard {} {} after missed heartbeats (attempt {})",
                revocation.lease,
                revocation.index,
                if revocation.quarantined {
                    "quarantined"
                } else {
                    "requeued"
                },
                revocation.attempts,
            ));
        }
        revoked
    }

    /// Stop granting leases; in-flight ones may still complete.
    pub fn drain(&mut self) {
        self.table.drain();
    }

    /// Whether [`ServeState::drain`] was called.
    pub fn draining(&self) -> bool {
        self.table.draining()
    }

    /// Whether every shard is resolved (accepted or quarantined).
    pub fn complete(&self) -> bool {
        self.table.complete()
    }

    /// Whether no lease is in flight.
    pub fn idle(&self) -> bool {
        self.table.idle()
    }

    /// Shards recovered from the journal at open, never re-leased.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// Number of shards in the decomposition.
    pub fn shards(&self) -> usize {
        self.table.shards()
    }

    /// Consume the state into the run's end report.
    pub fn into_report(self) -> ServeReport {
        let drained = !self.table.complete();
        ServeReport {
            quarantined: self.table.quarantined(),
            shards: self.results,
            drained,
        }
    }

    fn log(&self, message: &str) {
        if !self.quiet {
            eprintln!("serve: {message}");
        }
    }
}

/// The TCP front of the service: accepts one-request connections and feeds
/// them to a [`ServeState`].
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
}

/// How long a single connection may take to deliver its request line or
/// absorb its reply before the coordinator abandons it. Generous — a
/// result line for a large shard takes real time — but finite, so one
/// wedged socket cannot stall every other worker's heartbeats forever.
const PEER_TIMEOUT: Duration = Duration::from_secs(10);

/// Bounds on the post-completion linger window (twice the heartbeat,
/// clamped): long enough that every worker's next poll lands inside it,
/// short enough that `holes serve` never dawdles after the merge is ready.
const LINGER_FLOOR: Duration = Duration::from_millis(200);

/// See [`LINGER_FLOOR`].
const LINGER_CEILING: Duration = Duration::from_secs(2);

/// Cap on concurrently live per-connection threads (request readers and
/// cache servers). Far above what a healthy fleet needs, but finite: a
/// connection burst — or many chaos-stalled cache replies at
/// [`super::cache`]'s 6 s apiece — piles up threads only to this depth,
/// after which excess connections get a clean busy error instead.
pub const MAX_CONNECTION_THREADS: usize = 64;

/// A held slot in the coordinator's connection-thread budget, released on
/// drop (including panic unwinds inside a connection thread).
struct ThreadSlot(Arc<AtomicUsize>);

impl ThreadSlot {
    /// Claim a slot, or `None` when `MAX_CONNECTION_THREADS` are live.
    fn acquire(live: &Arc<AtomicUsize>) -> Option<ThreadSlot> {
        let mut current = live.load(Ordering::SeqCst);
        loop {
            if current >= MAX_CONNECTION_THREADS {
                return None;
            }
            match live.compare_exchange(current, current + 1, Ordering::SeqCst, Ordering::SeqCst) {
                Ok(_) => return Some(ThreadSlot(Arc::clone(live))),
                Err(actual) => current = actual,
            }
        }
    }
}

impl Drop for ThreadSlot {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

impl Coordinator {
    /// Bind the coordinator's listening socket (nonblocking, so the accept
    /// loop can interleave lease reaping and drain checks).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Coordinator, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Coordinator { listener })
    }

    /// The bound address — useful when binding port 0.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// Run the campaign to resolution. Returns when every shard is
    /// accepted or quarantined, or — once `drain` becomes `true` (the
    /// SIGTERM flag) — when the last in-flight lease resolves or expires.
    pub fn run(
        &self,
        spec: &CampaignSpec,
        config: &ServeConfig,
        drain: &AtomicBool,
    ) -> Result<ServeReport, ServeError> {
        let mut state = ServeState::open(spec, config)?;
        let cache_chaos = config.cache_chaos.clone().or_else(cache_plan_from_env);
        // Connection threads read the request line off the accept loop and
        // forward parsed `holes.rpc/v1` messages (with the socket to answer
        // on) back over this channel; the lease state stays single-threaded.
        let (rpc_tx, rpc_rx) = std::sync::mpsc::channel::<(Json, TcpStream)>();
        let live_threads = Arc::new(AtomicUsize::new(0));
        if !config.quiet && state.recovered() > 0 {
            eprintln!(
                "serve: resumed {} of {} shards from journal {}",
                state.recovered(),
                state.shards(),
                config.journal.display()
            );
        }
        loop {
            if drain.load(Ordering::SeqCst) && !state.draining() {
                state.drain();
                if !config.quiet {
                    eprintln!("serve: draining — no new leases, waiting for in-flight work");
                }
            }
            // Answer forwarded requests before reaping, so a heartbeat
            // already delivered to the channel can never lose its lease to
            // the reaper in the same tick.
            Self::drain_rpc(&rpc_rx, &mut state, config)?;
            state.reap(Instant::now());
            if state.complete() || (state.draining() && state.idle()) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.serve_connection(stream, config, &cache_chaos, &rpc_tx, &live_threads)?
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Completion linger: fleet members poll again within a heartbeat
        // or two, and answering that next request with `Shutdown` lets
        // them exit immediately. Without it a worker's request can land in
        // the backlog of a listener nobody will ever accept from again and
        // block there until its read timeout expires.
        let linger = (config.lease.heartbeat * 2).clamp(LINGER_FLOOR, LINGER_CEILING);
        let deadline = Instant::now() + linger;
        while Instant::now() < deadline {
            Self::drain_rpc(&rpc_rx, &mut state, config)?;
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.serve_connection(stream, config, &cache_chaos, &rpc_tx, &live_threads)?
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Self::drain_rpc(&rpc_rx, &mut state, config)?;
        Ok(state.into_report())
    }

    /// Answer every `holes.rpc/v1` message the connection threads have
    /// forwarded so far. Runs on the accept loop — the only place that may
    /// touch `state` — and never blocks on peer reads (those happened on
    /// the forwarding thread); reply writes go to sockets whose buffers
    /// are empty, bounded by the peer write timeout in the worst case.
    fn drain_rpc(
        rpc: &Receiver<(Json, TcpStream)>,
        state: &mut ServeState,
        config: &ServeConfig,
    ) -> Result<(), ServeError> {
        while let Ok((message, mut writer)) = rpc.try_recv() {
            let reply = match Request::from_json(&message) {
                Ok(request) => state.handle(&request, Instant::now())?,
                Err(error) => Reply::Error {
                    message: error.to_string(),
                },
            };
            if let Err(error) = write_message(&mut writer, &reply.to_json()) {
                if !config.quiet {
                    eprintln!("serve: peer vanished before the reply: {error}");
                }
            }
        }
        Ok(())
    }

    /// Serve one connection: one request line, one reply line. Peer
    /// misbehavior (torn lines, timeouts, sockets dead before the reply) is
    /// logged and dropped — a killed worker must never take the
    /// coordinator down with it. Only coordinator-side failures (the
    /// journal) propagate.
    ///
    /// The request line is read on a bounded per-connection thread — never
    /// on the accept loop, where one slow-loris peer (or a worker
    /// streaming a large submit over a congested link) could stall every
    /// other worker's heartbeats past the grace window. The thread then
    /// dispatches on the `rpc` version tag: `holes.cache-rpc/v1` is served
    /// right there (a slow store read or chaos-stalled reply blocks only
    /// its own thread), while `holes.rpc/v1` is forwarded to the accept
    /// loop, the sole owner of the lease state.
    fn serve_connection(
        &self,
        stream: TcpStream,
        config: &ServeConfig,
        cache_chaos: &Option<Arc<CachePlan>>,
        rpc: &Sender<(Json, TcpStream)>,
        live_threads: &Arc<AtomicUsize>,
    ) -> Result<(), ServeError> {
        let quiet = config.quiet;
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(PEER_TIMEOUT))?;
        stream.set_write_timeout(Some(PEER_TIMEOUT))?;
        let Some(slot) = ThreadSlot::acquire(live_threads) else {
            // Saturated: refuse cleanly. The reply goes to a socket whose
            // send buffer is empty, so this write cannot stall the loop.
            let mut writer = stream;
            let busy = Reply::Error {
                message: "coordinator is saturated; retry shortly".into(),
            };
            let _ = write_message(&mut writer, &busy.to_json());
            return Ok(());
        };
        let store = config.cache.clone();
        let chaos = cache_chaos.clone();
        let rpc = rpc.clone();
        std::thread::spawn(move || {
            let _slot = slot;
            let writer = match stream.try_clone() {
                Ok(writer) => writer,
                Err(error) => {
                    if !quiet {
                        eprintln!("serve: dropped connection: {error}");
                    }
                    return;
                }
            };
            let mut reader = BufReader::new(stream);
            let message = match read_message(&mut reader) {
                Ok(message) => message,
                Err(error) => {
                    if !quiet {
                        eprintln!("serve: dropped connection: {error}");
                    }
                    return;
                }
            };
            if message.get("rpc").and_then(Json::as_str) == Some(CACHE_RPC_FORMAT) {
                serve_cache_connection(writer, store, message, chaos, quiet);
            } else {
                // The accept loop answers on its next tick; a send only
                // fails when the run is already over, and then the peer's
                // read timeout is the intended outcome.
                let _ = rpc.send((message, writer));
            }
        });
        Ok(())
    }
}
