//! The campaign coordinator: the transport-free service core
//! ([`ServeState`]) and the thin TCP accept loop around it
//! ([`Coordinator`]).
//!
//! The split is deliberate. Everything that decides — leasing, revocation,
//! idempotent discards, journaling-before-acknowledgement, the merge — is
//! in [`ServeState::handle`] and takes `now: Instant` as an argument, so
//! the determinism proptests can drive the *actual* service logic through
//! random kill/restart/late-submit schedules without sockets or sleeps.
//! The TCP layer only moves lines and never makes a scheduling decision.

use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use holes_core::json::Json;

use super::cache::{serve_cache_connection, CACHE_RPC_FORMAT};
use super::chaos::{cache_plan_from_env, CachePlan};
use super::journal::Journal;
use super::lease::{Assignment, LeaseConfig, LeaseTable, Revocation, Submission};
use super::protocol::{read_message, write_message, Reply, Request};
use super::ServeError;
use crate::shard::{CampaignShard, CampaignSpec};
use crate::store::ArtifactStore;
use crate::stream::{write_merged_stream, StreamRun};

/// Coordinator configuration: how to decompose the campaign and where to
/// journal accepted work.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// How many shard leases to cut the campaign into.
    pub lease_shards: u64,
    /// Heartbeat cadence and retry budget for leases.
    pub lease: LeaseConfig,
    /// Path of the `holes.serve-journal/v1` crash journal.
    pub journal: PathBuf,
    /// The artifact store served to the fleet over `holes.cache-rpc/v1`;
    /// `None` disables the shared cache (cache requests get a clean
    /// error reply and workers degrade to local-only caching).
    pub cache: Option<Arc<ArtifactStore>>,
    /// Cache-reply chaos override for in-process tests; when `None` the
    /// `HOLES_CACHE_CHAOS` environment plan applies.
    pub cache_chaos: Option<Arc<CachePlan>>,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
}

/// The coordinator's in-memory service state: lease table, accepted
/// results, and the crash journal, with every decision point parameterized
/// on the clock.
#[derive(Debug)]
pub struct ServeState {
    table: LeaseTable,
    results: Vec<Option<CampaignShard>>,
    journal: Journal,
    heartbeat_ms: u64,
    recovered: usize,
    quiet: bool,
}

/// The end state of a serve run: every accepted shard (by index), the
/// quarantined holes, and whether the run was cut short by a drain.
#[derive(Debug)]
pub struct ServeReport {
    /// Accepted shard results, indexed by shard; `None` where the campaign
    /// was drained or quarantined before the shard resolved.
    pub shards: Vec<Option<CampaignShard>>,
    /// Shards excluded after exhausting their lease attempts, with causes.
    pub quarantined: Vec<(usize, String)>,
    /// Whether the run ended in a drain with work still unassigned or
    /// unfinished (as opposed to resolving every shard).
    pub drained: bool,
}

impl ServeReport {
    /// Whether every shard of the decomposition was evaluated and accepted.
    pub fn complete(&self) -> bool {
        self.shards.iter().all(Option::is_some)
    }

    /// Accepted violation records across all shards.
    pub fn records(&self) -> usize {
        self.shards
            .iter()
            .flatten()
            .map(|s| s.result.records.len())
            .sum()
    }

    /// Contained subject faults carried by the accepted shards.
    pub fn faulted(&self) -> usize {
        self.shards
            .iter()
            .flatten()
            .map(|s| s.result.faults.len())
            .sum()
    }

    /// Write the merged campaign stream — byte-identical to a
    /// single-process unsharded run of the same spec. Only meaningful when
    /// [`ServeReport::complete`]; an incomplete merge is refused by the
    /// shard validators rather than silently emitting a partial campaign.
    pub fn write_merged<W: Write>(&self, out: W) -> Result<StreamRun, ServeError> {
        let shards: Vec<CampaignShard> = self.shards.iter().flatten().cloned().collect();
        Ok(write_merged_stream(shards, out)?)
    }
}

impl ServeState {
    /// Decompose `spec` into the configured lease shards and recover any
    /// previously journaled completions. `spec` must be the whole campaign
    /// (an unsharded spec): the coordinator owns the sharding.
    pub fn open(spec: &CampaignSpec, config: &ServeConfig) -> Result<ServeState, ServeError> {
        spec.validate()?;
        if spec.shards != 1 {
            return Err(ServeError::Protocol(
                "serve takes the whole campaign (an unsharded spec); \
                 the coordinator does its own sharding"
                    .into(),
            ));
        }
        let k = config.lease_shards.max(1);
        let specs: Vec<CampaignSpec> = (0..k).map(|i| spec.clone().with_shard(k, i)).collect();
        let (journal, entries) = Journal::open(&config.journal, spec, k)?;
        let mut table = LeaseTable::new(specs, config.lease);
        let mut results: Vec<Option<CampaignShard>> = vec![None; k as usize];
        let recovered = entries.len();
        for (index, shard) in entries {
            table.mark_done(index);
            results[index] = Some(shard);
        }
        Ok(ServeState {
            table,
            results,
            journal,
            heartbeat_ms: config.lease.heartbeat.as_millis().max(1) as u64,
            recovered,
            quiet: config.quiet,
        })
    }

    /// Serve one request at time `now`. Infallible decisions come back as
    /// replies (including discards); an `Err` means the coordinator itself
    /// is broken (journal write failure) and the run must abort — losing
    /// durability silently would betray the resume guarantee.
    pub fn handle(&mut self, request: &Request, now: Instant) -> Result<Reply, ServeError> {
        match request {
            Request::Lease { worker } => Ok(match self.table.assign(now) {
                Assignment::Lease { lease, index, spec } => {
                    self.log(&format!(
                        "lease {lease}: shard {index} of {} -> {worker}",
                        self.table.shards()
                    ));
                    Reply::Lease {
                        lease,
                        spec,
                        heartbeat_ms: self.heartbeat_ms,
                    }
                }
                Assignment::Wait => Reply::Wait {
                    backoff_ms: (self.heartbeat_ms / 2).max(10),
                },
                Assignment::Shutdown => Reply::Shutdown,
            }),
            Request::Heartbeat { lease } => Ok(Reply::Heartbeat {
                active: self.table.heartbeat(*lease, now),
            }),
            Request::Result { lease, shard } => {
                let Some(index) = self.table.lease_index(*lease) else {
                    return Ok(Reply::Discarded {
                        reason: format!(
                            "lease {lease} is not active (revoked, already completed, or unknown)"
                        ),
                    });
                };
                if *self.table.shard_spec(index) != shard.spec {
                    return Ok(Reply::Discarded {
                        reason: format!(
                            "result spec does not match the shard leased under {lease}"
                        ),
                    });
                }
                // Durability precedes acknowledgement: journal first, so a
                // coordinator that crashes after replying `accepted` can
                // never forget the shard.
                self.journal.record(index, shard)?;
                match self.table.submit(*lease, &shard.spec) {
                    Submission::Accepted { index } => {
                        self.results[index] = Some((**shard).clone());
                        self.log(&format!(
                            "lease {lease}: shard {index} accepted ({} records, {} faults)",
                            shard.result.records.len(),
                            shard.result.faults.len()
                        ));
                        Ok(Reply::Accepted)
                    }
                    Submission::Discarded { reason } => Ok(Reply::Discarded { reason }),
                }
            }
        }
    }

    /// Revoke every lease whose deadline has passed (see
    /// [`LeaseTable::revoke_expired`]), logging each loss.
    pub fn reap(&mut self, now: Instant) -> Vec<Revocation> {
        let revoked = self.table.revoke_expired(now);
        for revocation in &revoked {
            self.log(&format!(
                "lease {}: shard {} {} after missed heartbeats (attempt {})",
                revocation.lease,
                revocation.index,
                if revocation.quarantined {
                    "quarantined"
                } else {
                    "requeued"
                },
                revocation.attempts,
            ));
        }
        revoked
    }

    /// Stop granting leases; in-flight ones may still complete.
    pub fn drain(&mut self) {
        self.table.drain();
    }

    /// Whether [`ServeState::drain`] was called.
    pub fn draining(&self) -> bool {
        self.table.draining()
    }

    /// Whether every shard is resolved (accepted or quarantined).
    pub fn complete(&self) -> bool {
        self.table.complete()
    }

    /// Whether no lease is in flight.
    pub fn idle(&self) -> bool {
        self.table.idle()
    }

    /// Shards recovered from the journal at open, never re-leased.
    pub fn recovered(&self) -> usize {
        self.recovered
    }

    /// Number of shards in the decomposition.
    pub fn shards(&self) -> usize {
        self.table.shards()
    }

    /// Consume the state into the run's end report.
    pub fn into_report(self) -> ServeReport {
        let drained = !self.table.complete();
        ServeReport {
            quarantined: self.table.quarantined(),
            shards: self.results,
            drained,
        }
    }

    fn log(&self, message: &str) {
        if !self.quiet {
            eprintln!("serve: {message}");
        }
    }
}

/// The TCP front of the service: accepts one-request connections and feeds
/// them to a [`ServeState`].
#[derive(Debug)]
pub struct Coordinator {
    listener: TcpListener,
}

/// How long a single connection may take to deliver its request line or
/// absorb its reply before the coordinator abandons it. Generous — a
/// result line for a large shard takes real time — but finite, so one
/// wedged socket cannot stall every other worker's heartbeats forever.
const PEER_TIMEOUT: Duration = Duration::from_secs(10);

/// Bounds on the post-completion linger window (twice the heartbeat,
/// clamped): long enough that every worker's next poll lands inside it,
/// short enough that `holes serve` never dawdles after the merge is ready.
const LINGER_FLOOR: Duration = Duration::from_millis(200);

/// See [`LINGER_FLOOR`].
const LINGER_CEILING: Duration = Duration::from_secs(2);

impl Coordinator {
    /// Bind the coordinator's listening socket (nonblocking, so the accept
    /// loop can interleave lease reaping and drain checks).
    pub fn bind<A: ToSocketAddrs>(addr: A) -> Result<Coordinator, ServeError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        Ok(Coordinator { listener })
    }

    /// The bound address — useful when binding port 0.
    pub fn local_addr(&self) -> Result<SocketAddr, ServeError> {
        Ok(self.listener.local_addr()?)
    }

    /// Run the campaign to resolution. Returns when every shard is
    /// accepted or quarantined, or — once `drain` becomes `true` (the
    /// SIGTERM flag) — when the last in-flight lease resolves or expires.
    pub fn run(
        &self,
        spec: &CampaignSpec,
        config: &ServeConfig,
        drain: &AtomicBool,
    ) -> Result<ServeReport, ServeError> {
        let mut state = ServeState::open(spec, config)?;
        let cache_chaos = config.cache_chaos.clone().or_else(cache_plan_from_env);
        if !config.quiet && state.recovered() > 0 {
            eprintln!(
                "serve: resumed {} of {} shards from journal {}",
                state.recovered(),
                state.shards(),
                config.journal.display()
            );
        }
        loop {
            if drain.load(Ordering::SeqCst) && !state.draining() {
                state.drain();
                if !config.quiet {
                    eprintln!("serve: draining — no new leases, waiting for in-flight work");
                }
            }
            state.reap(Instant::now());
            if state.complete() || (state.draining() && state.idle()) {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.serve_connection(stream, &mut state, config, &cache_chaos)?
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        // Completion linger: fleet members poll again within a heartbeat
        // or two, and answering that next request with `Shutdown` lets
        // them exit immediately. Without it a worker's request can land in
        // the backlog of a listener nobody will ever accept from again and
        // block there until its read timeout expires.
        let linger = (config.lease.heartbeat * 2).clamp(LINGER_FLOOR, LINGER_CEILING);
        let deadline = Instant::now() + linger;
        while Instant::now() < deadline {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    self.serve_connection(stream, &mut state, config, &cache_chaos)?
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e.into()),
            }
        }
        Ok(state.into_report())
    }

    /// Serve one connection: one request line, one reply line. Peer
    /// misbehavior (torn lines, timeouts, sockets dead before the reply) is
    /// logged and dropped — a killed worker must never take the
    /// coordinator down with it. Only coordinator-side failures (the
    /// journal) propagate.
    ///
    /// Connections are dispatched on the `rpc` version tag:
    /// `holes.rpc/v1` (lease/heartbeat/submit) is served inline against
    /// the lease state, while `holes.cache-rpc/v1` is handed to a detached
    /// thread — a slow disk read or a chaos-stalled cache reply must never
    /// block the accept loop that keeps every worker's heartbeats alive.
    fn serve_connection(
        &self,
        stream: TcpStream,
        state: &mut ServeState,
        config: &ServeConfig,
        cache_chaos: &Option<Arc<CachePlan>>,
    ) -> Result<(), ServeError> {
        let quiet = config.quiet;
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(PEER_TIMEOUT))?;
        stream.set_write_timeout(Some(PEER_TIMEOUT))?;
        let mut writer = stream.try_clone()?;
        let mut reader = BufReader::new(stream);
        let message = match read_message(&mut reader) {
            Ok(message) => message,
            Err(error) => {
                if !quiet {
                    eprintln!("serve: dropped connection: {error}");
                }
                return Ok(());
            }
        };
        if message.get("rpc").and_then(Json::as_str) == Some(CACHE_RPC_FORMAT) {
            let store = config.cache.clone();
            let chaos = cache_chaos.clone();
            std::thread::spawn(move || {
                serve_cache_connection(writer, store, message, chaos, quiet);
            });
            return Ok(());
        }
        let reply = match Request::from_json(&message) {
            Ok(request) => state.handle(&request, Instant::now())?,
            Err(error) => Reply::Error {
                message: error.to_string(),
            },
        };
        if let Err(error) = write_message(&mut writer, &reply.to_json()) {
            if !quiet {
                eprintln!("serve: peer vanished before the reply: {error}");
            }
        }
        Ok(())
    }
}
