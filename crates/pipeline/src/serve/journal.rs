//! The coordinator's crash journal (`holes.serve-journal/v1`).
//!
//! Append-only JSON Lines: a header naming the campaign and its lease
//! decomposition, then one line per accepted shard embedding the full
//! `holes.campaign/v1` document. Every append is flushed and fsynced
//! *before* the worker's submission is acknowledged, so "the worker saw
//! `accepted`" implies "a restarted coordinator will not re-run that
//! shard".
//!
//! Reloading follows the same discipline as streaming shard resume: a
//! journal cut mid-line by `kill -9` loses only its torn tail (the file is
//! truncated back to the last intact line), while a journal written for a
//! different campaign or decomposition — or with corruption *between*
//! intact lines — is refused outright rather than half-trusted.

use std::fs::OpenOptions;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use holes_core::json::Json;

use super::ServeError;
use crate::shard::{spec_header_pairs, CampaignShard, CampaignSpec};

/// Format tag of the coordinator journal's header line.
pub const JOURNAL_FORMAT: &str = "holes.serve-journal/v1";

/// An open, append-positioned coordinator journal.
#[derive(Debug)]
pub struct Journal {
    file: std::fs::File,
}

fn header_line(spec: &CampaignSpec, lease_shards: u64) -> String {
    let mut pairs = spec_header_pairs(spec, JOURNAL_FORMAT);
    pairs.push(("lease_shards".to_owned(), Json::from_u64(lease_shards)));
    let mut line = Json::Obj(pairs).to_compact();
    line.push('\n');
    line
}

fn entry_line(index: usize, shard: &CampaignShard) -> String {
    let mut line = Json::Obj(vec![
        ("done".to_owned(), Json::from_usize(index)),
        ("shard".to_owned(), shard.to_json()),
    ])
    .to_compact();
    line.push('\n');
    line
}

impl Journal {
    /// Open (or create) the journal at `path` for the campaign `spec`
    /// decomposed into `lease_shards` shards, recovering every intact
    /// completed-shard entry. A trailing torn line (coordinator killed
    /// mid-append) is silently truncated away; a header or interior entry
    /// that belongs to a different campaign, fails shard validation, or is
    /// corrupt is a hard error — better to make the operator delete a
    /// suspect journal than to merge half-trusted records.
    pub fn open(
        path: &Path,
        spec: &CampaignSpec,
        lease_shards: u64,
    ) -> Result<(Journal, Vec<(usize, CampaignShard)>), ServeError> {
        let expected_header = header_line(spec, lease_shards);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut contents = String::new();
        file.read_to_string(&mut contents)?;

        // Fresh (or torn-before-the-header-newline) journal: start over.
        let fresh = contents.is_empty()
            || (!contents.contains('\n') && expected_header.starts_with(&contents));
        if fresh {
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(expected_header.as_bytes())?;
            file.sync_data()?;
            return Ok((Journal { file }, Vec::new()));
        }

        let Some(header_end) = contents.find('\n') else {
            return Err(foreign(path));
        };
        if contents[..=header_end] != expected_header {
            return Err(foreign(path));
        }

        let mut recovered: Vec<(usize, CampaignShard)> = Vec::new();
        let mut keep = header_end + 1;
        let mut rest = &contents[keep..];
        while let Some(line_end) = rest.find('\n') {
            let line = &rest[..line_end];
            let entry = Json::parse(line).map_err(|e| {
                ServeError::Protocol(format!("corrupt journal entry in {}: {e}", path.display()))
            })?;
            let index = entry
                .get("done")
                .and_then(Json::as_usize)
                .filter(|i| (*i as u64) < lease_shards)
                .ok_or_else(|| {
                    ServeError::Protocol(format!(
                        "journal entry in {} names no shard of the campaign",
                        path.display()
                    ))
                })?;
            let shard = entry
                .get("shard")
                .ok_or_else(|| {
                    ServeError::Protocol(format!(
                        "journal entry in {} carries no shard",
                        path.display()
                    ))
                })
                .and_then(|s| CampaignShard::from_json(s).map_err(ServeError::from))?;
            let expected_spec = spec.clone().with_shard(lease_shards, index as u64);
            if shard.spec != expected_spec {
                return Err(ServeError::Protocol(format!(
                    "journal entry for shard {index} in {} does not match the campaign",
                    path.display()
                )));
            }
            // Idempotent appends: a crash between fsync and in-memory
            // commit can duplicate an entry; the first one wins.
            if !recovered.iter().any(|(i, _)| *i == index) {
                recovered.push((index, shard));
            }
            keep += line_end + 1;
            rest = &rest[line_end + 1..];
        }

        // Anything after the last newline is a torn append: drop it.
        file.set_len(keep as u64)?;
        file.seek(SeekFrom::Start(keep as u64))?;
        Ok((Journal { file }, recovered))
    }

    /// Append one accepted shard and force it to disk. Only after this
    /// returns may the coordinator acknowledge the submission.
    pub fn record(&mut self, index: usize, shard: &CampaignShard) -> Result<(), ServeError> {
        self.file.write_all(entry_line(index, shard).as_bytes())?;
        self.file.sync_data()?;
        Ok(())
    }
}

fn foreign(path: &Path) -> ServeError {
    ServeError::Protocol(format!(
        "journal {} was written for a different campaign or lease decomposition \
         (delete it to start over)",
        path.display()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::run_shard;
    use holes_compiler::Personality;
    use holes_progen::SeedRange;
    use std::path::PathBuf;

    fn spec() -> CampaignSpec {
        CampaignSpec::new(
            Personality::Ccg,
            Personality::Ccg.trunk(),
            SeedRange::new(2650, 2656),
        )
    }

    struct Scratch {
        path: PathBuf,
    }

    impl Scratch {
        fn new(name: &str) -> Scratch {
            let path =
                std::env::temp_dir().join(format!("holes-journal-{name}-{}", std::process::id()));
            let _ = std::fs::remove_file(&path);
            Scratch { path }
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.path);
        }
    }

    #[test]
    fn journal_round_trips_and_survives_torn_tails() {
        let scratch = Scratch::new("roundtrip");
        let spec = spec();
        let shard1 = run_shard(&spec.clone().with_shard(3, 1)).expect("shard evaluates");

        let (mut journal, recovered) =
            Journal::open(&scratch.path, &spec, 3).expect("fresh journal opens");
        assert!(recovered.is_empty());
        journal.record(1, &shard1).expect("entry appends");
        drop(journal);

        // Clean reopen recovers the entry; duplicates collapse to one.
        let (mut journal, recovered) =
            Journal::open(&scratch.path, &spec, 3).expect("journal reopens");
        assert_eq!(recovered.len(), 1);
        assert_eq!(recovered[0].0, 1);
        assert_eq!(recovered[0].1, shard1);
        journal.record(1, &shard1).expect("duplicate appends");
        drop(journal);
        let (_, recovered) = Journal::open(&scratch.path, &spec, 3).expect("journal reopens");
        assert_eq!(recovered.len(), 1, "duplicate entries collapse");

        // Tear the tail mid-line, as kill -9 during an append would: the
        // torn suffix is dropped, the intact prefix survives.
        let intact = std::fs::read(&scratch.path).expect("journal reads");
        let torn = [&intact[..], b"{\"done\":2,\"sha"].concat();
        std::fs::write(&scratch.path, &torn).expect("torn journal writes");
        let (_, recovered) = Journal::open(&scratch.path, &spec, 3).expect("torn journal opens");
        assert_eq!(recovered.len(), 1, "torn tail dropped, intact entry kept");
        assert_eq!(
            std::fs::read(&scratch.path).expect("journal reads"),
            intact,
            "file truncated back to the intact prefix"
        );
    }

    #[test]
    fn foreign_and_corrupt_journals_are_refused() {
        let scratch = Scratch::new("foreign");
        let spec = spec();

        // A journal for a different decomposition of the same campaign.
        drop(Journal::open(&scratch.path, &spec, 3).expect("journal opens"));
        let refusal = Journal::open(&scratch.path, &spec, 4).expect_err("foreign decomposition");
        assert!(
            refusal.to_string().contains("different campaign"),
            "{refusal}"
        );

        // Interior corruption (an unparseable line *before* the end) is a
        // hard error, not a silent truncation.
        let mut bytes = std::fs::read(&scratch.path).expect("journal reads");
        bytes.extend_from_slice(b"not json\n");
        let shard = run_shard(&spec.clone().with_shard(3, 0)).expect("shard evaluates");
        bytes.extend_from_slice(entry_line(0, &shard).as_bytes());
        std::fs::write(&scratch.path, &bytes).expect("corrupt journal writes");
        let refusal = Journal::open(&scratch.path, &spec, 3).expect_err("interior corruption");
        assert!(refusal.to_string().contains("corrupt journal"), "{refusal}");

        // An entry whose embedded shard belongs to another campaign.
        let scratch2 = Scratch::new("mismatch");
        drop(Journal::open(&scratch2.path, &spec, 3).expect("journal opens"));
        let mut bytes = std::fs::read(&scratch2.path).expect("journal reads");
        bytes.extend_from_slice(entry_line(1, &shard).as_bytes());
        std::fs::write(&scratch2.path, &bytes).expect("mismatched journal writes");
        let refusal = Journal::open(&scratch2.path, &spec, 3).expect_err("mismatched entry");
        assert!(refusal.to_string().contains("does not match"), "{refusal}");
    }
}
