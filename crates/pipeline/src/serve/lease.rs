//! The coordinator's shard state machine: leases, deadlines, revocation,
//! bounded retries, and quarantine.
//!
//! Every public method takes `now: Instant` instead of reading the clock,
//! so proptests can drive the exact schedules — revoke-then-late-submit,
//! double submission, restart mid-lease — that wall-clock tests only hit by
//! luck. The invariants the table maintains:
//!
//! * a shard is `Done` at most once; late or duplicate results are
//!   [`Submission::Discarded`], never double-counted;
//! * a revoked shard returns to the queue until it has burned
//!   [`LeaseConfig::max_attempts`] leases, after which it is quarantined
//!   (the campaign finishes with an explicit hole rather than hanging on a
//!   poisoned shard — the same judgement call the artifact store's
//!   quarantine makes);
//! * once [`LeaseTable::drain`] is called no new lease is ever granted, but
//!   in-flight leases may still complete.

use std::time::{Duration, Instant};

use crate::shard::CampaignSpec;

/// How many heartbeat periods a lease survives without hearing from its
/// worker before it is revoked. More than one, so a single delayed packet
/// or a coordinator busy validating a large result does not strip a healthy
/// worker; small enough that a dead worker's shard requeues quickly.
pub const GRACE_BEATS: u32 = 4;

/// The revocation deadline a fresh lease or heartbeat earns:
/// [`GRACE_BEATS`] heartbeat intervals from `now`. Computed with checked
/// arithmetic — an operator-supplied interval large enough to overflow the
/// multiplication or the instant saturates to the farthest representable
/// deadline (effectively "never expires") instead of panicking the
/// coordinator mid-campaign.
fn grace_deadline(now: Instant, heartbeat: Duration) -> Instant {
    heartbeat
        .checked_mul(GRACE_BEATS)
        .and_then(|grace| now.checked_add(grace))
        // A century from now is beyond any campaign's lifetime; the final
        // fallback can only be reached on an `Instant` within a heartbeat
        // of its own overflow, which real clocks never produce.
        .or_else(|| now.checked_add(Duration::from_secs(100 * 365 * 24 * 60 * 60)))
        .unwrap_or(now)
}

/// Tuning knobs for the lease table.
#[derive(Debug, Clone, Copy)]
pub struct LeaseConfig {
    /// Cadence workers must heartbeat at; the revocation deadline is
    /// [`GRACE_BEATS`] of these.
    pub heartbeat: Duration,
    /// Maximum leases granted per shard before it is quarantined.
    pub max_attempts: u32,
}

impl Default for LeaseConfig {
    fn default() -> LeaseConfig {
        LeaseConfig {
            heartbeat: Duration::from_millis(500),
            max_attempts: 3,
        }
    }
}

#[derive(Debug)]
enum SlotState {
    /// Waiting for a worker.
    Pending,
    /// Held by lease `lease` until `deadline`.
    Leased { lease: u64, deadline: Instant },
    /// Result accepted and journaled.
    Done,
    /// Burned every attempt; excluded from the campaign with a cause.
    Quarantined { cause: String },
}

#[derive(Debug)]
struct Slot {
    spec: CampaignSpec,
    state: SlotState,
    attempts: u32,
}

/// The coordinator's view of every shard of the campaign.
#[derive(Debug)]
pub struct LeaseTable {
    config: LeaseConfig,
    slots: Vec<Slot>,
    next_lease: u64,
    draining: bool,
}

/// What [`LeaseTable::assign`] hands a worker asking for work.
#[derive(Debug)]
pub enum Assignment {
    /// A granted lease over one shard.
    Lease {
        /// Lease identifier (unique across the coordinator's lifetime,
        /// including re-leases of the same shard).
        lease: u64,
        /// Index of the shard in the campaign decomposition.
        index: usize,
        /// The shard spec the worker must evaluate.
        spec: CampaignSpec,
    },
    /// Nothing assignable right now (all remaining shards are in flight);
    /// ask again shortly.
    Wait,
    /// The campaign is over for workers: every shard is resolved, or the
    /// coordinator is draining.
    Shutdown,
}

/// What [`LeaseTable::submit`] decided about a submitted result.
#[derive(Debug)]
pub enum Submission {
    /// The result was bound to its shard; the shard is now `Done`.
    Accepted {
        /// Index of the shard the result completes.
        index: usize,
    },
    /// The result was ignored: the lease is not active (revoked, already
    /// completed, or from a previous coordinator life), or the submitted
    /// spec does not match the leased shard.
    Discarded {
        /// Why the result was dropped.
        reason: String,
    },
}

/// One lease revoked by [`LeaseTable::revoke_expired`].
#[derive(Debug)]
pub struct Revocation {
    /// Index of the shard whose lease expired.
    pub index: usize,
    /// The revoked lease.
    pub lease: u64,
    /// Leases this shard has burned so far.
    pub attempts: u32,
    /// Whether the shard was quarantined (attempts exhausted) rather than
    /// requeued.
    pub quarantined: bool,
}

impl LeaseTable {
    /// A table over the campaign's shard decomposition, every shard pending.
    pub fn new(specs: Vec<CampaignSpec>, config: LeaseConfig) -> LeaseTable {
        LeaseTable {
            config,
            slots: specs
                .into_iter()
                .map(|spec| Slot {
                    spec,
                    state: SlotState::Pending,
                    attempts: 0,
                })
                .collect(),
            next_lease: 1,
            draining: false,
        }
    }

    /// Mark shard `index` already done — journal recovery, before any
    /// lease is granted. Recovered shards are never re-leased.
    pub fn mark_done(&mut self, index: usize) {
        self.slots[index].state = SlotState::Done;
    }

    /// Grant the first pending shard to a worker, or say why not.
    pub fn assign(&mut self, now: Instant) -> Assignment {
        if self.draining || self.complete() {
            return Assignment::Shutdown;
        }
        let deadline = grace_deadline(now, self.config.heartbeat);
        for (index, slot) in self.slots.iter_mut().enumerate() {
            if let SlotState::Pending = slot.state {
                let lease = self.next_lease;
                self.next_lease += 1;
                slot.attempts += 1;
                slot.state = SlotState::Leased { lease, deadline };
                return Assignment::Lease {
                    lease,
                    index,
                    spec: slot.spec.clone(),
                };
            }
        }
        Assignment::Wait
    }

    /// Extend the deadline of an active lease. Returns `false` for a lease
    /// that is no longer held — the worker's cue that its result will be
    /// discarded and it should stop burning cycles on the shard.
    pub fn heartbeat(&mut self, lease: u64, now: Instant) -> bool {
        let deadline = grace_deadline(now, self.config.heartbeat);
        for slot in &mut self.slots {
            if let SlotState::Leased {
                lease: held,
                deadline: d,
            } = &mut slot.state
            {
                if *held == lease {
                    *d = deadline;
                    return true;
                }
            }
        }
        false
    }

    /// The shard index an active lease is bound to, if any — the
    /// coordinator journals under this index *before* committing the
    /// submission, so durability precedes acknowledgement.
    pub fn lease_index(&self, lease: u64) -> Option<usize> {
        self.slots.iter().position(
            |slot| matches!(slot.state, SlotState::Leased { lease: held, .. } if held == lease),
        )
    }

    /// Bind a submitted result to its shard. `spec` is the spec the worker
    /// claims to have evaluated; a mismatch against the leased shard is
    /// discarded rather than trusted.
    pub fn submit(&mut self, lease: u64, spec: &CampaignSpec) -> Submission {
        let Some(index) = self.lease_index(lease) else {
            return Submission::Discarded {
                reason: format!(
                    "lease {lease} is not active (revoked, already completed, or unknown)"
                ),
            };
        };
        if self.slots[index].spec != *spec {
            return Submission::Discarded {
                reason: format!("result spec does not match the shard leased under {lease}"),
            };
        }
        self.slots[index].state = SlotState::Done;
        Submission::Accepted { index }
    }

    /// Revoke every lease whose deadline has passed: requeue the shard, or
    /// quarantine it when its attempts are exhausted.
    pub fn revoke_expired(&mut self, now: Instant) -> Vec<Revocation> {
        let mut revoked = Vec::new();
        for (index, slot) in self.slots.iter_mut().enumerate() {
            let SlotState::Leased { lease, deadline } = slot.state else {
                continue;
            };
            if deadline > now {
                continue;
            }
            let quarantined = slot.attempts >= self.config.max_attempts;
            slot.state = if quarantined {
                SlotState::Quarantined {
                    cause: format!(
                        "lost {} leases to missed heartbeats (last lease {lease})",
                        slot.attempts
                    ),
                }
            } else {
                SlotState::Pending
            };
            revoked.push(Revocation {
                index,
                lease,
                attempts: slot.attempts,
                quarantined,
            });
        }
        revoked
    }

    /// Stop granting leases; in-flight ones may still complete.
    pub fn drain(&mut self) {
        self.draining = true;
    }

    /// Whether [`LeaseTable::drain`] was called.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// Whether every shard is resolved (`Done` or quarantined).
    pub fn complete(&self) -> bool {
        self.slots
            .iter()
            .all(|s| matches!(s.state, SlotState::Done | SlotState::Quarantined { .. }))
    }

    /// Whether no lease is in flight — with [`LeaseTable::draining`], the
    /// drained-and-safe-to-exit condition.
    pub fn idle(&self) -> bool {
        !self
            .slots
            .iter()
            .any(|s| matches!(s.state, SlotState::Leased { .. }))
    }

    /// Shard indices resolved as `Done`.
    pub fn done(&self) -> Vec<usize> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.state, SlotState::Done))
            .map(|(i, _)| i)
            .collect()
    }

    /// Quarantined shards and their causes, in index order.
    pub fn quarantined(&self) -> Vec<(usize, String)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match &s.state {
                SlotState::Quarantined { cause } => Some((i, cause.clone())),
                _ => None,
            })
            .collect()
    }

    /// Number of shards in the campaign decomposition.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// The spec of shard `index` of the decomposition.
    pub fn shard_spec(&self, index: usize) -> &CampaignSpec {
        &self.slots[index].spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holes_compiler::Personality;
    use holes_progen::SeedRange;

    fn shard_specs(k: u64) -> Vec<CampaignSpec> {
        let spec = CampaignSpec::new(
            Personality::Ccg,
            Personality::Ccg.trunk(),
            SeedRange::new(100, 140),
        );
        (0..k).map(|i| spec.clone().with_shard(k, i)).collect()
    }

    fn config(heartbeat_ms: u64, max_attempts: u32) -> LeaseConfig {
        LeaseConfig {
            heartbeat: Duration::from_millis(heartbeat_ms),
            max_attempts,
        }
    }

    fn lease_of(assignment: Assignment) -> (u64, usize, CampaignSpec) {
        match assignment {
            Assignment::Lease { lease, index, spec } => (lease, index, spec),
            other => panic!("expected a lease, got {other:?}"),
        }
    }

    #[test]
    fn leases_cover_every_shard_exactly_once_and_then_shut_down() {
        let mut table = LeaseTable::new(shard_specs(3), config(100, 3));
        let now = Instant::now();
        let mut seen = Vec::new();
        for _ in 0..3 {
            let (lease, index, spec) = lease_of(table.assign(now));
            assert_eq!(spec.shard, index as u64);
            seen.push(index);
            assert!(
                matches!(table.submit(lease, &spec), Submission::Accepted { index: i } if i == index)
            );
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
        assert!(table.complete());
        assert!(matches!(table.assign(now), Assignment::Shutdown));
        assert!(table.quarantined().is_empty());
    }

    /// Regression test: an absurd heartbeat interval used to overflow the
    /// `heartbeat * GRACE_BEATS` multiplication (or the instant addition)
    /// and panic the coordinator on the first lease grant. The deadline
    /// saturates instead, and such a lease simply never expires.
    #[test]
    fn extreme_heartbeat_intervals_saturate_instead_of_panicking() {
        let extreme = LeaseConfig {
            heartbeat: Duration::MAX,
            max_attempts: 3,
        };
        let mut table = LeaseTable::new(shard_specs(1), extreme);
        let now = Instant::now();
        let (lease, index, spec) = lease_of(table.assign(now));
        assert!(table.heartbeat(lease, now + Duration::from_secs(3600)));
        let far = now + Duration::from_secs(10 * 365 * 24 * 60 * 60);
        assert!(
            table.revoke_expired(far).is_empty(),
            "a saturated deadline must never expire"
        );
        assert!(
            matches!(table.submit(lease, &spec), Submission::Accepted { index: i } if i == index)
        );
    }

    #[test]
    fn missed_heartbeats_revoke_requeue_and_eventually_quarantine() {
        let mut table = LeaseTable::new(shard_specs(1), config(100, 2));
        let t0 = Instant::now();

        // First lease: heartbeat once, then go silent past the grace window.
        let (lease1, _, _) = lease_of(table.assign(t0));
        let mid = t0 + Duration::from_millis(100);
        assert!(table.heartbeat(lease1, mid));
        assert!(table.revoke_expired(mid).is_empty(), "deadline not reached");
        let late = mid + Duration::from_millis(100 * GRACE_BEATS as u64 + 1);
        let revoked = table.revoke_expired(late);
        assert_eq!(revoked.len(), 1);
        assert!(!revoked[0].quarantined, "first loss requeues");
        assert!(
            !table.heartbeat(lease1, late),
            "revoked lease refuses heartbeats"
        );

        // Second (final) attempt times out too: quarantine, with a cause.
        let (lease2, _, _) = lease_of(table.assign(late));
        assert_ne!(lease1, lease2, "re-lease gets a fresh identifier");
        let later = late + Duration::from_millis(100 * GRACE_BEATS as u64 + 1);
        let revoked = table.revoke_expired(later);
        assert_eq!(revoked.len(), 1);
        assert!(revoked[0].quarantined, "attempts exhausted");
        assert!(table.complete(), "quarantine resolves the campaign");
        let quarantined = table.quarantined();
        assert_eq!(quarantined.len(), 1);
        assert!(quarantined[0].1.contains("missed heartbeats"));
    }

    #[test]
    fn late_duplicate_and_mismatched_results_are_discarded() {
        let mut table = LeaseTable::new(shard_specs(2), config(100, 3));
        let t0 = Instant::now();
        let (lease, index, spec) = lease_of(table.assign(t0));

        // A result claiming a different spec than was leased is not trusted.
        let (_, _, other_spec) = lease_of(table.assign(t0));
        let verdict = table.submit(lease, &other_spec);
        assert!(matches!(&verdict, Submission::Discarded { reason } if reason.contains("match")));

        // Revoke, then let the old worker submit late: discarded, and the
        // requeued shard can still be completed exactly once.
        let late = t0 + Duration::from_millis(100 * GRACE_BEATS as u64 + 1);
        table.revoke_expired(late);
        let verdict = table.submit(lease, &spec);
        assert!(
            matches!(&verdict, Submission::Discarded { reason } if reason.contains("not active"))
        );

        let (release, reindex, respec) = lease_of(table.assign(late));
        assert_eq!(reindex, index, "revoked shard returns to the queue");
        assert!(matches!(
            table.submit(release, &respec),
            Submission::Accepted { .. }
        ));
        let verdict = table.submit(release, &respec);
        assert!(
            matches!(verdict, Submission::Discarded { .. }),
            "double submit discarded"
        );
    }

    #[test]
    fn draining_stops_assignment_but_lets_in_flight_leases_finish() {
        let mut table = LeaseTable::new(shard_specs(3), config(100, 3));
        let now = Instant::now();
        let (lease, _, spec) = lease_of(table.assign(now));
        table.drain();
        assert!(matches!(table.assign(now), Assignment::Shutdown));
        assert!(!table.idle(), "one lease still in flight");
        assert!(
            table.heartbeat(lease, now),
            "draining does not revoke in-flight work"
        );
        assert!(matches!(
            table.submit(lease, &spec),
            Submission::Accepted { .. }
        ));
        assert!(table.idle(), "drained once the in-flight lease resolves");
        assert!(
            !table.complete(),
            "pending shards remain unresolved after a drain"
        );
    }

    #[test]
    fn journal_recovered_shards_are_never_re_leased() {
        let mut table = LeaseTable::new(shard_specs(3), config(100, 3));
        table.mark_done(1);
        let now = Instant::now();
        let (_, first, _) = lease_of(table.assign(now));
        let (_, second, _) = lease_of(table.assign(now));
        let mut granted = vec![first, second];
        granted.sort_unstable();
        assert_eq!(granted, vec![0, 2], "recovered shard 1 skipped");
        assert!(
            matches!(table.assign(now), Assignment::Wait),
            "rest in flight"
        );
        assert_eq!(table.done(), vec![1]);
    }
}
