//! The distributed campaign service: a coordinator that decomposes one
//! [`CampaignSpec`] into shard **leases** and hands them to a preemptible
//! worker fleet over a versioned line-delimited JSON protocol
//! (`holes.rpc/v1`), with crash-tolerance as the design center.
//!
//! The moving parts, bottom up:
//!
//! * [`protocol`] — the `holes.rpc/v1` wire messages. One TCP connection
//!   carries one request line and one reply line; results embed the
//!   completed shard as a full `holes.campaign/v1` document, so the
//!   coordinator revalidates every record exactly like `holes report` does.
//! * [`lease`] — the coordinator's shard state machine. Leases carry
//!   heartbeat deadlines; a missed deadline revokes the lease and requeues
//!   the shard (bounded attempts, then quarantine, mirroring the store's
//!   quarantine protocol), and results from revoked leases are discarded
//!   idempotently so no subject is ever double-counted.
//! * [`journal`] — the coordinator's own crash log
//!   (`holes.serve-journal/v1`): every accepted shard is appended and
//!   fsynced before the worker sees the acknowledgement, so a restarted
//!   coordinator resumes without re-running finished work.
//! * [`coordinator`] — the transport-free service core ([`ServeState`])
//!   plus the TCP accept loop ([`Coordinator`]); SIGTERM (a drain flag)
//!   stops new assignments and lets in-flight leases finish.
//! * [`worker`] — the worker loop: lease, evaluate through
//!   [`crate::stream::resume_shard_streaming`] (so a `kill -9`'d worker
//!   restarted over the same work directory re-evaluates only the
//!   unfinished suffix), heartbeat in the background, submit.
//! * [`cache`] — the `holes.cache-rpc/v1` fleet-wide artifact cache: the
//!   coordinator serves fetch/put requests straight out of its
//!   [`crate::store::ArtifactStore`] on the same listener, and workers
//!   layer a [`RemoteStore`] client into their miss path (memory → local
//!   store → remote fetch → recompute, with write-through puts), behind
//!   timeouts, bounded retry, and a circuit breaker that degrades to
//!   local-only caching.
//! * [`chaos`] — the `HOLES_SERVE_CHAOS` fault-injection knob the CI smoke
//!   drives (`abort:N` hard-kills the process mid-shard; `preempt:N`
//!   silences heartbeats so a lease is revoked under a live worker), plus
//!   `HOLES_CACHE_CHAOS` (`drop:N`/`corrupt:N`/`delay:N`) for mutating
//!   cache replies.
//!
//! The load-bearing guarantee, held by proptests over random kill and
//! revocation schedules: the coordinator's merged stream is
//! **byte-identical** to a single-process unsharded
//! [`crate::stream::run_shard_streaming`] of the same spec.
//!
//! [`CampaignSpec`]: crate::shard::CampaignSpec
//! [`ServeState`]: coordinator::ServeState
//! [`Coordinator`]: coordinator::Coordinator

pub mod cache;
pub mod chaos;
pub mod coordinator;
pub mod journal;
pub mod lease;
pub mod protocol;
pub mod worker;

pub use cache::{CacheReply, CacheRequest, RemoteStore, CACHE_RPC_FORMAT};
pub use coordinator::{Coordinator, ServeConfig, ServeReport, ServeState};
pub use journal::{Journal, JOURNAL_FORMAT};
pub use lease::{Assignment, LeaseConfig, LeaseTable, Revocation, Submission};
pub use protocol::{Reply, Request, RPC_FORMAT};
pub use worker::{run_worker, WorkerConfig, WorkerOutcome};

use crate::shard::ShardError;

/// A failure in the distributed campaign service: transport, shard
/// validation, or a protocol violation by the peer.
#[derive(Debug)]
pub enum ServeError {
    /// A socket or journal-file operation failed.
    Io(std::io::Error),
    /// An embedded spec or shard failed validation (see [`ShardError`]).
    Shard(ShardError),
    /// The peer (or a journal on disk) violated the `holes.rpc/v1` /
    /// `holes.cache-rpc/v1` / `holes.serve-journal/v1` contract.
    Protocol(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "serve I/O: {e}"),
            ServeError::Shard(e) => e.fmt(f),
            ServeError::Protocol(m) => write!(f, "protocol: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<std::io::Error> for ServeError {
    fn from(error: std::io::Error) -> ServeError {
        ServeError::Io(error)
    }
}

impl From<ShardError> for ServeError {
    fn from(error: ShardError) -> ServeError {
        ServeError::Shard(error)
    }
}

impl From<crate::stream::StreamError> for ServeError {
    fn from(error: crate::stream::StreamError) -> ServeError {
        match error {
            crate::stream::StreamError::Shard(e) => ServeError::Shard(e),
            crate::stream::StreamError::Io(e) => ServeError::Io(e),
        }
    }
}
