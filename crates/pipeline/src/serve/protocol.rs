//! The `holes.rpc/v1` wire protocol between coordinator and workers.
//!
//! Deliberately minimal: one TCP connection carries exactly one request
//! line and one reply line, both compact JSON tagged with an `rpc` version
//! field. Requests and replies never interleave on a shared stream, so
//! there is no framing state to corrupt when a worker is killed mid-write —
//! the coordinator just sees a torn line on a dead socket and drops it.
//!
//! Completed work travels as a full `holes.campaign/v1` document embedded
//! in the [`Request::Result`] message, so the coordinator revalidates a
//! submitted shard with [`CampaignShard::from_json`] — the same parser
//! `holes report` trusts — before a single record enters the merge.

use std::io::{BufRead, Read, Write};

use holes_core::json::Json;

use super::ServeError;
use crate::shard::{
    parse_levels, parse_spec_header, spec_header_pairs, CampaignShard, CampaignSpec,
};

/// Version tag every `holes.rpc/v1` message carries in its `rpc` field;
/// mismatched peers are rejected before any payload is interpreted.
pub const RPC_FORMAT: &str = "holes.rpc/v1";

/// A worker-to-coordinator message (one per connection).
#[derive(Debug)]
pub enum Request {
    /// Ask for a shard lease.
    Lease {
        /// Self-chosen worker label, used only for coordinator logs.
        worker: String,
    },
    /// Extend the deadline of a held lease.
    Heartbeat {
        /// The lease being kept alive.
        lease: u64,
    },
    /// Submit the completed shard evaluated under a lease.
    Result {
        /// The lease the shard was evaluated under.
        lease: u64,
        /// The completed shard as a revalidated `holes.campaign/v1` document.
        shard: Box<CampaignShard>,
    },
}

/// A coordinator-to-worker message (one per connection).
#[derive(Debug)]
pub enum Reply {
    /// A shard lease: evaluate `spec`, heartbeat every `heartbeat_ms`.
    Lease {
        /// Lease identifier to present in heartbeats and the result.
        lease: u64,
        /// The shard to evaluate.
        spec: CampaignSpec,
        /// Heartbeat cadence the worker must sustain to keep the lease.
        heartbeat_ms: u64,
    },
    /// Nothing assignable right now; ask again after `backoff_ms`.
    Wait {
        /// How long the worker should sleep before the next lease request.
        backoff_ms: u64,
    },
    /// The campaign is over (complete, or draining): the worker should exit.
    Shutdown,
    /// Heartbeat acknowledgement; `active: false` means the lease was
    /// revoked and the work in flight will be discarded on submission.
    Heartbeat {
        /// Whether the lease is still held by this worker.
        active: bool,
    },
    /// The submitted shard was accepted and journaled.
    Accepted,
    /// The submitted shard was ignored (revoked lease, duplicate, or a
    /// result that does not match the leased spec). Not an error: discards
    /// are how preemption stays invisible in the merged report.
    Discarded {
        /// Why the result was dropped.
        reason: String,
    },
    /// The request itself was unintelligible or arrived at a broken moment.
    Error {
        /// What the coordinator objected to.
        message: String,
    },
}

impl Request {
    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("rpc".to_owned(), Json::str(RPC_FORMAT))];
        match self {
            Request::Lease { worker } => {
                pairs.push(("req".to_owned(), Json::str("lease")));
                pairs.push(("worker".to_owned(), Json::str(worker)));
            }
            Request::Heartbeat { lease } => {
                pairs.push(("req".to_owned(), Json::str("heartbeat")));
                pairs.push(("lease".to_owned(), Json::from_u64(*lease)));
            }
            Request::Result { lease, shard } => {
                pairs.push(("req".to_owned(), Json::str("result")));
                pairs.push(("lease".to_owned(), Json::from_u64(*lease)));
                pairs.push(("shard".to_owned(), shard.to_json()));
            }
        }
        Json::Obj(pairs)
    }

    /// Parse and validate a request; embedded shards go through the full
    /// `holes.campaign/v1` validator.
    pub fn from_json(json: &Json) -> Result<Request, ServeError> {
        check_version(json)?;
        match str_field(json, "req")? {
            "lease" => Ok(Request::Lease {
                worker: str_field(json, "worker")?.to_owned(),
            }),
            "heartbeat" => Ok(Request::Heartbeat {
                lease: u64_field(json, "lease")?,
            }),
            "result" => {
                let shard = json
                    .get("shard")
                    .ok_or_else(|| missing("shard"))
                    .and_then(|s| CampaignShard::from_json(s).map_err(ServeError::from))?;
                Ok(Request::Result {
                    lease: u64_field(json, "lease")?,
                    shard: Box::new(shard),
                })
            }
            other => Err(ServeError::Protocol(format!("unknown request `{other}`"))),
        }
    }
}

impl Reply {
    /// Serialize for the wire.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![("rpc".to_owned(), Json::str(RPC_FORMAT))];
        match self {
            Reply::Lease {
                lease,
                spec,
                heartbeat_ms,
            } => {
                pairs.push(("reply".to_owned(), Json::str("lease")));
                pairs.push(("lease".to_owned(), Json::from_u64(*lease)));
                pairs.push(("heartbeat_ms".to_owned(), Json::from_u64(*heartbeat_ms)));
                pairs.push((
                    "spec".to_owned(),
                    Json::Obj(spec_header_pairs(spec, RPC_FORMAT)),
                ));
            }
            Reply::Wait { backoff_ms } => {
                pairs.push(("reply".to_owned(), Json::str("wait")));
                pairs.push(("backoff_ms".to_owned(), Json::from_u64(*backoff_ms)));
            }
            Reply::Shutdown => pairs.push(("reply".to_owned(), Json::str("shutdown"))),
            Reply::Heartbeat { active } => {
                pairs.push(("reply".to_owned(), Json::str("heartbeat")));
                pairs.push(("active".to_owned(), Json::Bool(*active)));
            }
            Reply::Accepted => pairs.push(("reply".to_owned(), Json::str("accepted"))),
            Reply::Discarded { reason } => {
                pairs.push(("reply".to_owned(), Json::str("discarded")));
                pairs.push(("reason".to_owned(), Json::str(reason)));
            }
            Reply::Error { message } => {
                pairs.push(("reply".to_owned(), Json::str("error")));
                pairs.push(("message".to_owned(), Json::str(message)));
            }
        }
        Json::Obj(pairs)
    }

    /// Parse and validate a reply; leased specs are revalidated (identity
    /// fields and level schedule) before the worker evaluates anything.
    pub fn from_json(json: &Json) -> Result<Reply, ServeError> {
        check_version(json)?;
        match str_field(json, "reply")? {
            "lease" => {
                let spec_json = json.get("spec").ok_or_else(|| missing("spec"))?;
                let spec = parse_spec_header(spec_json)?;
                parse_levels(spec_json, spec.personality)?;
                Ok(Reply::Lease {
                    lease: u64_field(json, "lease")?,
                    spec,
                    heartbeat_ms: u64_field(json, "heartbeat_ms")?,
                })
            }
            "wait" => Ok(Reply::Wait {
                backoff_ms: u64_field(json, "backoff_ms")?,
            }),
            "shutdown" => Ok(Reply::Shutdown),
            "heartbeat" => Ok(Reply::Heartbeat {
                active: json
                    .get("active")
                    .and_then(Json::as_bool)
                    .ok_or_else(|| missing("active"))?,
            }),
            "accepted" => Ok(Reply::Accepted),
            "discarded" => Ok(Reply::Discarded {
                reason: str_field(json, "reason")?.to_owned(),
            }),
            "error" => Ok(Reply::Error {
                message: str_field(json, "message")?.to_owned(),
            }),
            other => Err(ServeError::Protocol(format!("unknown reply `{other}`"))),
        }
    }
}

/// Write one message as a single compact JSON line and flush it — the
/// whole of a peer's half of an exchange.
pub fn write_message<W: Write>(out: &mut W, message: &Json) -> Result<(), ServeError> {
    out.write_all(message.to_compact().as_bytes())?;
    out.write_all(b"\n")?;
    out.flush()?;
    Ok(())
}

/// The longest message line [`read_message`] will buffer. Far beyond any
/// legitimate shard result, but finite: a corrupt or malicious peer
/// streaming an endless line must cost the coordinator at most this much
/// memory, never an OOM.
pub const MAX_MESSAGE_BYTES: usize = 64 * 1024 * 1024;

/// Read one message line. A peer that closes the socket before completing
/// its line (a killed worker, a torn write) is a protocol error the caller
/// can log and drop — never a crash; so is a line longer than
/// [`MAX_MESSAGE_BYTES`].
pub fn read_message<R: BufRead>(input: &mut R) -> Result<Json, ServeError> {
    read_message_with_limit(input, MAX_MESSAGE_BYTES)
}

/// [`read_message`] under an explicit line-length cap (exposed so the cap
/// logic is testable without allocating 64 MiB).
pub fn read_message_with_limit<R: BufRead>(
    input: &mut R,
    max_bytes: usize,
) -> Result<Json, ServeError> {
    let mut line = String::new();
    // `take` bounds what one message may pull into memory; two extra bytes
    // leave room for a `\r\n` terminator on a line whose *content* sits
    // exactly at the cap — the cap governs the message, not its framing.
    if input
        .by_ref()
        .take(max_bytes as u64 + 2)
        .read_line(&mut line)?
        == 0
    {
        return Err(ServeError::Protocol(
            "peer closed the connection before sending a message".into(),
        ));
    }
    let content = line.trim_end_matches(['\n', '\r']);
    if content.len() > max_bytes {
        return Err(ServeError::Protocol(format!(
            "message line exceeds the {max_bytes}-byte cap"
        )));
    }
    Json::parse(content).map_err(|e| ServeError::Protocol(format!("malformed message: {e}")))
}

/// Open a TCP connection to `addr` with `timeout` bounding the connect
/// *and* installed as the stream's read and write timeouts — the one
/// transport opener every `holes.rpc/v1` and `holes.cache-rpc/v1` client
/// path uses, so a stalled or black-holed peer always surfaces as the same
/// retriable [`ServeError::Io`] within a bounded wait.
pub fn connect_with_timeout(
    addr: &str,
    timeout: std::time::Duration,
) -> Result<std::net::TcpStream, ServeError> {
    use std::net::ToSocketAddrs;
    let mut last = None;
    for resolved in addr.to_socket_addrs()? {
        match std::net::TcpStream::connect_timeout(&resolved, timeout) {
            Ok(stream) => {
                stream.set_read_timeout(Some(timeout))?;
                stream.set_write_timeout(Some(timeout))?;
                return Ok(stream);
            }
            Err(error) => last = Some(error),
        }
    }
    Err(ServeError::Io(last.unwrap_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            format!("`{addr}` resolved to no addresses"),
        )
    })))
}

fn check_version(json: &Json) -> Result<(), ServeError> {
    match json.get("rpc").and_then(Json::as_str) {
        Some(RPC_FORMAT) => Ok(()),
        Some(other) => Err(ServeError::Protocol(format!(
            "unsupported rpc version `{other}` (this build speaks `{RPC_FORMAT}`)"
        ))),
        None => Err(ServeError::Protocol(
            "message carries no `rpc` version tag".into(),
        )),
    }
}

pub(crate) fn missing(key: &str) -> ServeError {
    ServeError::Protocol(format!("missing field `{key}`"))
}

pub(crate) fn str_field<'a>(json: &'a Json, key: &str) -> Result<&'a str, ServeError> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| missing(key))
}

fn u64_field(json: &Json, key: &str) -> Result<u64, ServeError> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| missing(key))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::run_shard;
    use holes_compiler::Personality;
    use holes_progen::SeedRange;

    fn spec() -> CampaignSpec {
        CampaignSpec::new(
            Personality::Ccg,
            Personality::Ccg.trunk(),
            SeedRange::new(2600, 2603),
        )
        .with_shard(2, 1)
    }

    #[test]
    fn requests_survive_a_wire_round_trip() {
        let shard = run_shard(&spec()).expect("shard evaluates");
        let requests = vec![
            Request::Lease {
                worker: "w1".into(),
            },
            Request::Heartbeat { lease: 7 },
            Request::Result {
                lease: 7,
                shard: Box::new(shard),
            },
        ];
        for request in requests {
            let line = request.to_json().to_compact();
            let parsed = Json::parse(&line).expect("wire line parses");
            let back = Request::from_json(&parsed).expect("request round-trips");
            assert_eq!(back.to_json().to_compact(), line);
        }
    }

    #[test]
    fn replies_survive_a_wire_round_trip() {
        let replies = vec![
            Reply::Lease {
                lease: 3,
                spec: spec(),
                heartbeat_ms: 250,
            },
            Reply::Wait { backoff_ms: 125 },
            Reply::Shutdown,
            Reply::Heartbeat { active: false },
            Reply::Accepted,
            Reply::Discarded {
                reason: "lease 3 is not active".into(),
            },
            Reply::Error {
                message: "malformed message".into(),
            },
        ];
        for reply in replies {
            let line = reply.to_json().to_compact();
            let parsed = Json::parse(&line).expect("wire line parses");
            let back = Reply::from_json(&parsed).expect("reply round-trips");
            assert_eq!(back.to_json().to_compact(), line);
        }
    }

    #[test]
    fn oversized_message_lines_are_a_clean_protocol_error() {
        // Under the cap: parses normally.
        let fine = b"{\"rpc\":\"holes.rpc/v1\"}\n";
        let parsed = read_message_with_limit(&mut &fine[..], 64).expect("small line parses");
        assert_eq!(parsed.get("rpc").and_then(Json::as_str), Some(RPC_FORMAT));

        // Over the cap: a clean ServeError naming the limit, not an OOM —
        // and the reader must not have buffered the whole line to decide.
        let mut oversized = vec![b'{'; 100];
        oversized.push(b'\n');
        let error = read_message_with_limit(&mut &oversized[..], 64).expect_err("capped");
        assert!(
            error.to_string().contains("64-byte cap"),
            "error names the cap: {error}"
        );

        // A line that *ends* within the cap is unaffected by junk after it.
        let mut stream = Vec::new();
        stream.extend_from_slice(b"{\"rpc\":\"holes.rpc/v1\"}\n");
        stream.extend_from_slice(&[b'x'; 100]);
        let parsed = read_message_with_limit(&mut &stream[..], 64).expect("first line parses");
        assert_eq!(parsed.get("rpc").and_then(Json::as_str), Some(RPC_FORMAT));

        // Content exactly at the cap is accepted: the cap bounds the
        // message, and the line terminator (`\n` or `\r\n`) rides free.
        let content = b"{\"rpc\":\"holes.rpc/v1\"}";
        for terminator in [&b"\n"[..], &b"\r\n"[..]] {
            let mut exact = content.to_vec();
            exact.extend_from_slice(terminator);
            let parsed = read_message_with_limit(&mut &exact[..], content.len())
                .expect("content exactly at the cap parses");
            assert_eq!(parsed.get("rpc").and_then(Json::as_str), Some(RPC_FORMAT));
        }
        // ...but one content byte over it is still rejected.
        let mut over = content.to_vec();
        over.extend_from_slice(b"\n");
        assert!(read_message_with_limit(&mut &over[..], content.len() - 1).is_err());
    }

    #[test]
    fn foreign_versions_and_tampered_shards_are_rejected() {
        let message = Json::parse(r#"{"rpc":"holes.rpc/v2","req":"lease","worker":"w"}"#)
            .expect("line parses");
        let rejection = Request::from_json(&message).expect_err("foreign version");
        assert!(
            rejection.to_string().contains("holes.rpc/v2"),
            "rejection names the offered version: {rejection}"
        );

        let noversion = Json::parse(r#"{"req":"lease","worker":"w"}"#).expect("line parses");
        assert!(
            Request::from_json(&noversion).is_err(),
            "missing version tag rejected"
        );

        // A result whose embedded shard was tampered with (claiming a wider
        // seed range than was evaluated) must fail the full campaign
        // validator, not sneak into the merge.
        let shard = run_shard(&spec()).expect("shard evaluates");
        let wire = Request::Result {
            lease: 1,
            shard: Box::new(shard),
        }
        .to_json();
        let tampered = wire
            .to_compact()
            .replace("\"seeds\":\"2600..2603\"", "\"seeds\":\"2600..2605\"");
        let reparsed = Json::parse(&tampered).expect("tampered line still parses");
        assert!(
            Request::from_json(&reparsed).is_err(),
            "tampered shard rejected"
        );
    }
}
