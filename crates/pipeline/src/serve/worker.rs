//! The worker loop: lease, evaluate, heartbeat, submit — built to be
//! killed.
//!
//! A worker writes every leased shard through
//! [`resume_shard_streaming`] into a work-directory file whose name is
//! derived from the campaign header, so a worker restarted after `kill -9`
//! (or re-leasing a shard it lost to preemption) pays only for the
//! unfinished suffix of the stream. Heartbeats run on a side thread while
//! the shard evaluates; a coordinator that answers `active: false` is
//! telling the worker its result will be discarded, but the worker submits
//! anyway — discards are free, and the shard file stays behind to make the
//! next lease of that shard cheap.
//!
//! Workers are cattle: a coordinator that stays unreachable past the
//! configured patience ends the worker cleanly (the campaign is someone
//! else's problem to finish), while protocol violations are hard errors.

use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use holes_core::json::Json;

use super::chaos;
use super::lease::GRACE_BEATS;
use super::protocol::{connect_with_timeout, read_message, write_message, Reply, Request};
use super::ServeError;
use crate::cache::CacheStats;
use crate::fault::FaultPolicy;
use crate::shard::{spec_header_pairs, CampaignSpec};
use crate::stream::{read_jsonl_shard, resume_shard_streaming, CAMPAIGN_JSONL_FORMAT};

/// Worker configuration.
#[derive(Debug)]
pub struct WorkerConfig {
    /// Coordinator address, `host:port`.
    pub connect: String,
    /// Directory for in-progress shard streams. Stable across restarts —
    /// that is what makes `kill -9` recovery cheap.
    pub work_dir: PathBuf,
    /// Fault containment policy for shard evaluation.
    pub policy: FaultPolicy,
    /// Label this worker presents to the coordinator (logs only).
    pub worker_id: String,
    /// How long to keep retrying an unreachable coordinator (which may be
    /// restarting from its journal) before giving up.
    pub patience: Duration,
    /// Suppress progress lines on stderr.
    pub quiet: bool,
}

/// What one worker did over its lifetime.
#[derive(Debug, Default)]
pub struct WorkerOutcome {
    /// Leases granted to this worker.
    pub leases: usize,
    /// Results the coordinator accepted.
    pub accepted: usize,
    /// Results the coordinator discarded (revoked or duplicate leases).
    pub discarded: usize,
    /// Subjects re-evaluated when resuming partially evaluated shard files.
    pub resumed_subjects: usize,
    /// Aggregate pipeline cache statistics across every leased shard —
    /// the fleet's warm-cache proof reads `stats.compiles` here.
    pub stats: CacheStats,
}

/// Run the worker loop until the coordinator says [`Reply::Shutdown`] or
/// becomes unreachable past the configured patience.
pub fn run_worker(config: &WorkerConfig) -> Result<WorkerOutcome, ServeError> {
    std::fs::create_dir_all(&config.work_dir)?;
    let mut outcome = WorkerOutcome::default();
    loop {
        let request = Request::Lease {
            worker: config.worker_id.clone(),
        };
        let reply = match rpc(config, &request) {
            Ok(reply) => reply,
            Err(error) => {
                log(
                    config,
                    &format!("coordinator unreachable ({error}); shutting down"),
                );
                break;
            }
        };
        match reply {
            Reply::Shutdown => {
                log(
                    config,
                    "coordinator says the campaign is over; shutting down",
                );
                break;
            }
            Reply::Wait { backoff_ms } => {
                std::thread::sleep(Duration::from_millis(backoff_ms.clamp(1, 5_000)));
            }
            Reply::Lease {
                lease,
                spec,
                heartbeat_ms,
            } => {
                outcome.leases += 1;
                run_lease(config, &mut outcome, lease, &spec, heartbeat_ms)?;
            }
            Reply::Error { message } => {
                return Err(ServeError::Protocol(format!(
                    "coordinator rejected the lease request: {message}"
                )));
            }
            other => {
                return Err(ServeError::Protocol(format!(
                    "unexpected reply to a lease request: {other:?}"
                )));
            }
        }
    }
    Ok(outcome)
}

fn run_lease(
    config: &WorkerConfig,
    outcome: &mut WorkerOutcome,
    lease: u64,
    spec: &CampaignSpec,
    heartbeat_ms: u64,
) -> Result<(), ServeError> {
    let preempted = chaos::preempt_this_lease();
    let stop = Arc::new(AtomicBool::new(false));
    let heart = (!preempted).then(|| {
        let stop = Arc::clone(&stop);
        let connect = config.connect.clone();
        let quiet = config.quiet;
        std::thread::spawn(move || heartbeat_loop(&connect, lease, heartbeat_ms, &stop, quiet))
    });

    let path = shard_file(&config.work_dir, spec);
    let evaluated = resume_shard_streaming(spec, &path, &config.policy);
    stop.store(true, Ordering::SeqCst);
    if let Some(heart) = heart {
        let _ = heart.join();
    }
    let evaluated = match evaluated {
        Ok(evaluated) => evaluated,
        Err(error) => {
            // A failed evaluation (full disk, a poisoned resume file) is the
            // shard's problem, not the worker's: clear the stream so the next
            // attempt starts clean, let the lease expire and requeue.
            log(
                config,
                &format!("lease {lease}: shard evaluation failed: {error}"),
            );
            let _ = std::fs::remove_file(&path);
            return Ok(());
        }
    };
    outcome.resumed_subjects += evaluated.resumed_subjects;
    outcome.stats.absorb(evaluated.stats);
    if evaluated.already_complete {
        log(
            config,
            &format!("lease {lease}: shard already complete on disk; resubmitting"),
        );
    }

    if preempted {
        // Chaos: the coordinator heard no heartbeats for this lease; sleep
        // past the grace window so it is revoked for sure, then submit the
        // stale result and let the idempotent discard prove itself.
        log(
            config,
            &format!("lease {lease}: chaos preemption — withholding heartbeats past the deadline"),
        );
        std::thread::sleep(Duration::from_millis(
            heartbeat_ms.max(1) * (GRACE_BEATS as u64 + 2),
        ));
    }

    let text = std::fs::read_to_string(&path)?;
    let shard = read_jsonl_shard(&text)?;
    let request = Request::Result {
        lease,
        shard: Box::new(shard),
    };
    let reply = match rpc(config, &request) {
        Ok(reply) => reply,
        Err(error) => {
            // The result is safe on disk; a future lease of this shard (by
            // us or a sibling) resumes it for free.
            log(
                config,
                &format!(
                    "lease {lease}: could not deliver the result ({error}); keeping {}",
                    path.display()
                ),
            );
            return Ok(());
        }
    };
    match reply {
        Reply::Accepted => {
            outcome.accepted += 1;
            log(config, &format!("lease {lease}: result accepted"));
            let _ = std::fs::remove_file(&path);
        }
        Reply::Discarded { reason } => {
            outcome.discarded += 1;
            log(
                config,
                &format!("lease {lease}: result discarded ({reason})"),
            );
        }
        Reply::Error { message } => {
            return Err(ServeError::Protocol(format!(
                "coordinator rejected the result: {message}"
            )));
        }
        other => {
            return Err(ServeError::Protocol(format!(
                "unexpected reply to a result: {other:?}"
            )));
        }
    }
    Ok(())
}

/// The stable on-disk name for a shard's stream: shard coordinates plus a
/// hash of the exact stream header, so a work directory can serve several
/// campaigns without a resume ever being refused over a foreign header.
fn shard_file(work_dir: &Path, spec: &CampaignSpec) -> PathBuf {
    let header = Json::Obj(spec_header_pairs(spec, CAMPAIGN_JSONL_FORMAT)).to_compact();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in header.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    work_dir.join(format!(
        "shard-{:04}-of-{:04}-{hash:016x}.jsonl",
        spec.shard, spec.shards
    ))
}

fn heartbeat_loop(connect: &str, lease: u64, heartbeat_ms: u64, stop: &AtomicBool, quiet: bool) {
    let period = Duration::from_millis(heartbeat_ms.max(1));
    while !stop.load(Ordering::SeqCst) {
        match heartbeat_once(connect, lease) {
            Ok(true) => {}
            Ok(false) => {
                if !quiet {
                    eprintln!("work: lease {lease}: revoked by the coordinator");
                }
                return;
            }
            // Transient trouble: the grace window exists exactly to absorb
            // a few missed beats (or a coordinator mid-restart).
            Err(_) => {}
        }
        // Sleep in slices so the stop flag is honored promptly.
        let mut slept = Duration::ZERO;
        while slept < period && !stop.load(Ordering::SeqCst) {
            let slice = Duration::from_millis(20).min(period - slept);
            std::thread::sleep(slice);
            slept += slice;
        }
    }
}

/// Connect/read/write timeout for heartbeat exchanges: short, because a
/// heartbeat that cannot complete quickly is better treated as a missed
/// beat (the grace window absorbs it) than a wedged thread.
const HEARTBEAT_TIMEOUT: Duration = Duration::from_secs(5);

fn heartbeat_once(connect: &str, lease: u64) -> Result<bool, ServeError> {
    let stream = connect_with_timeout(connect, HEARTBEAT_TIMEOUT)?;
    let mut writer = stream.try_clone()?;
    write_message(&mut writer, &Request::Heartbeat { lease }.to_json())?;
    let mut reader = BufReader::new(stream);
    match Reply::from_json(&read_message(&mut reader)?)? {
        Reply::Heartbeat { active } => Ok(active),
        other => Err(ServeError::Protocol(format!(
            "unexpected reply to a heartbeat: {other:?}"
        ))),
    }
}

/// One request, one reply, with connection retries: an unreachable
/// coordinator gets `patience` to come back (it may be restarting from its
/// journal) before the transport error surfaces.
fn rpc(config: &WorkerConfig, request: &Request) -> Result<Reply, ServeError> {
    let deadline = Instant::now() + config.patience;
    let mut delay = Duration::from_millis(50);
    loop {
        match try_rpc(config, request) {
            Ok(reply) => return Ok(reply),
            Err(error) => {
                if Instant::now() + delay >= deadline {
                    return Err(error);
                }
                std::thread::sleep(delay);
                delay = (delay * 2).min(Duration::from_secs(2));
            }
        }
    }
}

/// Connect/write timeout for lease and submit exchanges. Generous —
/// a result line for a large shard takes real time to absorb — but finite:
/// a stalled coordinator surfaces as the same retriable transport error an
/// unreachable one does, and the `rpc` patience loop owns the retry.
const RPC_TIMEOUT: Duration = Duration::from_secs(30);

/// Read timeout for the reply line, which is always small (a lease spec or
/// an acknowledgement). Tighter than [`RPC_TIMEOUT`] so a request that
/// lands in the backlog of a dying coordinator — accepted by the kernel,
/// never served — fails over to the patience loop quickly.
const REPLY_TIMEOUT: Duration = Duration::from_secs(10);

fn try_rpc(config: &WorkerConfig, request: &Request) -> Result<Reply, ServeError> {
    let stream = connect_with_timeout(&config.connect, RPC_TIMEOUT)?;
    stream.set_read_timeout(Some(REPLY_TIMEOUT))?;
    let mut writer = stream.try_clone()?;
    write_message(&mut writer, &request.to_json())?;
    let mut reader = BufReader::new(stream);
    Reply::from_json(&read_message(&mut reader)?)
}

fn log(config: &WorkerConfig, message: &str) {
    if !config.quiet {
        eprintln!("work: {message}");
    }
}
