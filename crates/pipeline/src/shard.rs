//! Sharded campaign runs: the scaling seam for multi-machine fan-out.
//!
//! A campaign over a [`SeedRange`] can be split into `K` shards, each
//! enumerating the seeds of one residue class of the range (see
//! [`SeedRange::shard_seeds`]). Every shard is self-contained — it
//! regenerates its programs from their seeds, so shards share nothing but
//! the [`CampaignSpec`] — and serializes its result to a deterministic JSON
//! file ([`CampaignShard::to_json`]). [`merge_shards`] later folds any
//! complete set of shard runs back into one [`CampaignResult`] that is
//! **byte-identical** to the monolithic run over the whole range: records
//! carry the *global* subject index (`seed - range.start`), per-subject
//! record order is preserved inside a shard, and the merge stably sorts by
//! that index, which is exactly the order the unsharded driver produces.
//!
//! The integration tests and the `holes` CLI's `campaign`/`report`
//! subcommands hold a K-sharded run to this equivalence for every rendered
//! table.

use holes_compiler::{BackendKind, OptLevel, Personality};
use holes_core::json::Json;
use holes_core::{Observed, Violation};
use holes_minic::ast::FunctionId;
use holes_progen::SeedRange;

use crate::campaign::{subject_records, CampaignResult, ViolationRecord};
use crate::fault::{self, FaultPolicy, FaultStage, SubjectFault, SubjectOutcome};
use crate::par;
use crate::Subject;

/// What to run: one personality's campaign over a seed range, as one shard
/// of a (possibly single-shard) partition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignSpec {
    /// The compiler personality under test.
    pub personality: Personality,
    /// Index into [`Personality::version_names`].
    pub version: usize,
    /// The full seed range of the campaign (not just this shard's slice).
    pub seeds: SeedRange,
    /// Total number of shards the range is partitioned into.
    pub shards: u64,
    /// This run's shard index, `0..shards`.
    pub shard: u64,
    /// The backend every subject is compiled for
    /// ([`BackendKind::Reg`] by default). Serialized in shard headers only
    /// when non-default, so register-backend shard files stay byte-identical
    /// to the pre-backend format.
    pub backend: BackendKind,
}

impl CampaignSpec {
    /// A single-shard (monolithic) campaign over a seed range, on the
    /// default register backend.
    pub fn new(personality: Personality, version: usize, seeds: SeedRange) -> CampaignSpec {
        CampaignSpec {
            personality,
            version,
            seeds,
            shards: 1,
            shard: 0,
            backend: BackendKind::Reg,
        }
    }

    /// The same campaign restricted to shard `shard` of `shards`.
    pub fn with_shard(mut self, shards: u64, shard: u64) -> CampaignSpec {
        self.shards = shards;
        self.shard = shard;
        self
    }

    /// The same campaign targeting a different backend.
    pub fn with_backend(mut self, backend: BackendKind) -> CampaignSpec {
        self.backend = backend;
        self
    }

    /// Check the spec's internal consistency (positive shard count, shard
    /// index in range, version index valid for the personality).
    pub fn validate(&self) -> Result<(), ShardError> {
        if self.shards == 0 {
            return Err(ShardError::InvalidSpec(
                "shard count must be positive".into(),
            ));
        }
        if self.shard >= self.shards {
            return Err(ShardError::InvalidSpec(format!(
                "shard index {} out of range for {} shards",
                self.shard, self.shards
            )));
        }
        if self.version >= self.personality.version_names().len() {
            return Err(ShardError::InvalidSpec(format!(
                "version index {} out of range for {}",
                self.version, self.personality
            )));
        }
        Ok(())
    }

    /// The seeds this shard is responsible for, in increasing order.
    pub fn shard_seeds(&self) -> Vec<u64> {
        self.seeds.shard_seeds(self.shards, self.shard).collect()
    }

    /// Whether two specs describe shards of the *same* campaign (everything
    /// but the shard index agrees).
    pub fn same_campaign(&self, other: &CampaignSpec) -> bool {
        self.personality == other.personality
            && self.version == other.version
            && self.seeds == other.seeds
            && self.shards == other.shards
            && self.backend == other.backend
    }
}

/// One completed shard run: the spec plus the violations found on the
/// shard's seeds, with global subject indices.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignShard {
    /// What was run.
    pub spec: CampaignSpec,
    /// The shard's campaign result. `programs` counts only this shard's
    /// seeds; record `subject` fields are global indices into the full
    /// range.
    pub result: CampaignResult,
}

/// Run one shard of a campaign: regenerate the shard's programs from their
/// seeds and test every one at every level of the personality.
///
/// Subjects are generated *and* evaluated in parallel (the per-seed work is
/// independent) and reassembled in seed order, so the result is
/// deterministic for a given spec.
pub fn run_shard(spec: &CampaignSpec) -> Result<CampaignShard, ShardError> {
    run_shard_with_stats(spec).map(|(shard, _)| shard)
}

/// [`run_shard`], additionally returning the evaluation-engine activity
/// aggregated over every subject of the shard (compiles, traces, checks,
/// hits, disk loads) — what the CLI's `--stats` switch reports.
pub fn run_shard_with_stats(
    spec: &CampaignSpec,
) -> Result<(CampaignShard, crate::CacheStats), ShardError> {
    run_shard_with_policy(spec, &FaultPolicy::default())
}

/// [`run_shard_with_stats`] with subject-level fault containment (see
/// [`crate::fault`]): each seed's generation and evaluation runs under
/// [`fault::contain`], so a panicking or (under a fuel limit) runaway
/// subject becomes a [`SubjectFault`] in the shard's result instead of
/// killing the run. On the default policy the shard is byte-identical to
/// [`run_shard_with_stats`].
pub fn run_shard_with_policy(
    spec: &CampaignSpec,
    policy: &FaultPolicy,
) -> Result<(CampaignShard, crate::CacheStats), ShardError> {
    spec.validate()?;
    let levels = spec.personality.levels().to_vec();
    let seeds = spec.shard_seeds();
    let per_seed = par::par_map(&seeds, |_, &seed| {
        let global_index = (seed - spec.seeds.start) as usize;
        fault::contain(policy, seed, global_index, || {
            let subject = Subject::from_seed(seed).with_fuel_limit(policy.fuel_limit);
            let records = subject_records(
                &subject,
                global_index,
                spec.personality,
                spec.version,
                spec.backend,
                &levels,
            );
            (records, subject.cache_stats())
        })
    });
    let mut stats = crate::CacheStats::default();
    let mut records = Vec::new();
    let mut faults = Vec::new();
    for outcome in per_seed {
        match outcome {
            SubjectOutcome::Completed((subject_records, subject_stats)) => {
                stats.absorb(subject_stats);
                records.extend(subject_records);
            }
            SubjectOutcome::Faulted(fault) => faults.push(fault),
        }
    }
    Ok((
        CampaignShard {
            spec: spec.clone(),
            result: CampaignResult {
                records,
                programs: seeds.len(),
                levels,
                faults,
            },
        },
        stats,
    ))
}

/// Merge a complete set of shard runs back into the monolithic
/// [`CampaignResult`] for the full seed range.
///
/// All shards must belong to the same campaign and the shard indices must
/// cover `0..shards` exactly once; the input order does not matter. The
/// merged result — records, tables, Venn distributions — is byte-identical
/// to running the campaign unsharded. Shards are consumed: their records
/// move into the merged result instead of being cloned.
pub fn merge_shards(shards: Vec<CampaignShard>) -> Result<CampaignResult, ShardError> {
    let specs: Vec<CampaignSpec> = shards.iter().map(|s| s.spec.clone()).collect();
    let first_spec = validate_shard_specs(&specs)?;
    // Stable sort by global subject index restores the monolithic record
    // order: within a subject all records live in one shard, already in
    // (level, site) order.
    let mut records: Vec<ViolationRecord> = Vec::new();
    let mut faults: Vec<SubjectFault> = Vec::new();
    for shard in shards {
        records.extend(shard.result.records);
        faults.extend(shard.result.faults);
    }
    records.sort_by_key(|r| r.subject);
    faults.sort_by_key(|f| f.subject);
    Ok(CampaignResult {
        records,
        programs: first_spec.seeds.len() as usize,
        levels: first_spec.personality.levels().to_vec(),
        faults,
    })
}

/// Check that a set of specs forms one complete campaign — every spec
/// valid, all describing the same campaign, and the shard indices covering
/// `0..shards` exactly once — and return the first spec. This is
/// [`merge_shards`]' validation, shared with the streaming `holes report`
/// path (which folds records instead of materializing shards, but must
/// reject exactly the same inputs).
///
/// # Errors
///
/// Returns a [`ShardError`] when the set is empty, inconsistent, or
/// incomplete.
pub fn validate_shard_specs(specs: &[CampaignSpec]) -> Result<CampaignSpec, ShardError> {
    let first_spec = specs
        .first()
        .cloned()
        .ok_or_else(|| ShardError::Incompatible("no shards to merge".into()))?;
    for spec in specs {
        spec.validate()?;
        if !spec.same_campaign(&first_spec) {
            return Err(ShardError::Incompatible(format!(
                "shard {} belongs to a different campaign than shard {}",
                spec.shard, first_spec.shard
            )));
        }
    }
    let mut indices: Vec<u64> = specs.iter().map(|s| s.shard).collect();
    indices.sort_unstable();
    let expected: Vec<u64> = (0..first_spec.shards).collect();
    if indices != expected {
        return Err(ShardError::Incompatible(format!(
            "shard indices {indices:?} do not cover 0..{} exactly once",
            first_spec.shards
        )));
    }
    Ok(first_spec)
}

/// The identifying first line of a campaign shard file.
pub const CAMPAIGN_FORMAT: &str = "holes.campaign/v1";

impl CampaignShard {
    /// Serialize to the deterministic shard-file JSON (see
    /// [`CAMPAIGN_FORMAT`]).
    pub fn to_json(&self) -> Json {
        let mut pairs = spec_header_pairs(&self.spec, CAMPAIGN_FORMAT);
        pairs.push((
            "programs".to_owned(),
            Json::from_usize(self.result.programs),
        ));
        pairs.push((
            "records".to_owned(),
            Json::Arr(self.result.records.iter().map(record_to_json).collect()),
        ));
        // Emitted only when faults occurred, so no-fault shard files stay
        // byte-identical to the pre-containment format.
        if !self.result.faults.is_empty() {
            pairs.push((
                "faults".to_owned(),
                Json::Arr(self.result.faults.iter().map(fault_to_json).collect()),
            ));
        }
        Json::Obj(pairs)
    }

    /// Parse and validate a shard file produced by [`CampaignShard::to_json`].
    ///
    /// Beyond field syntax this checks semantic consistency: the program
    /// count matches the shard's seed slice, and every record's seed belongs
    /// to this shard with the matching global subject index — so a merged
    /// report can trust the records without re-deriving them.
    pub fn from_json(json: &Json) -> Result<CampaignShard, ShardError> {
        let format = str_field(json, "format")?;
        if format != CAMPAIGN_FORMAT {
            return Err(ShardError::Malformed(format!(
                "unsupported format `{format}` (expected `{CAMPAIGN_FORMAT}`)"
            )));
        }
        let spec = parse_spec_header(json)?;
        let personality = spec.personality;
        let levels = parse_levels(json, personality)?;
        let programs = usize_field(json, "programs")?;
        if programs as u64 != spec.seeds.shard_len(spec.shards, spec.shard) {
            return Err(ShardError::Malformed(format!(
                "program count {programs} does not match shard {} of {} over {}",
                spec.shard, spec.shards, spec.seeds
            )));
        }
        let records = json
            .get("records")
            .and_then(Json::as_arr)
            .ok_or_else(|| ShardError::Malformed("missing `records` array".into()))?
            .iter()
            .enumerate()
            .map(|(index, record)| {
                record_from_json(record, &spec).map_err(|error| error.for_record(index))
            })
            .collect::<Result<Vec<_>, _>>()?;
        validate_record_order(&records, &spec)?;
        let faults = match json.get("faults") {
            None => Vec::new(),
            Some(value) => value
                .as_arr()
                .ok_or_else(|| ShardError::Malformed("`faults` is not an array".into()))?
                .iter()
                .enumerate()
                .map(|(index, fault)| {
                    fault_from_json(fault, &spec)
                        .map_err(|error| error.contextualize(&format!("fault {index}")))
                })
                .collect::<Result<Vec<_>, _>>()?,
        };
        Ok(CampaignShard {
            spec,
            result: CampaignResult {
                records,
                programs,
                levels,
                faults,
            },
        })
    }
}

/// Enforce the canonical record order the drivers emit: ascending subject,
/// then level in schedule order, then the sorted, deduplicated violation
/// list of `check_all`. Strict ascent rejects duplicated, reordered, or
/// injected records that would otherwise pass the per-record checks and
/// silently inflate merged tables. Shared by the `holes.campaign/v1` parser
/// and the JSON Lines reader ([`crate::stream`]).
pub(crate) fn validate_record_order(
    records: &[ViolationRecord],
    spec: &CampaignSpec,
) -> Result<(), ShardError> {
    for (index, pair) in records.windows(2).enumerate() {
        check_record_order(index, &pair[0], &pair[1], spec)?;
    }
    Ok(())
}

/// The pairwise step of [`validate_record_order`]: record `index + 1` must
/// sort strictly after record `index`. Streaming readers call this with
/// only the previous record in hand, so a million-record stream is order-
/// checked with O(1) memory.
pub(crate) fn check_record_order(
    index: usize,
    a: &ViolationRecord,
    b: &ViolationRecord,
    spec: &CampaignSpec,
) -> Result<(), ShardError> {
    let level_index = |level: OptLevel| {
        spec.personality
            .levels()
            .iter()
            .position(|&l| l == level)
            .expect("level membership checked per record")
    };
    if (a.subject, level_index(a.level), &a.violation)
        >= (b.subject, level_index(b.level), &b.violation)
    {
        return Err(ShardError::Malformed(format!(
            "records {} and {} are not in canonical campaign order (subject {} {} `{}` \
             line {} followed by subject {} {} `{}` line {})",
            index,
            index + 1,
            a.subject,
            a.level,
            a.violation.variable,
            a.violation.line,
            b.subject,
            b.level,
            b.violation.variable,
            b.violation.line,
        )));
    }
    Ok(())
}

/// The header fields both shard formats share, in canonical order: format
/// tag, spec identity, and the personality's level schedule.
pub(crate) fn spec_header_pairs(spec: &CampaignSpec, format: &str) -> Vec<(String, Json)> {
    let mut pairs = vec![
        ("format".to_owned(), Json::str(format)),
        ("personality".to_owned(), Json::str(spec.personality.name())),
        (
            "compiler_version".to_owned(),
            Json::str(spec.personality.version_names()[spec.version]),
        ),
        ("seeds".to_owned(), Json::str(spec.seeds.to_string())),
        ("shards".to_owned(), Json::from_u64(spec.shards)),
        ("shard".to_owned(), Json::from_u64(spec.shard)),
    ];
    // Emitted only when non-default, so register-backend shard files remain
    // byte-identical to the pre-backend format (and old readers keep
    // accepting them).
    if spec.backend != BackendKind::Reg {
        pairs.push(("backend".to_owned(), Json::str(spec.backend.name())));
    }
    pairs.push((
        "levels".to_owned(),
        Json::Arr(
            spec.personality
                .levels()
                .iter()
                .map(|l| Json::str(l.flag()))
                .collect(),
        ),
    ));
    pairs
}

/// Parse and validate the spec fields shared by both shard-file headers
/// (`personality`, `compiler_version`, `seeds`, `shards`, `shard`).
pub(crate) fn parse_spec_header(json: &Json) -> Result<CampaignSpec, ShardError> {
    let personality: Personality = parse_field(json, "personality")?;
    let version_name = str_field(json, "compiler_version")?;
    let version = personality.version_index(version_name).ok_or_else(|| {
        ShardError::Malformed(format!("unknown {personality} version `{version_name}`"))
    })?;
    let seeds: SeedRange = parse_field(json, "seeds")?;
    let backend = match json.get("backend") {
        None => BackendKind::Reg,
        Some(value) => value
            .as_str()
            .and_then(|name| name.parse().ok())
            .ok_or_else(|| ShardError::Malformed("malformed field `backend`".into()))?,
    };
    let spec = CampaignSpec {
        personality,
        version,
        seeds,
        shards: u64_field(json, "shards")?,
        shard: u64_field(json, "shard")?,
        backend,
    };
    spec.validate()?;
    Ok(spec)
}

/// Parse the `levels` array of a shard header and check it against the
/// personality's schedule — shared by the `holes.campaign/v1` parser and
/// the JSON Lines reader.
pub(crate) fn parse_levels(
    json: &Json,
    personality: Personality,
) -> Result<Vec<OptLevel>, ShardError> {
    let levels: Vec<OptLevel> = json
        .get("levels")
        .and_then(Json::as_arr)
        .ok_or_else(|| ShardError::Malformed("missing `levels` array".into()))?
        .iter()
        .map(|l| {
            l.as_str()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| ShardError::Malformed("malformed optimization level".into()))
        })
        .collect::<Result<_, _>>()?;
    if levels != personality.levels() {
        return Err(ShardError::Malformed(format!(
            "levels {levels:?} do not match the {personality} personality"
        )));
    }
    Ok(levels)
}

/// Serialize one violation record — the schema shared by `holes.campaign/v1`
/// shard files and the JSON Lines stream ([`crate::stream`]).
pub(crate) fn record_to_json(record: &ViolationRecord) -> Json {
    Json::Obj(vec![
        ("seed".to_owned(), Json::from_u64(record.seed)),
        ("subject".to_owned(), Json::from_usize(record.subject)),
        ("level".to_owned(), Json::str(record.level.flag())),
        (
            "conjecture".to_owned(),
            Json::str(record.violation.conjecture.to_string()),
        ),
        (
            "line".to_owned(),
            Json::from_u64(record.violation.line.into()),
        ),
        (
            "variable".to_owned(),
            Json::str(record.violation.variable.as_ref()),
        ),
        (
            "function".to_owned(),
            Json::from_usize(record.violation.function.0),
        ),
        (
            "observed".to_owned(),
            Json::str(record.violation.observed.name()),
        ),
    ])
}

/// Parse and validate one violation record against its shard's spec (see
/// [`record_to_json`]).
pub(crate) fn record_from_json(
    json: &Json,
    spec: &CampaignSpec,
) -> Result<ViolationRecord, ShardError> {
    let seed = u64_field(json, "seed")?;
    let subject = usize_field(json, "subject")?;
    if !spec.seeds.contains(seed) || (seed - spec.seeds.start) % spec.shards != spec.shard {
        return Err(ShardError::Malformed(format!(
            "record seed {seed} does not belong to shard {} of {} over {}",
            spec.shard, spec.shards, spec.seeds
        )));
    }
    if subject as u64 != seed - spec.seeds.start {
        return Err(ShardError::Malformed(format!(
            "record subject index {subject} does not match seed {seed}"
        )));
    }
    let level: OptLevel = parse_field(json, "level")?;
    if !spec.personality.levels().contains(&level) {
        return Err(ShardError::Malformed(format!(
            "level {level} is not evaluated by the {} personality",
            spec.personality
        )));
    }
    let observed: Observed = parse_field(json, "observed")?;
    Ok(ViolationRecord {
        seed,
        subject,
        level,
        violation: Violation {
            conjecture: parse_field(json, "conjecture")?,
            line: u64_field(json, "line")?
                .try_into()
                .map_err(|_| ShardError::Malformed("line number out of range".into()))?,
            variable: str_field(json, "variable")?.into(),
            function: FunctionId(usize_field(json, "function")?),
            observed,
        },
    })
}

/// Serialize one contained subject fault — the schema shared by the
/// `faults` array of `holes.campaign/v1` shard files and the fault lines of
/// the JSON Lines stream ([`crate::stream`]). The `fault` key doubles as
/// the line discriminator: records never carry it.
pub(crate) fn fault_to_json(fault: &SubjectFault) -> Json {
    Json::Obj(vec![
        ("fault".to_owned(), Json::str(fault.stage.name())),
        ("seed".to_owned(), Json::from_u64(fault.seed)),
        ("subject".to_owned(), Json::from_usize(fault.subject)),
        ("cause".to_owned(), Json::str(&fault.cause)),
    ])
}

/// Parse and validate one fault entry against its shard's spec (see
/// [`fault_to_json`]).
pub(crate) fn fault_from_json(
    json: &Json,
    spec: &CampaignSpec,
) -> Result<SubjectFault, ShardError> {
    let stage: FaultStage = parse_field(json, "fault")?;
    let seed = u64_field(json, "seed")?;
    let subject = usize_field(json, "subject")?;
    if !spec.seeds.contains(seed) || (seed - spec.seeds.start) % spec.shards != spec.shard {
        return Err(ShardError::Malformed(format!(
            "fault seed {seed} does not belong to shard {} of {} over {}",
            spec.shard, spec.shards, spec.seeds
        )));
    }
    if subject as u64 != seed - spec.seeds.start {
        return Err(ShardError::Malformed(format!(
            "fault subject index {subject} does not match seed {seed}"
        )));
    }
    Ok(SubjectFault {
        seed,
        subject,
        stage,
        cause: str_field(json, "cause")?.to_owned(),
    })
}

fn str_field<'a>(json: &'a Json, key: &str) -> Result<&'a str, ShardError> {
    json.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| ShardError::Malformed(format!("missing or non-string field `{key}`")))
}

fn u64_field(json: &Json, key: &str) -> Result<u64, ShardError> {
    json.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| ShardError::Malformed(format!("missing or non-integer field `{key}`")))
}

fn usize_field(json: &Json, key: &str) -> Result<usize, ShardError> {
    json.get(key)
        .and_then(Json::as_usize)
        .ok_or_else(|| ShardError::Malformed(format!("missing or non-integer field `{key}`")))
}

fn parse_field<T: std::str::FromStr>(json: &Json, key: &str) -> Result<T, ShardError> {
    str_field(json, key)?
        .parse()
        .map_err(|_| ShardError::Malformed(format!("malformed field `{key}`")))
}

/// Why a shard run, file, or merge was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A [`CampaignSpec`] is internally inconsistent.
    InvalidSpec(String),
    /// A shard file does not follow the [`CAMPAIGN_FORMAT`] schema or
    /// contradicts its own spec.
    Malformed(String),
    /// Shards passed to [`merge_shards`] do not form one complete campaign.
    Incompatible(String),
}

impl ShardError {
    /// The same error with the offending record's index (and, when known,
    /// source line) prepended — so a bad byte in a million-record file is
    /// reported as *which record*, not just *what was wrong*.
    pub(crate) fn for_record(self, index: usize) -> ShardError {
        self.contextualize(&format!("record {index}"))
    }

    /// The same error with an arbitrary location prefix.
    pub(crate) fn contextualize(self, context: &str) -> ShardError {
        match self {
            ShardError::InvalidSpec(m) => ShardError::InvalidSpec(format!("{context}: {m}")),
            ShardError::Malformed(m) => ShardError::Malformed(format!("{context}: {m}")),
            ShardError::Incompatible(m) => ShardError::Incompatible(format!("{context}: {m}")),
        }
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::InvalidSpec(m) => write!(f, "invalid campaign spec: {m}"),
            ShardError::Malformed(m) => write!(f, "malformed shard file: {m}"),
            ShardError::Incompatible(m) => write!(f, "incompatible shards: {m}"),
        }
    }
}

impl std::error::Error for ShardError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::subject_pool;

    fn spec(range: SeedRange) -> CampaignSpec {
        CampaignSpec::new(Personality::Ccg, Personality::Ccg.trunk(), range)
    }

    #[test]
    fn single_shard_run_equals_the_pool_campaign() {
        let range = SeedRange::new(2000, 2008);
        let sharded = run_shard(&spec(range)).unwrap();
        let subjects = subject_pool(range.start, range.len() as usize);
        let monolithic = run_campaign(&subjects, Personality::Ccg, Personality::Ccg.trunk());
        assert_eq!(sharded.result.records, monolithic.records);
        assert_eq!(sharded.result.table1(), monolithic.table1());
    }

    #[test]
    fn merged_shards_are_byte_identical_to_the_monolithic_run() {
        let range = SeedRange::new(2100, 2116);
        let monolithic = run_shard(&spec(range)).unwrap();
        for shards in [2u64, 3, 5] {
            let runs: Vec<CampaignShard> = (0..shards)
                .map(|i| run_shard(&spec(range).with_shard(shards, i)).unwrap())
                .collect();
            // Merge in scrambled input order to show order does not matter.
            let mut scrambled = runs.clone();
            scrambled.reverse();
            let merged = merge_shards(scrambled).unwrap();
            assert_eq!(merged.records, monolithic.result.records, "K={shards}");
            assert_eq!(merged.table1(), monolithic.result.table1());
            assert_eq!(merged.venn(), monolithic.result.venn());
            assert_eq!(merged.programs, range.len() as usize);
        }
    }

    #[test]
    fn shard_files_round_trip_through_json() {
        let range = SeedRange::new(2200, 2206);
        let run = run_shard(&spec(range).with_shard(2, 1)).unwrap();
        let rendered = run.to_json().to_pretty();
        let reparsed = CampaignShard::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(reparsed, run);
        // Serialization is deterministic.
        assert_eq!(reparsed.to_json().to_pretty(), rendered);
    }

    #[test]
    fn from_json_rejects_tampered_files() {
        let range = SeedRange::new(2300, 2304);
        let run = run_shard(&spec(range)).unwrap();
        let good = run.to_json().to_pretty();
        for (needle, replacement) in [
            ("holes.campaign/v1", "holes.campaign/v0"),
            ("\"ccg\"", "\"gcc\""),
            (
                "\"compiler_version\": \"trunk\"",
                "\"compiler_version\": \"99\"",
            ),
            ("\"seeds\": \"2300..2304\"", "\"seeds\": \"2304..2300\""),
            ("\"programs\": 4", "\"programs\": 5"),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(bad, good, "replacement `{needle}` did not apply");
            let parsed = Json::parse(&bad).unwrap();
            assert!(
                CampaignShard::from_json(&parsed).is_err(),
                "tampered `{needle}` was accepted"
            );
        }
    }

    #[test]
    fn from_json_rejects_duplicated_and_reordered_records() {
        let range = SeedRange::new(2300, 2310);
        let run = run_shard(&spec(range)).unwrap();
        assert!(
            run.result.records.len() >= 2,
            "campaign found too few records to exercise ordering"
        );
        let mutate = |f: &dyn Fn(&mut Vec<Json>)| {
            let mut json = run.to_json();
            if let Json::Obj(pairs) = &mut json {
                for (key, value) in pairs.iter_mut() {
                    if key == "records" {
                        if let Json::Arr(items) = value {
                            f(items);
                        }
                    }
                }
            }
            CampaignShard::from_json(&json)
        };
        assert!(mutate(&|_| {}).is_ok(), "untouched file must still parse");
        assert!(
            mutate(&|items| {
                let first = items[0].clone();
                items.insert(0, first);
            })
            .is_err(),
            "a duplicated record must be rejected"
        );
        assert!(
            mutate(&|items| items.reverse()).is_err(),
            "reordered records must be rejected"
        );
    }

    #[test]
    fn merge_rejects_incomplete_and_mixed_shard_sets() {
        let range = SeedRange::new(2400, 2408);
        let s0 = run_shard(&spec(range).with_shard(2, 0)).unwrap();
        let s1 = run_shard(&spec(range).with_shard(2, 1)).unwrap();
        assert!(merge_shards(Vec::new()).is_err(), "empty set");
        assert!(merge_shards(vec![s0.clone()]).is_err(), "missing shard 1");
        assert!(
            merge_shards(vec![s0.clone(), s0.clone()]).is_err(),
            "duplicate shard"
        );
        let mut other = run_shard(&CampaignSpec::new(
            Personality::Lcc,
            Personality::Lcc.trunk(),
            range,
        ))
        .unwrap();
        other.spec.shards = 2;
        other.spec.shard = 1;
        assert!(
            merge_shards(vec![s0.clone(), other]).is_err(),
            "mixed personalities"
        );
        assert!(merge_shards(vec![s0, s1]).is_ok());
    }

    #[test]
    fn invalid_specs_are_rejected_up_front() {
        let range = SeedRange::new(0, 4);
        assert!(run_shard(&spec(range).with_shard(0, 0)).is_err());
        assert!(run_shard(&spec(range).with_shard(2, 2)).is_err());
        let mut bad_version = spec(range);
        bad_version.version = 99;
        assert!(run_shard(&bad_version).is_err());
        assert!(!spec(range).same_campaign(&spec(SeedRange::new(0, 5))));
    }
}
