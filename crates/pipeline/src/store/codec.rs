//! JSON codecs for the artifacts the on-disk store spills: whole
//! [`Executable`]s, [`DebugTrace`]s, and violation sets.
//!
//! Encoding is deterministic (a pure function of the value, like everything
//! built on `holes_core::json`), and decoding is *total* over arbitrary
//! JSON: every malformed shape comes back as an `Err` with a short reason,
//! never a panic, so the store can treat a corrupted cache file as a miss.
//! Sum types use compact tagged arrays (`["r", 3]` for a register operand)
//! to keep executables — the largest artifact — small on disk.

use holes_compiler::{CompilerConfig, Executable, OptLevel, Personality, PipelineReport};
use holes_core::json::Json;
use holes_core::{Observed, Violation};
use holes_debugger::{Availability, DebugTrace, LineStop, VarView};
use holes_debuginfo::{
    Attr, AttrValue, DebugInfo, Die, DieId, DieTag, LineRow, LineTable, LocListEntry, Location,
};
use holes_machine::stack::{SFunction, SInst, StackProgram};
use holes_machine::{
    CallTarget, GlobalSlot, MAddr, MFunction, MInst, MachineCode, MachineProgram, Operand,
};
use holes_minic::ast::{BinOp, FunctionId, UnOp};

/// Decode failure: a short, human-readable reason (surfaced only in store
/// diagnostics; the caller recomputes the artifact either way).
pub(super) type DecodeError = String;

fn err<T>(what: &str) -> Result<T, DecodeError> {
    Err(what.to_owned())
}

// ------------------------------------------------------------- primitives

fn get<'a>(json: &'a Json, key: &str) -> Result<&'a Json, DecodeError> {
    json.get(key).ok_or_else(|| format!("missing `{key}`"))
}

fn str_field<'a>(json: &'a Json, key: &str) -> Result<&'a str, DecodeError> {
    get(json, key)?
        .as_str()
        .ok_or_else(|| format!("`{key}` is not a string"))
}

fn u64_field(json: &Json, key: &str) -> Result<u64, DecodeError> {
    get(json, key)?
        .as_u64()
        .ok_or_else(|| format!("`{key}` is not an unsigned integer"))
}

fn u32_field(json: &Json, key: &str) -> Result<u32, DecodeError> {
    u64_field(json, key)?
        .try_into()
        .map_err(|_| format!("`{key}` is out of u32 range"))
}

fn usize_field(json: &Json, key: &str) -> Result<usize, DecodeError> {
    get(json, key)?
        .as_usize()
        .ok_or_else(|| format!("`{key}` is not a usize"))
}

fn bool_field(json: &Json, key: &str) -> Result<bool, DecodeError> {
    get(json, key)?
        .as_bool()
        .ok_or_else(|| format!("`{key}` is not a boolean"))
}

fn arr_field<'a>(json: &'a Json, key: &str) -> Result<&'a [Json], DecodeError> {
    get(json, key)?
        .as_arr()
        .ok_or_else(|| format!("`{key}` is not an array"))
}

fn as_u64(json: &Json, what: &str) -> Result<u64, DecodeError> {
    json.as_u64()
        .ok_or_else(|| format!("{what} is not an unsigned integer"))
}

fn as_i64(json: &Json, what: &str) -> Result<i64, DecodeError> {
    json.as_i64()
        .ok_or_else(|| format!("{what} is not an integer"))
}

fn as_reg(json: &Json, what: &str) -> Result<u8, DecodeError> {
    as_u64(json, what)?
        .try_into()
        .map_err(|_| format!("{what} is out of register range"))
}

fn tagged<'a>(json: &'a Json, what: &str) -> Result<(&'a str, &'a [Json]), DecodeError> {
    let items = json
        .as_arr()
        .ok_or_else(|| format!("{what} is not a tagged array"))?;
    let tag = items
        .first()
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{what} has no tag"))?;
    Ok((tag, &items[1..]))
}

// --------------------------------------------------------------- operands

fn operand_to_json(op: Operand) -> Json {
    match op {
        Operand::Reg(r) => Json::Arr(vec![Json::str("r"), Json::from_u64(r.into())]),
        Operand::Imm(v) => Json::Arr(vec![Json::str("i"), Json::from_i64(v)]),
        Operand::Slot(s) => Json::Arr(vec![Json::str("s"), Json::from_u64(s.into())]),
    }
}

fn operand_from_json(json: &Json) -> Result<Operand, DecodeError> {
    match tagged(json, "operand")? {
        ("r", [reg]) => Ok(Operand::Reg(as_reg(reg, "operand register")?)),
        ("i", [imm]) => Ok(Operand::Imm(as_i64(imm, "operand immediate")?)),
        ("s", [slot]) => Ok(Operand::Slot(
            as_u64(slot, "operand slot")?
                .try_into()
                .map_err(|_| "operand slot out of range".to_owned())?,
        )),
        _ => err("unknown operand shape"),
    }
}

fn maddr_to_json(addr: MAddr) -> Json {
    match addr {
        MAddr::Global {
            global,
            index,
            disp,
        } => Json::Arr(vec![
            Json::str("g"),
            Json::from_u64(global.into()),
            index.map_or(Json::Null, |r| Json::from_u64(r.into())),
            Json::from_u64(disp.into()),
        ]),
        MAddr::Frame { slot } => Json::Arr(vec![Json::str("f"), Json::from_u64(slot.into())]),
        MAddr::Indirect { reg } => Json::Arr(vec![Json::str("p"), Json::from_u64(reg.into())]),
    }
}

fn maddr_from_json(json: &Json) -> Result<MAddr, DecodeError> {
    match tagged(json, "address")? {
        ("g", [global, index, disp]) => Ok(MAddr::Global {
            global: as_u64(global, "global index")? as u32,
            index: match index {
                Json::Null => None,
                other => Some(as_reg(other, "global index register")?),
            },
            disp: as_u64(disp, "global displacement")? as u32,
        }),
        ("f", [slot]) => Ok(MAddr::Frame {
            slot: as_u64(slot, "frame slot")? as u32,
        }),
        ("p", [reg]) => Ok(MAddr::Indirect {
            reg: as_reg(reg, "indirect register")?,
        }),
        _ => err("unknown address shape"),
    }
}

fn bin_op_name(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "add",
        BinOp::Sub => "sub",
        BinOp::Mul => "mul",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Xor => "xor",
        BinOp::Eq => "eq",
        BinOp::Ne => "ne",
        BinOp::Lt => "lt",
        BinOp::Le => "le",
        BinOp::Gt => "gt",
        BinOp::Ge => "ge",
    }
}

fn bin_op_from_name(name: &str) -> Result<BinOp, DecodeError> {
    BinOp::ALL
        .into_iter()
        .find(|&op| bin_op_name(op) == name)
        .ok_or_else(|| format!("unknown binary operator `{name}`"))
}

fn un_op_name(op: UnOp) -> &'static str {
    match op {
        UnOp::Neg => "neg",
        UnOp::Not => "not",
        UnOp::LogicalNot => "lnot",
    }
}

fn un_op_from_name(name: &str) -> Result<UnOp, DecodeError> {
    [UnOp::Neg, UnOp::Not, UnOp::LogicalNot]
        .into_iter()
        .find(|&op| un_op_name(op) == name)
        .ok_or_else(|| format!("unknown unary operator `{name}`"))
}

// ----------------------------------------------------------- instructions

fn inst_to_json(inst: &MInst) -> Json {
    let reg = |r: u8| Json::from_u64(r.into());
    match inst {
        MInst::Nop => Json::Arr(vec![Json::str("nop")]),
        MInst::LoadImm { dst, value } => {
            Json::Arr(vec![Json::str("li"), reg(*dst), Json::from_i64(*value)])
        }
        MInst::Mov { dst, src } => {
            Json::Arr(vec![Json::str("mov"), reg(*dst), operand_to_json(*src)])
        }
        MInst::Bin { op, dst, lhs, rhs } => Json::Arr(vec![
            Json::str("bin"),
            Json::str(bin_op_name(*op)),
            reg(*dst),
            operand_to_json(*lhs),
            operand_to_json(*rhs),
        ]),
        MInst::Un { op, dst, src } => Json::Arr(vec![
            Json::str("un"),
            Json::str(un_op_name(*op)),
            reg(*dst),
            operand_to_json(*src),
        ]),
        MInst::Trunc { dst, bits, signed } => Json::Arr(vec![
            Json::str("trunc"),
            reg(*dst),
            Json::from_u64((*bits).into()),
            Json::Bool(*signed),
        ]),
        MInst::Load { dst, addr } => {
            Json::Arr(vec![Json::str("ld"), reg(*dst), maddr_to_json(*addr)])
        }
        MInst::Store { addr, src } => Json::Arr(vec![
            Json::str("st"),
            maddr_to_json(*addr),
            operand_to_json(*src),
        ]),
        MInst::Lea { dst, addr } => {
            Json::Arr(vec![Json::str("lea"), reg(*dst), maddr_to_json(*addr)])
        }
        MInst::Jump { target } => Json::Arr(vec![Json::str("j"), Json::from_u64((*target).into())]),
        MInst::BranchZero { cond, target } => Json::Arr(vec![
            Json::str("bz"),
            reg(*cond),
            Json::from_u64((*target).into()),
        ]),
        MInst::BranchNonZero { cond, target } => Json::Arr(vec![
            Json::str("bnz"),
            reg(*cond),
            Json::from_u64((*target).into()),
        ]),
        MInst::Call { target, args, ret } => Json::Arr(vec![
            Json::str("call"),
            match target {
                CallTarget::Sink => Json::Null,
                CallTarget::Function(f) => Json::from_u64((*f).into()),
            },
            Json::Arr(args.iter().map(|a| operand_to_json(*a)).collect()),
            ret.map_or(Json::Null, |r| Json::from_u64(r.into())),
        ]),
        MInst::Ret { value } => Json::Arr(vec![
            Json::str("ret"),
            value.map_or(Json::Null, operand_to_json),
        ]),
    }
}

fn inst_from_json(json: &Json) -> Result<MInst, DecodeError> {
    match tagged(json, "instruction")? {
        ("nop", []) => Ok(MInst::Nop),
        ("li", [dst, value]) => Ok(MInst::LoadImm {
            dst: as_reg(dst, "li dst")?,
            value: as_i64(value, "li value")?,
        }),
        ("mov", [dst, src]) => Ok(MInst::Mov {
            dst: as_reg(dst, "mov dst")?,
            src: operand_from_json(src)?,
        }),
        ("bin", [op, dst, lhs, rhs]) => Ok(MInst::Bin {
            op: bin_op_from_name(op.as_str().ok_or("bin op is not a string")?)?,
            dst: as_reg(dst, "bin dst")?,
            lhs: operand_from_json(lhs)?,
            rhs: operand_from_json(rhs)?,
        }),
        ("un", [op, dst, src]) => Ok(MInst::Un {
            op: un_op_from_name(op.as_str().ok_or("un op is not a string")?)?,
            dst: as_reg(dst, "un dst")?,
            src: operand_from_json(src)?,
        }),
        ("trunc", [dst, bits, signed]) => Ok(MInst::Trunc {
            dst: as_reg(dst, "trunc dst")?,
            bits: as_u64(bits, "trunc bits")? as u32,
            signed: signed.as_bool().ok_or("trunc signed is not a boolean")?,
        }),
        ("ld", [dst, addr]) => Ok(MInst::Load {
            dst: as_reg(dst, "ld dst")?,
            addr: maddr_from_json(addr)?,
        }),
        ("st", [addr, src]) => Ok(MInst::Store {
            addr: maddr_from_json(addr)?,
            src: operand_from_json(src)?,
        }),
        ("lea", [dst, addr]) => Ok(MInst::Lea {
            dst: as_reg(dst, "lea dst")?,
            addr: maddr_from_json(addr)?,
        }),
        ("j", [target]) => Ok(MInst::Jump {
            target: as_u64(target, "jump target")? as u32,
        }),
        ("bz", [cond, target]) => Ok(MInst::BranchZero {
            cond: as_reg(cond, "bz cond")?,
            target: as_u64(target, "bz target")? as u32,
        }),
        ("bnz", [cond, target]) => Ok(MInst::BranchNonZero {
            cond: as_reg(cond, "bnz cond")?,
            target: as_u64(target, "bnz target")? as u32,
        }),
        ("call", [target, args, ret]) => Ok(MInst::Call {
            target: match target {
                Json::Null => CallTarget::Sink,
                other => CallTarget::Function(as_u64(other, "call target")? as u32),
            },
            args: args
                .as_arr()
                .ok_or("call args is not an array")?
                .iter()
                .map(operand_from_json)
                .collect::<Result<_, _>>()?,
            ret: match ret {
                Json::Null => None,
                other => Some(as_reg(other, "call ret")?),
            },
        }),
        ("ret", [value]) => Ok(MInst::Ret {
            value: match value {
                Json::Null => None,
                other => Some(operand_from_json(other)?),
            },
        }),
        (tag, _) => Err(format!("unknown instruction `{tag}`")),
    }
}

// -------------------------------------------------------- machine program

fn globals_to_json(globals: &[GlobalSlot]) -> Json {
    Json::Arr(
        globals
            .iter()
            .map(|g| {
                Json::Obj(vec![
                    ("name".to_owned(), Json::str(g.name.clone())),
                    ("elements".to_owned(), Json::from_usize(g.elements)),
                    (
                        "init".to_owned(),
                        Json::Arr(g.init.iter().map(|&v| Json::from_i64(v)).collect()),
                    ),
                    ("bits".to_owned(), Json::from_u64(g.bits.into())),
                    ("signed".to_owned(), Json::Bool(g.signed)),
                    ("volatile".to_owned(), Json::Bool(g.volatile)),
                ])
            })
            .collect(),
    )
}

fn globals_from_json(json: &Json) -> Result<Vec<GlobalSlot>, DecodeError> {
    arr_field(json, "globals")?
        .iter()
        .map(|g| {
            let elements = usize_field(g, "elements")?;
            let init = arr_field(g, "init")?
                .iter()
                .map(|v| as_i64(v, "global initializer"))
                .collect::<Result<Vec<_>, _>>()?;
            if init.len() != elements {
                return err("global initializer length mismatch");
            }
            Ok(GlobalSlot {
                name: str_field(g, "name")?.to_owned(),
                elements,
                init,
                bits: u32_field(g, "bits")?,
                signed: bool_field(g, "signed")?,
                volatile: bool_field(g, "volatile")?,
            })
        })
        .collect()
}

fn machine_to_json(program: &MachineProgram) -> Json {
    Json::Obj(vec![
        (
            "functions".to_owned(),
            Json::Arr(
                program
                    .functions
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::str(f.name.clone())),
                            (
                                "code".to_owned(),
                                Json::Arr(f.code.iter().map(inst_to_json).collect()),
                            ),
                            (
                                "frame_slots".to_owned(),
                                Json::from_u64(f.frame_slots.into()),
                            ),
                            ("base_address".to_owned(), Json::from_u64(f.base_address)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("globals".to_owned(), globals_to_json(&program.globals)),
        ("entry".to_owned(), Json::from_u64(program.entry.into())),
    ])
}

fn machine_from_json(json: &Json) -> Result<MachineProgram, DecodeError> {
    let functions = arr_field(json, "functions")?
        .iter()
        .map(|f| {
            Ok(MFunction {
                name: str_field(f, "name")?.to_owned(),
                code: arr_field(f, "code")?
                    .iter()
                    .map(inst_from_json)
                    .collect::<Result<_, _>>()?,
                frame_slots: u32_field(f, "frame_slots")?,
                base_address: u64_field(f, "base_address")?,
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    let globals = globals_from_json(json)?;
    let entry = u32_field(json, "entry")?;
    if (entry as usize) >= functions.len() {
        return err("entry function index out of range");
    }
    Ok(MachineProgram {
        functions,
        globals,
        entry,
    })
}

// ---------------------------------------------------- stack-VM program

fn sinst_to_json(inst: SInst) -> Json {
    let one = |tag: &str, v: Json| Json::Arr(vec![Json::str(tag), v]);
    match inst {
        SInst::Nop => Json::Arr(vec![Json::str("nop")]),
        SInst::PushImm(v) => one("pi", Json::from_i64(v)),
        SInst::PushReg(r) => one("pr", Json::from_u64(r.into())),
        SInst::PopReg(r) => one("qr", Json::from_u64(r.into())),
        SInst::PushSlot(s) => one("ps", Json::from_u64(s.into())),
        SInst::PopSlot(s) => one("qs", Json::from_u64(s.into())),
        SInst::Drop => Json::Arr(vec![Json::str("drop")]),
        SInst::Bin(op) => one("bin", Json::str(bin_op_name(op))),
        SInst::Un(op) => one("un", Json::str(un_op_name(op))),
        SInst::Trunc { bits, signed } => Json::Arr(vec![
            Json::str("trunc"),
            Json::from_u64(bits.into()),
            Json::Bool(signed),
        ]),
        SInst::LoadGlobal { global, indexed } => Json::Arr(vec![
            Json::str("lg"),
            Json::from_u64(global.into()),
            Json::Bool(indexed),
        ]),
        SInst::StoreGlobal { global, indexed } => Json::Arr(vec![
            Json::str("sg"),
            Json::from_u64(global.into()),
            Json::Bool(indexed),
        ]),
        SInst::LoadInd => Json::Arr(vec![Json::str("ldi")]),
        SInst::StoreInd => Json::Arr(vec![Json::str("sti")]),
        SInst::PushGlobalAddr { global } => one("pga", Json::from_u64(global.into())),
        SInst::PushSlotAddr(s) => one("psa", Json::from_u64(s.into())),
        SInst::Jump { target } => one("j", Json::from_u64(target.into())),
        SInst::BranchZero { target } => one("bz", Json::from_u64(target.into())),
        SInst::BranchNonZero { target } => one("bnz", Json::from_u64(target.into())),
        SInst::Call {
            target,
            argc,
            has_ret,
        } => Json::Arr(vec![
            Json::str("call"),
            match target {
                CallTarget::Sink => Json::Null,
                CallTarget::Function(f) => Json::from_u64(f.into()),
            },
            Json::from_u64(argc.into()),
            Json::Bool(has_ret),
        ]),
        SInst::Ret { has_value } => one("ret", Json::Bool(has_value)),
    }
}

fn sinst_from_json(json: &Json) -> Result<SInst, DecodeError> {
    let as_u32 = |v: &Json, what: &str| -> Result<u32, DecodeError> {
        as_u64(v, what)?
            .try_into()
            .map_err(|_| format!("{what} out of u32 range"))
    };
    let as_flag = |v: &Json, what: &str| -> Result<bool, DecodeError> {
        v.as_bool()
            .ok_or_else(|| format!("{what} is not a boolean"))
    };
    match tagged(json, "stack instruction")? {
        ("nop", []) => Ok(SInst::Nop),
        ("pi", [v]) => Ok(SInst::PushImm(as_i64(v, "push immediate")?)),
        ("pr", [r]) => Ok(SInst::PushReg(as_reg(r, "push register")?)),
        ("qr", [r]) => Ok(SInst::PopReg(as_reg(r, "pop register")?)),
        ("ps", [s]) => Ok(SInst::PushSlot(as_u32(s, "push slot")?)),
        ("qs", [s]) => Ok(SInst::PopSlot(as_u32(s, "pop slot")?)),
        ("drop", []) => Ok(SInst::Drop),
        ("bin", [op]) => Ok(SInst::Bin(bin_op_from_name(
            op.as_str().ok_or("bin op is not a string")?,
        )?)),
        ("un", [op]) => Ok(SInst::Un(un_op_from_name(
            op.as_str().ok_or("un op is not a string")?,
        )?)),
        ("trunc", [bits, signed]) => Ok(SInst::Trunc {
            bits: as_u32(bits, "trunc bits")?,
            signed: as_flag(signed, "trunc signed")?,
        }),
        ("lg", [global, indexed]) => Ok(SInst::LoadGlobal {
            global: as_u32(global, "load global")?,
            indexed: as_flag(indexed, "load global indexed")?,
        }),
        ("sg", [global, indexed]) => Ok(SInst::StoreGlobal {
            global: as_u32(global, "store global")?,
            indexed: as_flag(indexed, "store global indexed")?,
        }),
        ("ldi", []) => Ok(SInst::LoadInd),
        ("sti", []) => Ok(SInst::StoreInd),
        ("pga", [global]) => Ok(SInst::PushGlobalAddr {
            global: as_u32(global, "push global address")?,
        }),
        ("psa", [s]) => Ok(SInst::PushSlotAddr(as_u32(s, "push slot address")?)),
        ("j", [t]) => Ok(SInst::Jump {
            target: as_u32(t, "jump target")?,
        }),
        ("bz", [t]) => Ok(SInst::BranchZero {
            target: as_u32(t, "bz target")?,
        }),
        ("bnz", [t]) => Ok(SInst::BranchNonZero {
            target: as_u32(t, "bnz target")?,
        }),
        ("call", [target, argc, has_ret]) => Ok(SInst::Call {
            target: match target {
                Json::Null => CallTarget::Sink,
                other => CallTarget::Function(as_u32(other, "call target")?),
            },
            argc: as_u32(argc, "call argc")?,
            has_ret: as_flag(has_ret, "call has_ret")?,
        }),
        ("ret", [has_value]) => Ok(SInst::Ret {
            has_value: as_flag(has_value, "ret has_value")?,
        }),
        (tag, _) => Err(format!("unknown stack instruction `{tag}`")),
    }
}

fn stack_program_to_json(program: &StackProgram) -> Json {
    Json::Obj(vec![
        ("backend".to_owned(), Json::str("stack")),
        (
            "functions".to_owned(),
            Json::Arr(
                program
                    .functions
                    .iter()
                    .map(|f| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::str(f.name.clone())),
                            (
                                "code".to_owned(),
                                Json::Arr(f.code.iter().map(|&i| sinst_to_json(i)).collect()),
                            ),
                            (
                                "frame_slots".to_owned(),
                                Json::from_u64(f.frame_slots.into()),
                            ),
                            ("param_base".to_owned(), Json::from_u64(f.param_base.into())),
                            ("base_address".to_owned(), Json::from_u64(f.base_address)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("globals".to_owned(), globals_to_json(&program.globals)),
        ("entry".to_owned(), Json::from_u64(program.entry.into())),
    ])
}

fn stack_program_from_json(json: &Json) -> Result<StackProgram, DecodeError> {
    let functions = arr_field(json, "functions")?
        .iter()
        .map(|f| {
            Ok(SFunction {
                name: str_field(f, "name")?.to_owned(),
                code: arr_field(f, "code")?
                    .iter()
                    .map(sinst_from_json)
                    .collect::<Result<_, _>>()?,
                frame_slots: u32_field(f, "frame_slots")?,
                param_base: u32_field(f, "param_base")?,
                base_address: u64_field(f, "base_address")?,
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    let globals = globals_from_json(json)?;
    let entry = u32_field(json, "entry")?;
    if (entry as usize) >= functions.len() {
        return err("entry function index out of range");
    }
    // Cross-reference instruction operands so a checksum-valid but
    // inconsistent file is rejected here instead of panicking the VM.
    let function_count = functions.len();
    let global_count = globals.len();
    for function in &functions {
        for inst in &function.code {
            match *inst {
                SInst::PushReg(r) | SInst::PopReg(r)
                    if usize::from(r) >= holes_machine::STACK_NUM_REGS =>
                {
                    return err("stack instruction register out of range");
                }
                SInst::Call {
                    target: CallTarget::Function(f),
                    ..
                } if (f as usize) >= function_count => {
                    return err("call target out of range");
                }
                SInst::LoadGlobal { global, .. }
                | SInst::StoreGlobal { global, .. }
                | SInst::PushGlobalAddr { global }
                    if (global as usize) >= global_count =>
                {
                    return err("global index out of range");
                }
                _ => {}
            }
        }
    }
    Ok(StackProgram {
        functions,
        globals,
        entry,
    })
}

/// Reject decoded debug information whose location descriptions name
/// registers the executable's backend does not have: the debugger reads
/// registers through an infallible accessor, so an out-of-range index from
/// a tampered (checksum-recomputed) store file must never reach it.
fn validate_location_registers(debug: &DebugInfo, reg_limit: usize) -> Result<(), DecodeError> {
    for (_, die) in debug.iter() {
        for (_, value) in &die.attrs {
            if let AttrValue::LocList(entries) = value {
                for entry in entries {
                    let register = match entry.location {
                        Location::Register(r) => Some(r),
                        Location::Composite { reg, .. } => Some(reg),
                        _ => None,
                    };
                    if register.is_some_and(|r| usize::from(r) >= reg_limit) {
                        return err("location register out of range for the backend");
                    }
                }
            }
        }
    }
    Ok(())
}

/// Encode a backend's machine code. Register programs keep the pre-backend
/// object shape (no tag), so existing store files stay valid byte-for-byte;
/// stack and frame programs carry a `"backend"` marker.
fn code_to_json(code: &MachineCode) -> Json {
    match code {
        MachineCode::Reg(program) => machine_to_json(program),
        MachineCode::Stack(program) => stack_program_to_json(program),
        MachineCode::Frame(program) => {
            // Same register-ISA object shape, distinguished only by the tag.
            let mut json = machine_to_json(program);
            if let Json::Obj(pairs) = &mut json {
                pairs.insert(0, ("backend".to_owned(), Json::str("frame")));
            }
            json
        }
    }
}

fn code_from_json(json: &Json) -> Result<MachineCode, DecodeError> {
    match json.get("backend") {
        None => Ok(MachineCode::Reg(machine_from_json(json)?)),
        Some(tag) if tag.as_str() == Some("stack") => {
            Ok(MachineCode::Stack(stack_program_from_json(json)?))
        }
        Some(tag) if tag.as_str() == Some("frame") => {
            Ok(MachineCode::Frame(machine_from_json(json)?))
        }
        Some(_) => err("unknown machine-code backend tag"),
    }
}

// -------------------------------------------------------------- locations

fn location_to_json(location: Location) -> Json {
    match location {
        Location::Register(r) => Json::Arr(vec![Json::str("reg"), Json::from_u64(r.into())]),
        Location::FrameSlot(s) => Json::Arr(vec![Json::str("slot"), Json::from_u64(s.into())]),
        Location::GlobalAddress(a) => Json::Arr(vec![Json::str("addr"), Json::from_u64(a)]),
        Location::ConstValue(c) => Json::Arr(vec![Json::str("const"), Json::from_i64(c)]),
        Location::Empty => Json::Arr(vec![Json::str("empty")]),
        Location::FrameBase { offset } => {
            Json::Arr(vec![Json::str("fb"), Json::from_i64(offset.into())])
        }
        Location::Composite { reg, offset, deref } => Json::Arr(vec![
            Json::str("cx"),
            Json::from_u64(reg.into()),
            Json::from_i64(offset),
            Json::Bool(deref),
        ]),
    }
}

fn location_from_json(json: &Json) -> Result<Location, DecodeError> {
    match tagged(json, "location")? {
        ("reg", [r]) => Ok(Location::Register(as_reg(r, "location register")?)),
        ("slot", [s]) => Ok(Location::FrameSlot(as_u64(s, "location slot")? as u32)),
        ("addr", [a]) => Ok(Location::GlobalAddress(as_u64(a, "location address")?)),
        ("const", [c]) => Ok(Location::ConstValue(as_i64(c, "location constant")?)),
        ("empty", []) => Ok(Location::Empty),
        ("fb", [offset]) => Ok(Location::FrameBase {
            offset: as_i64(offset, "frame-base offset")?
                .try_into()
                .map_err(|_| "frame-base offset out of range".to_owned())?,
        }),
        ("cx", [reg, offset, deref]) => Ok(Location::Composite {
            reg: as_reg(reg, "composite register")?,
            offset: as_i64(offset, "composite offset")?,
            deref: deref.as_bool().ok_or("composite deref is not a boolean")?,
        }),
        _ => err("unknown location shape"),
    }
}

fn loclist_to_json(entries: &[LocListEntry]) -> Json {
    Json::Arr(
        entries
            .iter()
            .map(|e| {
                Json::Arr(vec![
                    Json::from_u64(e.start),
                    Json::from_u64(e.end),
                    location_to_json(e.location),
                ])
            })
            .collect(),
    )
}

fn loclist_from_json(json: &Json) -> Result<Vec<LocListEntry>, DecodeError> {
    json.as_arr()
        .ok_or("location list is not an array")?
        .iter()
        .map(|e| match e.as_arr() {
            Some([start, end, location]) => Ok(LocListEntry::new(
                as_u64(start, "loclist start")?,
                as_u64(end, "loclist end")?,
                location_from_json(location)?,
            )),
            _ => err("location list entry is not a triple"),
        })
        .collect()
}

// ------------------------------------------------------------------- DIEs

fn die_tag_name(tag: DieTag) -> &'static str {
    match tag {
        DieTag::CompileUnit => "cu",
        DieTag::Subprogram => "sub",
        DieTag::InlinedSubroutine => "inl",
        DieTag::LexicalBlock => "blk",
        DieTag::Variable => "var",
        DieTag::FormalParameter => "par",
    }
}

fn die_tag_from_name(name: &str) -> Result<DieTag, DecodeError> {
    [
        DieTag::CompileUnit,
        DieTag::Subprogram,
        DieTag::InlinedSubroutine,
        DieTag::LexicalBlock,
        DieTag::Variable,
        DieTag::FormalParameter,
    ]
    .into_iter()
    .find(|&t| die_tag_name(t) == name)
    .ok_or_else(|| format!("unknown DIE tag `{name}`"))
}

fn attr_name(attr: Attr) -> &'static str {
    match attr {
        Attr::Name => "name",
        Attr::LowPc => "low_pc",
        Attr::HighPc => "high_pc",
        Attr::DeclLine => "decl_line",
        Attr::ConstValue => "const_value",
        Attr::Location => "location",
        Attr::AbstractOrigin => "origin",
        Attr::CallLine => "call_line",
        Attr::External => "external",
        Attr::FrameBase => "frame_base",
    }
}

fn attr_from_name(name: &str) -> Result<Attr, DecodeError> {
    [
        Attr::Name,
        Attr::LowPc,
        Attr::HighPc,
        Attr::DeclLine,
        Attr::ConstValue,
        Attr::Location,
        Attr::AbstractOrigin,
        Attr::CallLine,
        Attr::External,
        Attr::FrameBase,
    ]
    .into_iter()
    .find(|&a| attr_name(a) == name)
    .ok_or_else(|| format!("unknown attribute `{name}`"))
}

fn attr_value_to_json(value: &AttrValue) -> Json {
    match value {
        AttrValue::Text(s) => Json::Arr(vec![Json::str("text"), Json::str(s.clone())]),
        AttrValue::Addr(a) => Json::Arr(vec![Json::str("addr"), Json::from_u64(*a)]),
        AttrValue::Unsigned(u) => Json::Arr(vec![Json::str("u"), Json::from_u64(*u)]),
        AttrValue::Signed(s) => Json::Arr(vec![Json::str("s"), Json::from_i64(*s)]),
        AttrValue::Flag(b) => Json::Arr(vec![Json::str("flag"), Json::Bool(*b)]),
        AttrValue::Ref(d) => Json::Arr(vec![Json::str("ref"), Json::from_usize(d.0)]),
        AttrValue::LocList(entries) => Json::Arr(vec![Json::str("loc"), loclist_to_json(entries)]),
    }
}

fn attr_value_from_json(json: &Json) -> Result<AttrValue, DecodeError> {
    match tagged(json, "attribute value")? {
        ("text", [s]) => Ok(AttrValue::Text(
            s.as_str()
                .ok_or("text attribute is not a string")?
                .to_owned(),
        )),
        ("addr", [a]) => Ok(AttrValue::Addr(as_u64(a, "address attribute")?)),
        ("u", [u]) => Ok(AttrValue::Unsigned(as_u64(u, "unsigned attribute")?)),
        ("s", [s]) => Ok(AttrValue::Signed(as_i64(s, "signed attribute")?)),
        ("flag", [b]) => Ok(AttrValue::Flag(
            b.as_bool().ok_or("flag attribute is not a boolean")?,
        )),
        ("ref", [d]) => Ok(AttrValue::Ref(DieId(as_u64(d, "DIE reference")? as usize))),
        ("loc", [entries]) => Ok(AttrValue::LocList(loclist_from_json(entries)?)),
        _ => err("unknown attribute value shape"),
    }
}

fn debug_info_to_json(debug: &DebugInfo) -> Json {
    let dies = debug
        .iter()
        .map(|(_, die)| {
            Json::Obj(vec![
                ("tag".to_owned(), Json::str(die_tag_name(die.tag))),
                (
                    "attrs".to_owned(),
                    Json::Arr(
                        die.attrs
                            .iter()
                            .map(|(attr, value)| {
                                Json::Arr(vec![
                                    Json::str(attr_name(*attr)),
                                    attr_value_to_json(value),
                                ])
                            })
                            .collect(),
                    ),
                ),
                (
                    "children".to_owned(),
                    Json::Arr(die.children.iter().map(|c| Json::from_usize(c.0)).collect()),
                ),
                (
                    "parent".to_owned(),
                    die.parent.map_or(Json::Null, |p| Json::from_usize(p.0)),
                ),
            ])
        })
        .collect();
    let rows = debug
        .line_table
        .rows()
        .iter()
        .map(|row| {
            Json::Arr(vec![
                Json::from_u64(row.address),
                Json::from_u64(row.line.into()),
                Json::Bool(row.is_stmt),
            ])
        })
        .collect();
    Json::Obj(vec![
        (
            "source_name".to_owned(),
            Json::str(debug.source_name.clone()),
        ),
        ("dies".to_owned(), Json::Arr(dies)),
        ("line_table".to_owned(), Json::Arr(rows)),
    ])
}

fn debug_info_from_json(json: &Json) -> Result<DebugInfo, DecodeError> {
    let dies = arr_field(json, "dies")?
        .iter()
        .map(|die| {
            Ok(Die {
                tag: die_tag_from_name(str_field(die, "tag")?)?,
                attrs: arr_field(die, "attrs")?
                    .iter()
                    .map(|pair| match pair.as_arr() {
                        Some([attr, value]) => Ok((
                            attr_from_name(attr.as_str().ok_or("attribute name is not a string")?)?,
                            attr_value_from_json(value)?,
                        )),
                        _ => err("attribute is not a pair"),
                    })
                    .collect::<Result<_, DecodeError>>()?,
                children: arr_field(die, "children")?
                    .iter()
                    .map(|c| Ok(DieId(as_u64(c, "child id")? as usize)))
                    .collect::<Result<_, DecodeError>>()?,
                parent: match get(die, "parent")? {
                    Json::Null => None,
                    other => Some(DieId(as_u64(other, "parent id")? as usize)),
                },
            })
        })
        .collect::<Result<Vec<_>, DecodeError>>()?;
    let mut line_table = LineTable::new();
    for row in arr_field(json, "line_table")? {
        match row.as_arr() {
            Some([address, line, is_stmt]) => line_table.push(LineRow {
                address: as_u64(address, "line row address")?,
                line: as_u64(line, "line row line")? as u32,
                is_stmt: is_stmt.as_bool().ok_or("line row is_stmt not boolean")?,
            }),
            _ => return err("line table row is not a triple"),
        }
    }
    DebugInfo::from_raw_parts(dies, line_table, str_field(json, "source_name")?.to_owned())
        .ok_or_else(|| "DIE tree fails its structural invariants".to_owned())
}

// --------------------------------------------------------- configurations

fn config_to_json(config: &CompilerConfig) -> Json {
    let mut pairs = vec![
        (
            "personality".to_owned(),
            Json::str(config.personality.name()),
        ),
        ("version".to_owned(), Json::str(config.version_name())),
        ("level".to_owned(), Json::str(config.level.flag())),
        (
            "disabled_passes".to_owned(),
            Json::Arr(
                config
                    .disabled_passes
                    .iter()
                    .map(|p| Json::str(p.clone()))
                    .collect(),
            ),
        ),
        (
            "pass_budget".to_owned(),
            config.pass_budget.map_or(Json::Null, Json::from_usize),
        ),
        (
            "disable_defects".to_owned(),
            Json::Bool(config.disable_defects),
        ),
    ];
    // Like the fingerprint encoding: only a non-default backend extends the
    // shape, keeping register-backend store files byte-identical.
    if config.backend != holes_compiler::BackendKind::Reg {
        pairs.push(("backend".to_owned(), Json::str(config.backend.name())));
    }
    Json::Obj(pairs)
}

fn config_from_json(json: &Json) -> Result<CompilerConfig, DecodeError> {
    let personality: Personality = str_field(json, "personality")?
        .parse()
        .map_err(|_| "unknown personality".to_owned())?;
    let version = personality
        .version_index(str_field(json, "version")?)
        .ok_or("unknown compiler version")?;
    let level: OptLevel = str_field(json, "level")?
        .parse()
        .map_err(|_| "unknown optimization level".to_owned())?;
    let mut config = CompilerConfig::new(personality, level).with_version(version);
    for pass in arr_field(json, "disabled_passes")? {
        config = config.with_disabled_pass(pass.as_str().ok_or("pass name is not a string")?);
    }
    config.pass_budget = match get(json, "pass_budget")? {
        Json::Null => None,
        other => Some(other.as_usize().ok_or("pass budget is not a usize")?),
    };
    config.disable_defects = bool_field(json, "disable_defects")?;
    if let Some(backend) = json.get("backend") {
        config.backend = backend
            .as_str()
            .and_then(|name| name.parse().ok())
            .ok_or("unknown backend")?;
    }
    Ok(config)
}

// ------------------------------------------------------------ executables

/// Encode a whole executable (machine program, debug information, producing
/// configuration, and pipeline report).
pub(super) fn executable_to_json(executable: &Executable) -> Json {
    let strings =
        |items: &[String]| Json::Arr(items.iter().map(|s| Json::str(s.clone())).collect());
    Json::Obj(vec![
        ("machine".to_owned(), code_to_json(&executable.machine)),
        ("debug".to_owned(), debug_info_to_json(&executable.debug)),
        ("config".to_owned(), config_to_json(&executable.config)),
        (
            "report".to_owned(),
            Json::Obj(vec![
                (
                    "passes_run".to_owned(),
                    strings(&executable.report.passes_run),
                ),
                (
                    "defects_applied".to_owned(),
                    strings(&executable.report.defects_applied),
                ),
            ]),
        ),
    ])
}

/// Decode an executable encoded by [`executable_to_json`].
pub(super) fn executable_from_json(json: &Json) -> Result<Executable, DecodeError> {
    let report = get(json, "report")?;
    let strings = |key: &str| -> Result<Vec<String>, DecodeError> {
        arr_field(report, key)?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_owned)
                    .ok_or_else(|| format!("`{key}` entry is not a string"))
            })
            .collect()
    };
    let machine = code_from_json(get(json, "machine")?)?;
    let config = config_from_json(get(json, "config")?)?;
    if machine.backend() != config.backend {
        return err("machine code and configuration disagree on the backend");
    }
    let debug = debug_info_from_json(get(json, "debug")?)?;
    let reg_limit = match machine.backend() {
        holes_machine::BackendKind::Reg | holes_machine::BackendKind::Frame => {
            holes_machine::NUM_REGS
        }
        holes_machine::BackendKind::Stack => holes_machine::STACK_NUM_REGS,
    };
    validate_location_registers(&debug, reg_limit)?;
    Ok(Executable {
        machine,
        debug,
        config,
        report: PipelineReport {
            passes_run: strings("passes_run")?,
            defects_applied: strings("defects_applied")?,
        },
    })
}

// ----------------------------------------------------------------- traces

/// Encode a debug trace (stops in execution order plus the steppable-line
/// set; the reached-line index is derivable and not stored).
pub(super) fn trace_to_json(trace: &DebugTrace) -> Json {
    Json::Obj(vec![
        (
            "stops".to_owned(),
            Json::Arr(
                trace
                    .stops
                    .iter()
                    .map(|stop| {
                        Json::Obj(vec![
                            ("line".to_owned(), Json::from_u64(stop.line.into())),
                            ("address".to_owned(), Json::from_u64(stop.address)),
                            ("function".to_owned(), Json::str(stop.function.as_ref())),
                            (
                                "variables".to_owned(),
                                Json::Arr(
                                    stop.variables
                                        .iter()
                                        .map(|v| {
                                            Json::Arr(vec![
                                                Json::str(v.name.as_ref()),
                                                match v.availability {
                                                    Availability::Available(value) => {
                                                        Json::from_i64(value)
                                                    }
                                                    Availability::OptimizedOut => Json::Null,
                                                },
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "steppable_lines".to_owned(),
            Json::Arr(
                trace
                    .steppable_lines
                    .iter()
                    .map(|&l| Json::from_u64(l.into()))
                    .collect(),
            ),
        ),
    ])
}

/// Decode a trace encoded by [`trace_to_json`], rebuilding the reached-line
/// index exactly as the live debugger does (first stop per line wins).
pub(super) fn trace_from_json(json: &Json) -> Result<DebugTrace, DecodeError> {
    let stops = arr_field(json, "stops")?
        .iter()
        .map(|stop| {
            Ok(LineStop {
                line: u32_field(stop, "line")?,
                address: u64_field(stop, "address")?,
                function: str_field(stop, "function")?.into(),
                variables: arr_field(stop, "variables")?
                    .iter()
                    .map(|v| match v.as_arr() {
                        Some([name, value]) => Ok(VarView {
                            name: name.as_str().ok_or("variable name is not a string")?.into(),
                            availability: match value {
                                Json::Null => Availability::OptimizedOut,
                                other => Availability::Available(as_i64(other, "variable value")?),
                            },
                        }),
                        _ => err("variable is not a pair"),
                    })
                    .collect::<Result<_, DecodeError>>()?,
            })
        })
        .collect::<Result<Vec<LineStop>, DecodeError>>()?;
    let steppable_lines = arr_field(json, "steppable_lines")?
        .iter()
        .map(|l| Ok(as_u64(l, "steppable line")? as u32))
        .collect::<Result<Vec<u32>, DecodeError>>()?;
    let mut reached = std::collections::BTreeMap::new();
    for (index, stop) in stops.iter().enumerate() {
        reached.entry(stop.line).or_insert(index);
    }
    Ok(DebugTrace {
        stops,
        steppable_lines,
        reached,
    })
}

// ------------------------------------------------------------- violations

/// Encode a full violation set.
pub(super) fn violations_to_json(violations: &[Violation]) -> Json {
    Json::Arr(
        violations
            .iter()
            .map(|v| {
                Json::Obj(vec![
                    ("conjecture".to_owned(), Json::str(v.conjecture.to_string())),
                    ("line".to_owned(), Json::from_u64(v.line.into())),
                    ("variable".to_owned(), Json::str(v.variable.as_ref())),
                    ("function".to_owned(), Json::from_usize(v.function.0)),
                    ("observed".to_owned(), Json::str(v.observed.name())),
                ])
            })
            .collect(),
    )
}

/// Decode a violation set encoded by [`violations_to_json`].
pub(super) fn violations_from_json(json: &Json) -> Result<Vec<Violation>, DecodeError> {
    json.as_arr()
        .ok_or("violation set is not an array")?
        .iter()
        .map(|v| {
            let observed: Observed = str_field(v, "observed")?
                .parse()
                .map_err(|_| "unknown observed state".to_owned())?;
            Ok(Violation {
                conjecture: str_field(v, "conjecture")?
                    .parse()
                    .map_err(|_| "unknown conjecture".to_owned())?,
                line: u32_field(v, "line")?,
                variable: str_field(v, "variable")?.into(),
                function: FunctionId(usize_field(v, "function")?),
                observed,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use holes_compiler::compile;
    use holes_debugger::{trace, DebuggerKind};
    use holes_progen::ProgramGenerator;

    fn sample_executables() -> Vec<Executable> {
        let generated = ProgramGenerator::from_seed(11).generate();
        [
            CompilerConfig::new(Personality::Ccg, OptLevel::O0),
            CompilerConfig::new(Personality::Ccg, OptLevel::O3),
            CompilerConfig::new(Personality::Lcc, OptLevel::O2)
                .with_disabled_pass("gvn")
                .with_pass_budget(4),
            // Stack-backend executables round-trip too (tagged machine
            // object, frame-base/composite locations, config backend).
            CompilerConfig::new(Personality::Lcc, OptLevel::O2)
                .with_backend(holes_compiler::BackendKind::Stack),
            CompilerConfig::new(Personality::Ccg, OptLevel::Og)
                .with_backend(holes_compiler::BackendKind::Stack)
                .without_defects(),
        ]
        .iter()
        .map(|config| compile(&generated.program, config))
        .collect()
    }

    #[test]
    fn executables_round_trip_exactly() {
        for executable in sample_executables() {
            let encoded = executable_to_json(&executable);
            let decoded = executable_from_json(&encoded).expect("decode");
            assert_eq!(decoded.machine, executable.machine);
            assert_eq!(decoded.debug, executable.debug);
            assert_eq!(decoded.config, executable.config);
            assert_eq!(decoded.report.passes_run, executable.report.passes_run);
            assert_eq!(
                decoded.report.defects_applied,
                executable.report.defects_applied
            );
            // And the re-encoding is byte-identical (determinism).
            assert_eq!(
                executable_to_json(&decoded).to_compact(),
                encoded.to_compact()
            );
        }
    }

    #[test]
    fn traces_round_trip_with_rebuilt_reached_index() {
        for executable in sample_executables() {
            for kind in [DebuggerKind::GdbLike, DebuggerKind::LldbLike] {
                let original = trace(&executable, kind);
                let decoded = trace_from_json(&trace_to_json(&original)).expect("decode");
                assert_eq!(decoded.stops, original.stops);
                assert_eq!(decoded.steppable_lines, original.steppable_lines);
                assert_eq!(decoded.reached, original.reached);
            }
        }
    }

    #[test]
    fn violation_sets_round_trip() {
        let violations = vec![Violation {
            conjecture: holes_core::Conjecture::C2,
            line: 7,
            variable: "x".into(),
            function: FunctionId(0),
            observed: Observed::OptimizedOut,
        }];
        let decoded = violations_from_json(&violations_to_json(&violations)).expect("decode");
        assert_eq!(decoded, violations);
        assert_eq!(violations_from_json(&Json::Arr(vec![])).unwrap(), vec![]);
    }

    #[test]
    fn locations_beyond_the_backend_register_file_are_rejected() {
        // A checksum-valid envelope naming a register the stack VM does not
        // have must be rejected at decode time — the debugger's register
        // accessor is infallible, so this is the last line of defence.
        let mut executable = sample_executables().pop().unwrap();
        assert!(executable.machine.as_stack().is_some());
        let root = executable.debug.root();
        executable.debug.set_attr(
            root,
            Attr::Location,
            AttrValue::LocList(vec![LocListEntry::new(
                0,
                u64::MAX,
                Location::Register(holes_machine::STACK_NUM_REGS as u8),
            )]),
        );
        let encoded = executable_to_json(&executable);
        assert!(executable_from_json(&encoded).is_err());
        // The same register index is fine on the register backend.
        let mut reg_exe = sample_executables().swap_remove(0);
        assert!(reg_exe.machine.as_reg().is_some());
        let root = reg_exe.debug.root();
        reg_exe.debug.set_attr(
            root,
            Attr::Location,
            AttrValue::LocList(vec![LocListEntry::new(
                0,
                u64::MAX,
                Location::Register(holes_machine::STACK_NUM_REGS as u8),
            )]),
        );
        assert!(executable_from_json(&executable_to_json(&reg_exe)).is_ok());
    }

    #[test]
    fn stack_programs_with_dangling_operands_are_rejected() {
        let executable = sample_executables().pop().unwrap();
        let good = executable_to_json(&executable).to_compact();
        for (needle, replacement) in [
            ("[\"pr\",0]", "[\"pr\",11]"),     // register beyond the file
            ("[\"call\",0,", "[\"call\",99,"), // call target out of range
            ("[\"sg\",0,", "[\"sg\",99,"),     // global index out of range
        ] {
            let bad = good.replace(needle, replacement);
            if bad == good {
                continue; // operand shape not present in this sample
            }
            let parsed = Json::parse(&bad).unwrap();
            assert!(
                executable_from_json(&parsed).is_err(),
                "tampered `{needle}` decoded"
            );
        }
    }

    #[test]
    fn malformed_payloads_are_rejected_not_panicked() {
        for bad in [
            Json::Null,
            Json::Obj(vec![]),
            Json::parse(r#"{"machine": 1, "debug": 2, "config": 3, "report": 4}"#).unwrap(),
            Json::parse(r#"{"stops": [{"line": "x"}], "steppable_lines": []}"#).unwrap(),
        ] {
            assert!(executable_from_json(&bad).is_err());
            assert!(trace_from_json(&bad).is_err());
            assert!(violations_from_json(&bad).is_err());
        }
        // Tampered instruction and DIE shapes fail cleanly too.
        let executable = &sample_executables()[1];
        let good = executable_to_json(executable).to_compact();
        for (needle, replacement) in [
            ("[\"li\",", "[\"xyzzy\","),
            ("\"entry\":", "\"entry\":9"),
            ("\"tag\":\"cu\"", "\"tag\":\"nope\""),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(bad, good, "replacement `{needle}` did not apply");
            let parsed = Json::parse(&bad).unwrap();
            assert!(
                executable_from_json(&parsed).is_err(),
                "tampered `{needle}` decoded"
            );
        }
    }
}
