//! The store's filesystem seam: every fallible file operation the artifact
//! store performs on its hot path goes through the [`StoreIo`] trait, so
//! tests (and the `HOLES_STORE_CHAOS` environment variable) can inject
//! deterministic transient failures without touching a real filesystem
//! fault. [`OsIo`] is the real implementation; [`FailingIo`] wraps it with
//! a scripted or periodic failure schedule.
//!
//! The seam intentionally covers only the load/save path — the operations
//! retried and counted by [`super::ArtifactStore`]. Directory enumeration
//! (`gc`) stays on `std::fs`: a sweep that misses a file is already
//! harmless by design.

use std::collections::VecDeque;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The file operations the artifact store's load/save path depends on.
/// Implementations must be shareable across the store's worker threads.
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// Read a whole file as UTF-8.
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) I/O error.
    fn read_to_string(&self, path: &Path) -> io::Result<String>;

    /// Create or replace a file with the given bytes.
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) I/O error.
    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()>;

    /// Atomically rename `from` to `to`.
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) I/O error.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Delete a file.
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) I/O error.
    fn remove_file(&self, path: &Path) -> io::Result<()>;

    /// Create a directory and its missing parents.
    ///
    /// # Errors
    ///
    /// Returns the underlying (or injected) I/O error.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
}

/// The real filesystem: each operation is the `std::fs` function of the
/// same name.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsIo;

impl StoreIo for OsIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        std::fs::read_to_string(path)
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        std::fs::write(path, contents)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }
}

/// How a [`FailingIo`] decides which operations fail.
#[derive(Debug)]
enum Mode {
    /// Scripted outcomes consumed front-first (`true` = the operation
    /// fails); operations beyond the script succeed.
    Script(Mutex<VecDeque<bool>>),
    /// Every `n`th operation fails (1-based: `Every(3)` fails operations
    /// 3, 6, 9, …).
    Every(usize),
}

/// An [`OsIo`] wrapper that injects deterministic transient failures: the
/// chaos seam behind the store's retry, quarantine, and degradation
/// machinery. A failed operation returns an [`io::ErrorKind::Other`] error
/// and touches nothing on disk, exactly like a transient kernel-level
/// failure would.
#[derive(Debug)]
pub struct FailingIo {
    mode: Mode,
    attempts: AtomicUsize,
    injected: AtomicUsize,
}

impl FailingIo {
    /// A schedule that fails exactly the scripted operations: the `n`th
    /// `true` fails the `n`th store I/O operation. Operations past the end
    /// of the script succeed.
    pub fn script(outcomes: impl IntoIterator<Item = bool>) -> FailingIo {
        FailingIo {
            mode: Mode::Script(Mutex::new(outcomes.into_iter().collect())),
            attempts: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
        }
    }

    /// A schedule that fails every `period`th operation, forever — what
    /// `HOLES_STORE_CHAOS=<period>` installs. A `period` of 0 never fails.
    pub fn every(period: usize) -> FailingIo {
        FailingIo {
            mode: Mode::Every(period),
            attempts: AtomicUsize::new(0),
            injected: AtomicUsize::new(0),
        }
    }

    /// How many failures the schedule has injected so far.
    pub fn injected(&self) -> usize {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consume one schedule slot; `Err` means this operation fails.
    fn trip(&self) -> io::Result<()> {
        let attempt = self.attempts.fetch_add(1, Ordering::Relaxed);
        let fail = match &self.mode {
            Mode::Script(script) => script
                .lock()
                .expect("failure script poisoned")
                .pop_front()
                .unwrap_or(false),
            Mode::Every(0) => false,
            Mode::Every(period) => (attempt + 1).is_multiple_of(*period),
        };
        if fail {
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::other("injected store failure"));
        }
        Ok(())
    }
}

impl StoreIo for FailingIo {
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        self.trip()?;
        OsIo.read_to_string(path)
    }

    fn write(&self, path: &Path, contents: &[u8]) -> io::Result<()> {
        self.trip()?;
        OsIo.write(path, contents)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.trip()?;
        OsIo.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.trip()?;
        OsIo.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.trip()?;
        OsIo.create_dir_all(path)
    }
}
