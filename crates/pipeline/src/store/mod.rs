//! The persistent on-disk artifact store: the cross-process second level of
//! the artifact cache.
//!
//! [`crate::ArtifactCache`] makes every *revisit* of a compiler
//! configuration free — but only within one process. The natural CLI
//! workflow (`holes campaign` → `triage` → `reduce` over the same seed
//! range) spans several processes, and without persistence each one
//! recompiles and re-traces everything from scratch. This module spills the
//! three cached artifact kinds — [`Executable`]s, [`DebugTrace`]s, and full
//! violation sets — to a cache directory and loads them back in any later
//! process, so a range campaigned once is free forever after.
//!
//! # Keys and layout
//!
//! Artifacts are keyed by the pair of a [`SubjectKey`] (a stable digest of
//! the subject's seed *and* rendered source text, so generator changes or
//! reduced program variants can never alias) and the configuration's stable
//! [`Fingerprint`], plus the debugger personality for traces and violation
//! sets. Each artifact is one file:
//!
//! ```text
//! <root>/<subject-key>/<fingerprint>.<kind>.json
//! ```
//!
//! where `<kind>` is `exe`, `trace-gdb`, `trace-lldb`, `viol-gdb`, or
//! `viol-lldb`.
//!
//! # Format, integrity, and concurrency
//!
//! Every file is a [`ARTIFACT_FORMAT`] (`holes.artifact/v1`) envelope built
//! on `holes_core::json`: format tag, kind, subject key, fingerprint, an
//! FNV-1a checksum of the compact payload text, and the payload itself.
//! Loads are **corruption-tolerant by construction**: any read, parse,
//! envelope, checksum, or decode failure — including a decoded executable
//! whose embedded configuration is not *exactly* the requested one — is
//! counted in [`StoreStats::rejected`] and reported as a miss, so the
//! artifact is recomputed (and the file rewritten) rather than trusted.
//! Writes go to a unique temporary file in the destination directory and
//! are published with an atomic rename, so concurrent shard processes
//! sharing one cache directory can never observe a half-written artifact;
//! two processes racing on the same key both write identical bytes and
//! either rename wins.
//!
//! # Enabling the store
//!
//! The store engages automatically when the `HOLES_CACHE_DIR` environment
//! variable names a directory (the `holes` CLI's `--cache-dir` flag sets it
//! for its own process), or explicitly via
//! [`crate::Subject::attach_store`].

mod codec;
pub mod io;

use std::io::ErrorKind;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, PoisonError, RwLock};

use io::{FailingIo, OsIo, StoreIo};

use holes_compiler::{CompilerConfig, Executable, Fingerprint};
use holes_core::json::Json;
use holes_core::{Conjecture, Violation};
use holes_debugger::{DebugTrace, DebuggerKind};

/// The identifying `format` value of every artifact file.
pub const ARTIFACT_FORMAT: &str = "holes.artifact/v1";

/// The environment variable that names the cache directory and thereby
/// enables the store for every subject created by this process.
pub const CACHE_DIR_ENV: &str = "HOLES_CACHE_DIR";

/// The environment variable that injects periodic store I/O failures for
/// chaos testing: `HOLES_STORE_CHAOS=<n>` makes every `n`th store file
/// operation of the [`ArtifactStore::from_env`] store fail (see
/// [`io::FailingIo::every`]). Campaign *results* must be unaffected — only
/// the retry/error counters and cache effectiveness may change.
pub const STORE_CHAOS_ENV: &str = "HOLES_STORE_CHAOS";

/// What a [`RemoteSource`] lookup produced: a full artifact envelope, a
/// definitive "the remote has no such artifact", or "the remote could not
/// be asked" (transport failure or an open circuit breaker). The store
/// treats `Unavailable` exactly like a miss — the artifact is recomputed —
/// but counts it in [`StoreStats::remote_degraded`] so degradation is
/// observable.
#[derive(Debug, Clone, PartialEq)]
pub enum RemoteFetch {
    /// The remote returned a `holes.artifact/v1` envelope. It is
    /// **untrusted**: the store revalidates it through the same gates as a
    /// disk load before a single payload byte is used.
    Hit(Json),
    /// The remote answered and has no such artifact.
    Miss,
    /// The remote could not be reached (or its circuit breaker is open).
    Unavailable,
}

/// A fleet-wide artifact source a store may be layered over (see
/// [`ArtifactStore::attach_remote`]): typically
/// `holes_pipeline::serve::cache::RemoteStore`, the `holes.cache-rpc/v1`
/// TCP client, but any fallible key-value fetch/put will do (the tests use
/// an in-memory fake). Implementations own their own availability policy
/// (timeouts, retries, circuit breaking); the store never blocks
/// correctness on them.
pub trait RemoteSource: Send + Sync + std::fmt::Debug {
    /// Fetch the envelope for `(subject, fingerprint, kind)`.
    fn fetch(&self, subject: SubjectKey, fingerprint: Fingerprint, kind: &str) -> RemoteFetch;

    /// Offer a freshly written envelope to the remote (write-through).
    /// Returns `false` when the remote was unavailable; the put is
    /// best-effort either way.
    fn put(&self, envelope: &Json) -> bool;
}

/// How many times a transient (non-`NotFound`) store I/O failure is retried
/// before the operation is abandoned and counted in
/// [`StoreStats::store_errors`].
const IO_RETRIES: u32 = 2;

/// Base sleep between store I/O retries, multiplied by the attempt number.
const IO_BACKOFF: std::time::Duration = std::time::Duration::from_millis(2);

/// Stable identity of a test subject on disk: a 64-bit FNV-1a digest of the
/// generator seed and the rendered source text.
///
/// Including the source text means a changed generator, a hand-written
/// program (seed 0), or a reduction variant each get their own key instead
/// of silently aliasing a stale cache entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubjectKey(pub u64);

impl SubjectKey {
    /// Derive the key for a subject from its seed and rendered source.
    pub fn derive(seed: u64, source_text: &str) -> SubjectKey {
        let hash = fnv1a_with(FNV_OFFSET, &seed.to_le_bytes());
        SubjectKey(fnv1a_with(hash, source_text.as_bytes()))
    }
}

impl std::fmt::Display for SubjectKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl std::str::FromStr for SubjectKey {
    type Err = String;

    /// Parse the 16-digit hex spelling `Display` emits — the round-trip
    /// the cache RPC uses to carry subject keys on the wire.
    fn from_str(text: &str) -> Result<SubjectKey, String> {
        if text.len() != 16 {
            return Err(format!("`{text}` is not a 16-digit subject key"));
        }
        u64::from_str_radix(text, 16)
            .map(SubjectKey)
            .map_err(|e| format!("`{text}` is not a subject key: {e}"))
    }
}

/// Store activity counters, taken at one instant (see
/// [`ArtifactStore::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Artifacts successfully loaded from disk.
    pub loads: usize,
    /// Lookups whose file did not exist.
    pub misses: usize,
    /// Files that existed but were rejected (truncated, corrupted, wrong
    /// format, checksum or configuration mismatch) and recomputed instead.
    pub rejected: usize,
    /// Artifacts written (or rewritten) to disk.
    pub writes: usize,
    /// Transient I/O failures that were retried (each retry counts once).
    pub retries: usize,
    /// Rejected files moved aside into `<root>/quarantine/` for post-mortem
    /// inspection instead of being overwritten in place.
    pub quarantined: usize,
    /// Operations abandoned after exhausting their retries; each one
    /// degrades that lookup or write to memory-only behavior.
    pub store_errors: usize,
    /// Local misses answered by a validated fetch from the attached
    /// [`RemoteSource`] (each one also written through to local disk).
    pub remote_hits: usize,
    /// Local misses the remote also missed.
    pub remote_misses: usize,
    /// Remote envelopes that failed the checksum/identity gates and were
    /// quarantined instead of trusted (the artifact is recomputed).
    pub remote_rejected: usize,
    /// Remote operations skipped or failed because the remote was
    /// unavailable (transport error after retries, or an open circuit
    /// breaker) — the store degraded to local-only behavior for them.
    pub remote_degraded: usize,
}

/// Outcome of one [`ArtifactStore::gc`] sweep.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Total artifact bytes found before the sweep.
    pub scanned_bytes: u64,
    /// Whole `(subject, fingerprint)` artifact families evicted.
    pub evicted_fingerprints: usize,
    /// Files deleted.
    pub deleted_files: usize,
    /// Bytes deleted.
    pub deleted_bytes: u64,
    /// Artifact bytes remaining after the sweep (≤ the budget unless a
    /// concurrent writer raced the sweep).
    pub remaining_bytes: u64,
}

/// A persistent artifact store rooted at a cache directory. See the module
/// docs for the format and guarantees.
#[derive(Debug)]
pub struct ArtifactStore {
    root: PathBuf,
    io: Box<dyn StoreIo>,
    remote: OnceLock<Arc<dyn RemoteSource>>,
    loads: AtomicUsize,
    misses: AtomicUsize,
    rejected: AtomicUsize,
    writes: AtomicUsize,
    retries: AtomicUsize,
    quarantined: AtomicUsize,
    store_errors: AtomicUsize,
    remote_hits: AtomicUsize,
    remote_misses: AtomicUsize,
    remote_rejected: AtomicUsize,
    remote_degraded: AtomicUsize,
}

/// Per-process source of unique temporary file names.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The lazily initialized process-wide store named by [`CACHE_DIR_ENV`].
static ENV_STORE: OnceLock<Option<Arc<ArtifactStore>>> = OnceLock::new();

/// An explicitly installed process-wide store, consulted by
/// [`ArtifactStore::from_env`] *before* the environment lookup. Unlike
/// `ENV_STORE` it is replaceable, which is what lets a `holes work` process
/// bind its remote-layered store for every subject it creates, and lets
/// in-process fleet tests rebind between scenarios.
static PROCESS_STORE: RwLock<Option<Arc<ArtifactStore>>> = RwLock::new(None);

/// Install (or, with `None`, remove) the store every subsequently created
/// subject binds to, overriding the [`CACHE_DIR_ENV`] lookup. Subjects
/// already created keep whatever store they were bound to.
pub fn install_process_store(store: Option<Arc<ArtifactStore>>) {
    *PROCESS_STORE
        .write()
        .unwrap_or_else(PoisonError::into_inner) = store;
}

/// FNV-1a offset basis — the shared starting state of every digest in this
/// module (subject keys and payload checksums).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into an in-progress FNV-1a digest.
fn fnv1a_with(mut hash: u64, bytes: &[u8]) -> u64 {
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The FNV-1a digest of `bytes` from the standard offset basis.
fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_with(FNV_OFFSET, bytes)
}

fn debugger_tag(kind: DebuggerKind) -> &'static str {
    match kind {
        DebuggerKind::GdbLike => "gdb",
        DebuggerKind::LldbLike => "lldb",
    }
}

impl ArtifactStore {
    /// Open (creating if necessary) a store rooted at `root`, on the real
    /// filesystem.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<ArtifactStore> {
        ArtifactStore::open_with_io(root, Box::new(OsIo))
    }

    /// [`ArtifactStore::open`] over an explicit [`StoreIo`] implementation —
    /// the seam the chaos tests use to inject transient failures into the
    /// load/save path. Transient failures while creating the root are
    /// retried like any other store operation.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created after the
    /// retry budget.
    pub fn open_with_io(
        root: impl Into<PathBuf>,
        io: Box<dyn StoreIo>,
    ) -> std::io::Result<ArtifactStore> {
        let root = root.into();
        let mut attempt = 0u32;
        loop {
            match io.create_dir_all(&root) {
                Ok(()) => break,
                Err(error) if attempt >= IO_RETRIES => return Err(error),
                Err(_) => {
                    attempt += 1;
                    std::thread::sleep(IO_BACKOFF * attempt);
                }
            }
        }
        Ok(ArtifactStore {
            root,
            io,
            remote: OnceLock::new(),
            loads: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            rejected: AtomicUsize::new(0),
            writes: AtomicUsize::new(0),
            retries: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
            store_errors: AtomicUsize::new(0),
            remote_hits: AtomicUsize::new(0),
            remote_misses: AtomicUsize::new(0),
            remote_rejected: AtomicUsize::new(0),
            remote_degraded: AtomicUsize::new(0),
        })
    }

    /// Layer this store over a fleet-wide [`RemoteSource`] as its third
    /// cache level: local misses fall through to a remote fetch (validated,
    /// then written through to local disk) and every local save is also
    /// offered to the remote. At most one remote takes effect per store;
    /// later calls are no-ops.
    pub fn attach_remote(&self, remote: Arc<dyn RemoteSource>) {
        let _ = self.remote.set(remote);
    }

    /// The process-wide store named by the [`CACHE_DIR_ENV`] environment
    /// variable, if set when first consulted (all subjects share this one
    /// instance, so its [`stats`](ArtifactStore::stats) aggregate the whole
    /// process). An unusable cache directory degrades the process to
    /// memory-only caching with a single warning rather than failing the
    /// run; [`STORE_CHAOS_ENV`] wraps the store in a periodic failure
    /// schedule. A store installed via [`install_process_store`] takes
    /// precedence over the environment lookup.
    pub fn from_env() -> Option<Arc<ArtifactStore>> {
        if let Some(installed) = PROCESS_STORE
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .as_ref()
        {
            return Some(Arc::clone(installed));
        }
        ENV_STORE
            .get_or_init(|| {
                let dir = std::env::var(CACHE_DIR_ENV)
                    .ok()
                    .filter(|dir| !dir.is_empty())?;
                let chaos = std::env::var(STORE_CHAOS_ENV)
                    .ok()
                    .and_then(|value| value.parse::<usize>().ok())
                    .filter(|&period| period > 0);
                let io: Box<dyn StoreIo> = match chaos {
                    Some(period) => Box::new(FailingIo::every(period)),
                    None => Box::new(OsIo),
                };
                match ArtifactStore::open_with_io(&dir, io) {
                    Ok(store) => Some(Arc::new(store)),
                    Err(error) => {
                        eprintln!(
                            "warning: cache directory `{dir}` is unusable ({error}); \
                             continuing with in-memory caching only"
                        );
                        None
                    }
                }
            })
            .clone()
    }

    /// Run one store I/O operation with bounded retry: transient
    /// (non-`NotFound`) failures sleep briefly and retry, counting each
    /// retry; a failure that survives the budget is counted in
    /// [`StoreStats::store_errors`] and returned.
    fn with_retry<T>(&self, mut op: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(error) if error.kind() == ErrorKind::NotFound => return Err(error),
                Err(error) => {
                    if attempt >= IO_RETRIES {
                        self.store_errors.fetch_add(1, Ordering::Relaxed);
                        return Err(error);
                    }
                    attempt += 1;
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(IO_BACKOFF * attempt);
                }
            }
        }
    }

    /// Count one content-level rejection and move the offending file into
    /// `<root>/quarantine/<subject>/` for post-mortem inspection. The move
    /// is best-effort: if it fails the file stays put and the recompute
    /// overwrites it in place, exactly as before quarantining existed.
    /// Quarantined files are invisible to loads and to [`ArtifactStore::gc`]
    /// (which only sweeps direct subject directories).
    fn reject(&self, path: &Path) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
        let Some(file) = path.file_name() else { return };
        let Some(subject) = path.parent().and_then(Path::file_name) else {
            return;
        };
        let dir = self.root.join("quarantine").join(subject);
        if self.with_retry(|| self.io.create_dir_all(&dir)).is_err() {
            return;
        }
        if self
            .with_retry(|| self.io.rename(path, &dir.join(file)))
            .is_ok()
        {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The cache directory this store reads and writes.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// A snapshot of the activity counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            loads: self.loads.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            quarantined: self.quarantined.load(Ordering::Relaxed),
            store_errors: self.store_errors.load(Ordering::Relaxed),
            remote_hits: self.remote_hits.load(Ordering::Relaxed),
            remote_misses: self.remote_misses.load(Ordering::Relaxed),
            remote_rejected: self.remote_rejected.load(Ordering::Relaxed),
            remote_degraded: self.remote_degraded.load(Ordering::Relaxed),
        }
    }

    fn path_for(&self, subject: SubjectKey, fingerprint: Fingerprint, kind: &str) -> PathBuf {
        self.root
            .join(subject.to_string())
            .join(format!("{fingerprint}.{kind}.json"))
    }

    /// Load and validate one artifact envelope; a content-level failure
    /// counts as rejected (and quarantines the file), an absent file as
    /// missed (falling through to the attached [`RemoteSource`], if any),
    /// and a persistent I/O failure as a store error — all yield `None`, so
    /// the artifact is recomputed rather than trusted.
    fn load(&self, subject: SubjectKey, fingerprint: Fingerprint, kind: &str) -> Option<Json> {
        let path = self.path_for(subject, fingerprint, kind);
        let text = match self.with_retry(|| self.io.read_to_string(&path)) {
            Ok(text) => text,
            Err(error) => {
                if error.kind() == ErrorKind::NotFound {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return self.load_remote(subject, fingerprint, kind, &path);
                }
                return None;
            }
        };
        let envelope = match Json::parse(&text) {
            Ok(envelope) => envelope,
            Err(_) => {
                self.reject(&path);
                return None;
            }
        };
        match validate_envelope(&envelope, subject, fingerprint, kind) {
            Some(payload) => Some(payload),
            None => {
                self.reject(&path);
                None
            }
        }
    }

    /// The remote leg of a local miss: fetch the envelope from the attached
    /// [`RemoteSource`], revalidate it through exactly the gates a disk
    /// load passes, quarantine it on any failure (the recompute heals the
    /// cache), and write a validated envelope through to `path` so the next
    /// process pays nothing.
    fn load_remote(
        &self,
        subject: SubjectKey,
        fingerprint: Fingerprint,
        kind: &str,
        path: &Path,
    ) -> Option<Json> {
        let remote = self.remote.get()?;
        match remote.fetch(subject, fingerprint, kind) {
            RemoteFetch::Hit(envelope) => {
                match validate_envelope(&envelope, subject, fingerprint, kind) {
                    Some(payload) => {
                        self.remote_hits.fetch_add(1, Ordering::Relaxed);
                        self.write_envelope(path, &envelope);
                        Some(payload)
                    }
                    None => {
                        self.remote_rejected.fetch_add(1, Ordering::Relaxed);
                        self.quarantine_remote(subject, fingerprint, kind, &envelope);
                        None
                    }
                }
            }
            RemoteFetch::Miss => {
                self.remote_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            RemoteFetch::Unavailable => {
                self.remote_degraded.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Preserve a rejected remote envelope under
    /// `<root>/quarantine/<subject>/<fingerprint>.<kind>.remote.json` for
    /// post-mortem inspection, mirroring [`ArtifactStore::reject`] for
    /// bytes that never reached the artifact tree. Best-effort.
    fn quarantine_remote(
        &self,
        subject: SubjectKey,
        fingerprint: Fingerprint,
        kind: &str,
        envelope: &Json,
    ) {
        let dir = self.root.join("quarantine").join(subject.to_string());
        if self.with_retry(|| self.io.create_dir_all(&dir)).is_err() {
            return;
        }
        let path = dir.join(format!("{fingerprint}.{kind}.remote.json"));
        let mut text = envelope.to_compact();
        text.push('\n');
        if self
            .with_retry(|| self.io.write(&path, text.as_bytes()))
            .is_ok()
        {
            self.quarantined.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Write one artifact envelope with the atomic-rename protocol.
    /// Transient failures are retried; a write the retry budget cannot
    /// complete is abandoned and counted — the store is an accelerator,
    /// never a correctness dependency.
    fn save(&self, subject: SubjectKey, fingerprint: Fingerprint, kind: &str, payload: Json) {
        let path = self.path_for(subject, fingerprint, kind);
        let envelope = build_envelope(subject, fingerprint, kind, payload);
        self.write_envelope(&path, &envelope);
        if let Some(remote) = self.remote.get() {
            if !remote.put(&envelope) {
                self.remote_degraded.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Publish `envelope` at `path` via a unique temporary file and an
    /// atomic rename (the shared engine of [`ArtifactStore::save`],
    /// remote write-through, and [`ArtifactStore::put_envelope`]). Returns
    /// whether the artifact landed.
    fn write_envelope(&self, path: &Path, envelope: &Json) -> bool {
        let Some(dir) = path.parent() else {
            return false;
        };
        if self.with_retry(|| self.io.create_dir_all(dir)).is_err() {
            return false;
        }
        let Some(file) = path.file_name().and_then(|name| name.to_str()) else {
            return false;
        };
        let mut text = envelope.to_compact();
        text.push('\n');
        let tmp = dir.join(format!(
            ".{file}.{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        if self
            .with_retry(|| self.io.write(&tmp, text.as_bytes()))
            .is_ok()
        {
            if self.with_retry(|| self.io.rename(&tmp, path)).is_ok() {
                self.writes.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            let _ = self.io.remove_file(&tmp);
        } else {
            // A partially written temporary (a real disk running dry, not an
            // injected fault) must not linger for gc to trip over.
            let _ = self.io.remove_file(&tmp);
        }
        false
    }

    /// Read the raw envelope for `(subject, fingerprint, kind)` for serving
    /// over the cache RPC. The envelope is fully revalidated before it
    /// ships — a coordinator must never forward a corrupted disk artifact
    /// to the fleet — and an invalid file is quarantined exactly like a
    /// failed local load.
    pub fn fetch_envelope(
        &self,
        subject: SubjectKey,
        fingerprint: Fingerprint,
        kind: &str,
    ) -> Option<Json> {
        // The kind arrives off the wire: gate it before it touches a path.
        // Without this a fetch for `x/../../etc` would read — and, on a
        // failed validation, quarantine (rename away) — files outside the
        // store root.
        if !valid_kind(kind) {
            return None;
        }
        let path = self.path_for(subject, fingerprint, kind);
        let text = match self.with_retry(|| self.io.read_to_string(&path)) {
            Ok(text) => text,
            Err(error) => {
                if error.kind() == ErrorKind::NotFound {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                }
                return None;
            }
        };
        match Json::parse(&text) {
            Ok(envelope) if validate_envelope(&envelope, subject, fingerprint, kind).is_some() => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                Some(envelope)
            }
            _ => {
                self.reject(&path);
                None
            }
        }
    }

    /// Validate and store an envelope pushed by a remote peer (the
    /// `Put` half of the cache RPC). The envelope's own identity fields
    /// name its location; every gate — format, parseable subject and
    /// fingerprint, a path-safe kind, and the payload checksum — must pass
    /// before a byte is written, so a malicious or corrupted put can
    /// neither poison the tree nor escape it.
    ///
    /// # Errors
    ///
    /// Returns what the envelope failed (identity fields, validation, or
    /// the store write).
    pub fn put_envelope(&self, envelope: &Json) -> Result<(), String> {
        let subject = envelope
            .get("subject")
            .and_then(Json::as_str)
            .and_then(|text| text.parse::<SubjectKey>().ok())
            .ok_or("envelope carries no valid `subject`")?;
        let fingerprint = envelope
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|text| text.parse::<Fingerprint>().ok())
            .ok_or("envelope carries no valid `fingerprint`")?;
        let kind = envelope
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("envelope carries no `kind`")?;
        if !valid_kind(kind) {
            return Err(format!("`{kind}` is not a valid artifact kind"));
        }
        let kind = kind.to_owned();
        if validate_envelope(envelope, subject, fingerprint, &kind).is_none() {
            return Err("envelope failed validation (format or checksum)".into());
        }
        let path = self.path_for(subject, fingerprint, &kind);
        if self.write_envelope(&path, envelope) {
            Ok(())
        } else {
            Err("store write failed".into())
        }
    }

    /// Load the executable cached for `(subject, config)`, if present,
    /// intact, and compiled from *exactly* this configuration.
    pub fn load_executable(
        &self,
        subject: SubjectKey,
        config: &CompilerConfig,
    ) -> Option<Executable> {
        let payload = self.load(subject, config.fingerprint(), "exe")?;
        match codec::executable_from_json(&payload) {
            Ok(executable) if &executable.config == config => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                Some(executable)
            }
            _ => {
                self.reject(&self.path_for(subject, config.fingerprint(), "exe"));
                None
            }
        }
    }

    /// Persist the executable for `(subject, its configuration)`.
    pub fn save_executable(&self, subject: SubjectKey, executable: &Executable) {
        self.save(
            subject,
            executable.config.fingerprint(),
            "exe",
            codec::executable_to_json(executable),
        );
    }

    /// Load the debug trace cached for `(subject, config, debugger)`.
    pub fn load_trace(
        &self,
        subject: SubjectKey,
        config: &CompilerConfig,
        kind: DebuggerKind,
    ) -> Option<DebugTrace> {
        let tag = format!("trace-{}", debugger_tag(kind));
        let payload = self.load(subject, config.fingerprint(), &tag)?;
        match codec::trace_from_json(&payload) {
            Ok(trace) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                Some(trace)
            }
            Err(_) => {
                self.reject(&self.path_for(subject, config.fingerprint(), &tag));
                None
            }
        }
    }

    /// Persist the debug trace for `(subject, config, debugger)`.
    pub fn save_trace(
        &self,
        subject: SubjectKey,
        config: &CompilerConfig,
        kind: DebuggerKind,
        trace: &DebugTrace,
    ) {
        let tag = format!("trace-{}", debugger_tag(kind));
        self.save(
            subject,
            config.fingerprint(),
            &tag,
            codec::trace_to_json(trace),
        );
    }

    /// Load the violation set cached for `(subject, config, debugger)`.
    pub fn load_violations(
        &self,
        subject: SubjectKey,
        config: &CompilerConfig,
        kind: DebuggerKind,
    ) -> Option<Vec<Violation>> {
        let tag = format!("viol-{}", debugger_tag(kind));
        let payload = self.load(subject, config.fingerprint(), &tag)?;
        match codec::violations_from_json(&payload) {
            Ok(violations) => {
                self.loads.fetch_add(1, Ordering::Relaxed);
                Some(violations)
            }
            Err(_) => {
                self.reject(&self.path_for(subject, config.fingerprint(), &tag));
                None
            }
        }
    }

    /// The artifact kind of a corpus entry at a violation site: one kind
    /// per `(conjecture, line, variable)`, so several distilled violations
    /// of the same `(subject, configuration)` coexist side by side.
    fn corpus_kind(conjecture: Conjecture, line: u32, variable: &str) -> String {
        format!("corpus-{conjecture}-L{line}-{variable}")
    }

    /// Load the distilled corpus entry cached for `(subject, config,
    /// site)`, if present and intact. The payload is the entry object of
    /// the `holes.corpus/v1` format.
    pub fn load_corpus_entry(
        &self,
        subject: SubjectKey,
        config: &CompilerConfig,
        conjecture: Conjecture,
        line: u32,
        variable: &str,
    ) -> Option<Json> {
        let kind = ArtifactStore::corpus_kind(conjecture, line, variable);
        let payload = self.load(subject, config.fingerprint(), &kind)?;
        self.loads.fetch_add(1, Ordering::Relaxed);
        Some(payload)
    }

    /// Persist a distilled corpus entry beside the subject's compiled
    /// artifacts, under the same envelope, retry, and quarantine protocol
    /// (the write is atomic-rename; a corrupted file is quarantined and
    /// recomputed on the next `corpus add`, never trusted).
    pub fn save_corpus_entry(
        &self,
        subject: SubjectKey,
        config: &CompilerConfig,
        conjecture: Conjecture,
        line: u32,
        variable: &str,
        payload: Json,
    ) {
        let kind = ArtifactStore::corpus_kind(conjecture, line, variable);
        self.save(subject, config.fingerprint(), &kind, payload);
    }

    /// Garbage-collect the store down to at most `max_bytes` of artifact
    /// data, evicting **whole fingerprints** (every artifact kind of one
    /// `(subject, fingerprint)` pair together) oldest-first by modification
    /// time.
    ///
    /// Eviction at fingerprint granularity keeps the store consistent: a
    /// fingerprint either has its full executable/trace/violation family or
    /// none of it, so a warm run never loads a trace whose executable was
    /// evicted moments earlier. The sweep is safe under concurrent shard
    /// writes: in-flight temporary files are ignored, already-deleted files
    /// are skipped, and a concurrent writer at worst re-creates an evicted
    /// artifact (making the store momentarily exceed the budget, exactly as
    /// any write after the sweep would).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the store's directory tree cannot be
    /// enumerated; deletion failures are tolerated (the file may have been
    /// removed by a concurrent sweep).
    pub fn gc(&self, max_bytes: u64) -> std::io::Result<GcStats> {
        // Group artifact files by (subject directory, fingerprint prefix).
        struct Group {
            newest: std::time::SystemTime,
            bytes: u64,
            /// Member files with their sizes.
            files: Vec<(PathBuf, u64)>,
        }
        let mut groups: std::collections::BTreeMap<(String, String), Group> =
            std::collections::BTreeMap::new();
        let mut scanned_bytes = 0u64;
        let sweep_started = std::time::SystemTime::now();
        for subject_entry in std::fs::read_dir(&self.root)? {
            let subject_entry = match subject_entry {
                Ok(entry) => entry,
                Err(_) => continue,
            };
            let subject_path = subject_entry.path();
            if !subject_path.is_dir() {
                continue;
            }
            let subject_name = subject_entry.file_name().to_string_lossy().into_owned();
            // The quarantine area holds rejected files moved aside for
            // post-mortem inspection, not subject artifacts; evicting them
            // to meet the budget would destroy the evidence.
            if subject_name == "quarantine" {
                continue;
            }
            let Ok(artifacts) = std::fs::read_dir(&subject_path) else {
                continue;
            };
            for artifact in artifacts.flatten() {
                let name = artifact.file_name().to_string_lossy().into_owned();
                // Skip in-flight temporaries of concurrent writers.
                if name.starts_with('.') {
                    continue;
                }
                let Ok(metadata) = artifact.metadata() else {
                    continue;
                };
                if !metadata.is_file() {
                    continue;
                }
                let fingerprint = name.split('.').next().unwrap_or(&name).to_owned();
                let modified = observed_mtime(metadata.modified(), sweep_started);
                scanned_bytes += metadata.len();
                let group = groups
                    .entry((subject_name.clone(), fingerprint))
                    .or_insert(Group {
                        newest: modified,
                        bytes: 0,
                        files: Vec::new(),
                    });
                group.newest = group.newest.max(modified);
                group.bytes += metadata.len();
                group.files.push((artifact.path(), metadata.len()));
            }
        }
        // Oldest groups first; ties broken by the (deterministic) key.
        let mut order: Vec<(&(String, String), &Group)> = groups.iter().collect();
        order.sort_by(|a, b| a.1.newest.cmp(&b.1.newest).then_with(|| a.0.cmp(b.0)));
        let mut stats = GcStats {
            scanned_bytes,
            remaining_bytes: scanned_bytes,
            ..GcStats::default()
        };
        for (_, group) in order {
            if stats.remaining_bytes <= max_bytes {
                break;
            }
            // Only count what actually left the disk: a file a concurrent
            // sweep removed first is gone either way, but a deletion that
            // *failed* (permissions, I/O error) must keep counting against
            // the budget — otherwise the sweep would report success while
            // the store still exceeds it.
            let mut group_deleted = 0u64;
            let mut group_files = 0usize;
            for (file, bytes) in &group.files {
                match std::fs::remove_file(file) {
                    Ok(()) => {
                        group_files += 1;
                        group_deleted += bytes;
                    }
                    Err(error) if error.kind() == ErrorKind::NotFound => {
                        group_deleted += bytes;
                    }
                    Err(_) => {}
                }
            }
            stats.deleted_files += group_files;
            stats.deleted_bytes += group_deleted;
            stats.remaining_bytes = stats.remaining_bytes.saturating_sub(group_deleted);
            if group_deleted == group.bytes {
                stats.evicted_fingerprints += 1;
            }
        }
        // Best-effort cleanup of now-empty subject directories (fails
        // harmlessly when a concurrent writer repopulates one).
        if let Ok(subjects) = std::fs::read_dir(&self.root) {
            for subject in subjects.flatten() {
                let _ = std::fs::remove_dir(subject.path());
            }
        }
        Ok(stats)
    }

    /// Persist the violation set for `(subject, config, debugger)`.
    pub fn save_violations(
        &self,
        subject: SubjectKey,
        config: &CompilerConfig,
        kind: DebuggerKind,
        violations: &[Violation],
    ) {
        let tag = format!("viol-{}", debugger_tag(kind));
        self.save(
            subject,
            config.fingerprint(),
            &tag,
            codec::violations_to_json(violations),
        );
    }
}

/// Whether `kind` may be embedded in an on-disk artifact file name:
/// non-empty, ASCII alphanumerics plus `-` and `_` only. Both halves of
/// the cache RPC gate on this before a wire-supplied kind reaches
/// [`ArtifactStore::path_for`] — anything looser would let a remote peer
/// smuggle path separators or `..` and address files outside the store
/// root.
pub(crate) fn valid_kind(kind: &str) -> bool {
    !kind.is_empty()
        && kind
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
}

/// Validate a `holes.artifact/v1` envelope against the identity it is
/// supposed to carry, returning the payload only when every gate passes:
/// the format tag, the artifact kind, the subject key, the fingerprint
/// (round-tripped through [`Fingerprint`]'s canonical hex spelling rather
/// than raw string equality, so the check survives cosmetic re-spellings of
/// the same identity), and the FNV-1a checksum of the compact payload text.
/// This is the single gate every envelope passes — read from disk, fetched
/// from a remote, or pushed by a put — so no path can trust bytes another
/// path would reject.
fn validate_envelope(
    envelope: &Json,
    subject: SubjectKey,
    fingerprint: Fingerprint,
    kind: &str,
) -> Option<Json> {
    let envelope_fingerprint = envelope
        .get("fingerprint")
        .and_then(Json::as_str)
        .and_then(|text| text.parse::<Fingerprint>().ok());
    let valid = envelope.get("format").and_then(Json::as_str) == Some(ARTIFACT_FORMAT)
        && envelope.get("kind").and_then(Json::as_str) == Some(kind)
        && envelope.get("subject").and_then(Json::as_str) == Some(subject.to_string().as_str())
        && envelope_fingerprint == Some(fingerprint);
    let payload = valid.then(|| envelope.get("payload")).flatten().cloned()?;
    let checksum = format!("{:016x}", fnv1a(payload.to_compact().as_bytes()));
    if envelope.get("checksum").and_then(Json::as_str) != Some(checksum.as_str()) {
        return None;
    }
    Some(payload)
}

/// Assemble the `holes.artifact/v1` envelope for a payload (the exact
/// object [`validate_envelope`] accepts).
fn build_envelope(
    subject: SubjectKey,
    fingerprint: Fingerprint,
    kind: &str,
    payload: Json,
) -> Json {
    let checksum = format!("{:016x}", fnv1a(payload.to_compact().as_bytes()));
    Json::Obj(vec![
        ("format".to_owned(), Json::str(ARTIFACT_FORMAT)),
        ("kind".to_owned(), Json::str(kind)),
        ("subject".to_owned(), Json::str(subject.to_string())),
        ("fingerprint".to_owned(), Json::str(fingerprint.to_string())),
        ("checksum".to_owned(), Json::str(checksum)),
        ("payload".to_owned(), payload),
    ])
}

/// The timestamp a GC sweep uses for a group member. A file whose mtime
/// cannot be read must count as the *newest* thing on disk (the sweep's own
/// start time), never the oldest: defaulting an unreadable timestamp to the
/// epoch would put the group first in eviction order and make a transient
/// metadata error delete a perfectly warm artifact family.
fn observed_mtime(
    modified: std::io::Result<std::time::SystemTime>,
    sweep_started: std::time::SystemTime,
) -> std::time::SystemTime {
    modified.unwrap_or(sweep_started)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Subject;
    use holes_compiler::{OptLevel, Personality};

    /// A scratch store rooted in a unique temp directory, removed on drop.
    struct Scratch {
        store: Arc<ArtifactStore>,
        root: PathBuf,
    }

    impl Scratch {
        fn new(name: &str) -> Scratch {
            let root = std::env::temp_dir().join(format!(
                "holes-store-{name}-{}-{:?}",
                std::process::id(),
                std::thread::current().id(),
            ));
            let _ = std::fs::remove_dir_all(&root);
            Scratch {
                store: Arc::new(ArtifactStore::open(&root).expect("open store")),
                root,
            }
        }
    }

    impl Drop for Scratch {
        fn drop(&mut self) {
            let _ = std::fs::remove_dir_all(&self.root);
        }
    }

    fn config() -> CompilerConfig {
        CompilerConfig::new(Personality::Ccg, OptLevel::O2)
    }

    #[test]
    fn subject_keys_separate_seeds_and_sources() {
        assert_eq!(SubjectKey::derive(1, "x"), SubjectKey::derive(1, "x"));
        assert_ne!(SubjectKey::derive(1, "x"), SubjectKey::derive(2, "x"));
        assert_ne!(SubjectKey::derive(1, "x"), SubjectKey::derive(1, "y"));
        assert_eq!(SubjectKey(0xff).to_string(), "00000000000000ff");
    }

    #[test]
    fn warm_subject_loads_everything_from_disk() {
        let scratch = Scratch::new("warm");
        let cold = Subject::from_seed(7100);
        cold.attach_store(Arc::clone(&scratch.store));
        let cold_violations = cold.violations(&config());
        let cold_stats = cold.cache_stats();
        assert_eq!(cold_stats.compiles, 1);
        assert_eq!(cold_stats.disk_loads, 0);
        assert!(
            scratch.store.stats().writes >= 3,
            "exe + trace + violations"
        );

        // A fresh cache in (conceptually) a fresh process: everything loads.
        let warm = cold.with_fresh_cache();
        warm.attach_store(Arc::clone(&scratch.store));
        let warm_violations = warm.violations(&config());
        assert_eq!(warm_violations, cold_violations);
        let warm_stats = warm.cache_stats();
        assert_eq!(warm_stats.compiles, 0, "warm run recompiled");
        assert_eq!(warm_stats.traces, 0, "warm run retraced");
        assert_eq!(warm_stats.checks, 0, "warm run rechecked");
        assert!(warm_stats.disk_loads >= 1);
        // The trace and executable load on demand too.
        let _ = warm.trace(&config());
        let _ = warm.compile(&config());
        let warm_stats = warm.cache_stats();
        assert_eq!(warm_stats.compiles, 0);
        assert_eq!(warm_stats.traces, 0);
        assert_eq!(warm_stats.disk_loads, 3);
    }

    #[test]
    fn stack_backend_artifacts_persist_under_their_own_fingerprints() {
        let scratch = Scratch::new("stack");
        let subject = Subject::from_seed(7550);
        subject.attach_store(Arc::clone(&scratch.store));
        let reg_config = config();
        let stack_config = config().with_backend(holes_compiler::BackendKind::Stack);
        let reg_violations = subject.violations(&reg_config);
        let stack_violations = subject.violations(&stack_config);
        assert_eq!(subject.cache_stats().compiles, 2, "backends aliased");
        // A fresh cache loads both backends' artifacts from disk, each
        // decoding to its own backend's machine code.
        let warm = subject.with_fresh_cache();
        warm.attach_store(Arc::clone(&scratch.store));
        assert_eq!(warm.violations(&reg_config), reg_violations);
        assert_eq!(warm.violations(&stack_config), stack_violations);
        assert_eq!(warm.cache_stats().compiles, 0);
        let reg_exe = warm.compile(&reg_config);
        let stack_exe = warm.compile(&stack_config);
        assert_eq!(warm.cache_stats().compiles, 0);
        assert!(reg_exe.machine.as_reg().is_some());
        assert!(stack_exe.machine.as_stack().is_some());
    }

    #[test]
    fn corrupted_store_files_are_recomputed_never_trusted() {
        let scratch = Scratch::new("corrupt");
        let subject = Subject::from_seed(7200);
        subject.attach_store(Arc::clone(&scratch.store));
        let truth = subject.violations(&config());

        // Corrupt every artifact file in a different way.
        let mut corrupted = 0;
        for (index, entry) in walk_files(&scratch.root).into_iter().enumerate() {
            let text = std::fs::read_to_string(&entry).unwrap();
            let bad = match index % 3 {
                0 => text[..text.len() / 2].to_owned(), // truncated
                1 => text.replace("\"checksum\":\"", "\"checksum\":\"0"), // checksum mismatch
                _ => "not json at all".to_owned(),
            };
            std::fs::write(&entry, bad).unwrap();
            corrupted += 1;
        }
        assert!(corrupted >= 3, "expected several artifact files");

        let reread = subject.with_fresh_cache();
        reread.attach_store(Arc::clone(&scratch.store));
        assert_eq!(reread.violations(&config()), truth);
        let stats = reread.cache_stats();
        assert_eq!(stats.disk_loads, 0, "a corrupted file was trusted");
        assert_eq!(stats.compiles, 1, "recompute must happen exactly once");
        assert!(scratch.store.stats().rejected >= 1);

        // The rewrite healed the store: a third fresh cache loads cleanly.
        let healed = subject.with_fresh_cache();
        healed.attach_store(Arc::clone(&scratch.store));
        assert_eq!(healed.violations(&config()), truth);
        assert_eq!(healed.cache_stats().compiles, 0);
    }

    #[test]
    fn mismatched_configurations_never_alias() {
        let scratch = Scratch::new("alias");
        let subject = Subject::from_seed(7300);
        subject.attach_store(Arc::clone(&scratch.store));
        let o2 = subject.compile(&config());

        // Forge a file under the -O3 fingerprint carrying the -O2 payload.
        let o3 = config().clone();
        let o3 = CompilerConfig {
            level: OptLevel::O3,
            ..o3
        };
        let key = SubjectKey::derive(subject.seed, &subject.source.text);
        let from = scratch.store.path_for(key, config().fingerprint(), "exe");
        let to = scratch.store.path_for(key, o3.fingerprint(), "exe");
        std::fs::copy(&from, &to).unwrap();
        // The forged envelope fails the fingerprint check and is rejected.
        assert!(scratch.store.load_executable(key, &o3).is_none());
        assert!(scratch.store.stats().rejected >= 1);
        // And compiling -O3 for real yields the right artifact.
        let real = subject.compile(&o3);
        assert_eq!(real.config.level, OptLevel::O3);
        assert_eq!(o2.config.level, OptLevel::O2);
    }

    #[test]
    fn envelopes_without_a_payload_count_as_rejected() {
        let scratch = Scratch::new("no-payload");
        let subject = Subject::from_seed(7500);
        subject.attach_store(Arc::clone(&scratch.store));
        let _ = subject.violations(&config());
        // Strip the payload from every envelope but keep the rest intact —
        // the file still parses and all identity fields still match.
        for file in walk_files(&scratch.root) {
            let text = std::fs::read_to_string(&file).unwrap();
            let json = Json::parse(&text).unwrap();
            let Json::Obj(pairs) = json else { panic!() };
            let stripped: Vec<_> = pairs.into_iter().filter(|(k, _)| k != "payload").collect();
            std::fs::write(&file, Json::Obj(stripped).to_compact()).unwrap();
        }
        let before = scratch.store.stats().rejected;
        let reread = subject.with_fresh_cache();
        reread.attach_store(Arc::clone(&scratch.store));
        let _ = reread.violations(&config());
        assert_eq!(reread.cache_stats().disk_loads, 0);
        assert!(
            scratch.store.stats().rejected > before,
            "payload-less envelopes must be counted as rejected"
        );
    }

    /// Backdate every file of the given fingerprint so a GC sweep sees it
    /// as the oldest.
    fn age_fingerprint(root: &Path, fingerprint: Fingerprint, secs_ago: u64) {
        let spelled = fingerprint.to_string();
        let target = std::time::SystemTime::now() - std::time::Duration::from_secs(secs_ago);
        for file in walk_files(root) {
            if file
                .file_name()
                .is_some_and(|n| n.to_string_lossy().starts_with(&spelled))
            {
                let handle = std::fs::File::options().write(true).open(&file).unwrap();
                handle
                    .set_times(std::fs::FileTimes::new().set_modified(target))
                    .unwrap();
            }
        }
    }

    fn store_bytes(root: &Path) -> u64 {
        walk_files(root)
            .iter()
            .map(|f| std::fs::metadata(f).map(|m| m.len()).unwrap_or(0))
            .sum()
    }

    #[test]
    fn gc_evicts_oldest_fingerprints_and_respects_the_budget() {
        let scratch = Scratch::new("gc");
        let subject = Subject::from_seed(7600);
        subject.attach_store(Arc::clone(&scratch.store));
        let old_config = CompilerConfig::new(Personality::Ccg, OptLevel::O0);
        let new_config = config(); // -O2
        let _ = subject.violations(&old_config);
        let _ = subject.violations(&new_config);
        let total = store_bytes(&scratch.root);
        assert!(total > 0);
        // Age the O0 artifacts far into the past; a budget that can keep
        // only one fingerprint must evict exactly that one.
        age_fingerprint(&scratch.root, old_config.fingerprint(), 3600);
        let stats = scratch.store.gc(total - 1).unwrap();
        assert_eq!(stats.scanned_bytes, total);
        assert_eq!(stats.evicted_fingerprints, 1, "{stats:?}");
        assert!(stats.remaining_bytes < total);
        assert_eq!(store_bytes(&scratch.root), stats.remaining_bytes);
        // The newest fingerprint survived intact; the evicted one is gone
        // as a whole family and is recomputed, not trusted.
        let warm = subject.with_fresh_cache();
        warm.attach_store(Arc::clone(&scratch.store));
        let _ = warm.violations(&new_config);
        assert_eq!(warm.cache_stats().compiles, 0, "survivor went cold");
        let _ = warm.violations(&old_config);
        assert_eq!(warm.cache_stats().compiles, 1, "evicted entry not rebuilt");
        // A zero budget empties the store entirely.
        let stats = scratch.store.gc(0).unwrap();
        assert_eq!(stats.remaining_bytes, 0);
        assert_eq!(store_bytes(&scratch.root), 0);
    }

    /// Regression test: an unreadable mtime used to default to the Unix
    /// epoch, which made the sweep treat the affected family as the oldest
    /// on disk and evict it first. It must rank as the newest instead.
    #[test]
    fn gc_treats_unreadable_mtimes_as_newest_not_oldest() {
        let sweep_started = std::time::SystemTime::now();
        let aged = sweep_started - std::time::Duration::from_secs(3600);
        let unreadable = observed_mtime(Err(std::io::Error::other("stat failed")), sweep_started);
        assert_eq!(unreadable, sweep_started);
        assert!(
            unreadable > aged,
            "a family with an unreadable timestamp must sort after aged ones"
        );
        // A readable timestamp passes through untouched.
        assert_eq!(observed_mtime(Ok(aged), sweep_started), aged);
    }

    /// Groups whose timestamps tie are evicted in deterministic
    /// (subject, fingerprint) order, so two sweeps of identical stores
    /// delete the same families.
    #[test]
    fn gc_breaks_mtime_ties_deterministically_by_fingerprint() {
        let scratch = Scratch::new("gc-ties");
        let subject = Subject::from_seed(7600);
        subject.attach_store(Arc::clone(&scratch.store));
        let a = CompilerConfig::new(Personality::Ccg, OptLevel::O0);
        let b = config(); // -O2
        let _ = subject.violations(&a);
        let _ = subject.violations(&b);
        // Give both families the exact same mtime.
        age_fingerprint(&scratch.root, a.fingerprint(), 3600);
        let target = std::time::SystemTime::now() - std::time::Duration::from_secs(3600);
        for file in walk_files(&scratch.root) {
            let handle = std::fs::File::options().write(true).open(&file).unwrap();
            handle
                .set_times(std::fs::FileTimes::new().set_modified(target))
                .unwrap();
        }
        let total = store_bytes(&scratch.root);
        let stats = scratch.store.gc(total - 1).unwrap();
        assert_eq!(stats.evicted_fingerprints, 1, "{stats:?}");
        // The evicted family is the lexicographically smaller fingerprint:
        // the survivor's files all carry the larger one.
        let smaller = a.fingerprint().to_string().min(b.fingerprint().to_string());
        for file in walk_files(&scratch.root) {
            let name = file.file_name().unwrap().to_string_lossy().into_owned();
            assert!(
                !name.starts_with(&smaller),
                "tie-break evicted the wrong family: {name} survived"
            );
        }
    }

    #[test]
    fn gc_survives_concurrent_shard_writes() {
        let scratch = Scratch::new("gc-concurrent");
        // Writers populate the store while sweeps run against a tiny
        // budget; nothing may panic, and the store must stay functional.
        std::thread::scope(|scope| {
            for lane in 0..3u64 {
                let store = Arc::clone(&scratch.store);
                scope.spawn(move || {
                    for offset in 0..3u64 {
                        let subject = Subject::from_seed(7700 + lane * 10 + offset);
                        subject.attach_store(Arc::clone(&store));
                        let _ = subject.violations(&config());
                    }
                });
            }
            let store = Arc::clone(&scratch.store);
            scope.spawn(move || {
                for _ in 0..20 {
                    store.gc(256).unwrap();
                    std::thread::yield_now();
                }
            });
        });
        // A final sweep lands under budget, and the store still serves a
        // normal cold-compute / warm-load cycle afterwards.
        let stats = scratch.store.gc(256).unwrap();
        assert!(stats.remaining_bytes <= 256, "{stats:?}");
        let subject = Subject::from_seed(7700);
        subject.attach_store(Arc::clone(&scratch.store));
        let truth = subject.violations(&config());
        let warm = subject.with_fresh_cache();
        warm.attach_store(Arc::clone(&scratch.store));
        assert_eq!(warm.violations(&config()), truth);
        assert_eq!(warm.cache_stats().compiles, 0);
    }

    /// A scratch store whose I/O seam is a [`FailingIo`] schedule.
    fn failing_scratch(name: &str, io: FailingIo) -> (Arc<ArtifactStore>, PathBuf) {
        let root = std::env::temp_dir().join(format!(
            "holes-store-{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id(),
        ));
        let _ = std::fs::remove_dir_all(&root);
        let store = ArtifactStore::open_with_io(&root, Box::new(io)).expect("open store");
        (Arc::new(store), root)
    }

    #[test]
    fn transient_io_failures_are_retried_and_change_nothing_but_stats() {
        // Op 1 is open's create_dir_all (always succeeds here); fail a burst
        // of later operations once each — every one recovers on retry.
        let schedule = [false, true, false, true, true, false, true];
        let (store, root) = failing_scratch("retry", FailingIo::script(schedule));
        let truth = {
            let plain = Subject::from_seed(7800);
            plain.violations(&config())
        };
        let subject = Subject::from_seed(7800);
        subject.attach_store(Arc::clone(&store));
        assert_eq!(subject.violations(&config()), truth);
        let stats = store.stats();
        assert!(stats.retries >= 1, "{stats:?}");
        assert_eq!(stats.store_errors, 0, "a retried op still failed");
        assert_eq!(stats.quarantined, 0);
        // The store healed past the schedule: a warm run loads everything.
        let warm = subject.with_fresh_cache();
        warm.attach_store(Arc::clone(&store));
        assert_eq!(warm.violations(&config()), truth);
        assert_eq!(warm.cache_stats().compiles, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn persistent_io_failures_degrade_to_memory_only_with_correct_results() {
        // After open's create_dir_all, every operation fails: the store can
        // never be read or written, and the subject must silently recompute
        // everything.
        let schedule = std::iter::once(false).chain(std::iter::repeat_n(true, 10_000));
        let (store, root) = failing_scratch("dead", FailingIo::script(schedule));
        let truth = {
            let plain = Subject::from_seed(7810);
            plain.violations(&config())
        };
        let subject = Subject::from_seed(7810);
        subject.attach_store(Arc::clone(&store));
        assert_eq!(subject.violations(&config()), truth);
        assert_eq!(subject.cache_stats().compiles, 1);
        let stats = store.stats();
        assert_eq!(stats.writes, 0, "{stats:?}");
        assert_eq!(stats.loads, 0, "{stats:?}");
        assert!(stats.store_errors >= 1, "{stats:?}");
        assert!(stats.retries >= stats.store_errors * 2, "{stats:?}");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rejected_files_are_quarantined_for_post_mortem() {
        let scratch = Scratch::new("quarantine");
        let subject = Subject::from_seed(7820);
        subject.attach_store(Arc::clone(&scratch.store));
        let truth = subject.violations(&config());
        let files = walk_files(&scratch.root);
        let victim = files.first().expect("store has artifacts").clone();
        let original_name = victim.file_name().unwrap().to_owned();
        std::fs::write(&victim, "garbage").unwrap();

        let reread = subject.with_fresh_cache();
        reread.attach_store(Arc::clone(&scratch.store));
        assert_eq!(reread.violations(&config()), truth);
        // Touch every artifact kind so the damaged one is found, rejected,
        // and rewritten regardless of which file the walk picked.
        let _ = reread.trace(&config());
        let _ = reread.compile(&config());
        let stats = scratch.store.stats();
        assert!(stats.quarantined >= 1, "{stats:?}");
        // The damaged bytes moved under <root>/quarantine/<subject>/ with
        // their original file name, and the live slot was rewritten.
        let quarantined: Vec<PathBuf> = walk_files(&scratch.root.join("quarantine"));
        assert!(
            quarantined
                .iter()
                .any(|p| p.file_name() == Some(&original_name)),
            "{quarantined:?}"
        );
        let moved = quarantined
            .iter()
            .find(|p| p.file_name() == Some(&original_name))
            .unwrap();
        assert_eq!(std::fs::read_to_string(moved).unwrap(), "garbage");
        assert!(victim.exists(), "the live slot was not healed");
        // Quarantine is invisible to gc: a full sweep leaves it alone.
        scratch.store.gc(0).unwrap();
        assert!(moved.exists());
    }

    #[test]
    fn gc_skips_the_quarantine_directory_entirely() {
        let scratch = Scratch::new("gc-quarantine");
        let subject = Subject::from_seed(7830);
        subject.attach_store(Arc::clone(&scratch.store));
        let _ = subject.violations(&config());
        let live_bytes = store_bytes(&scratch.root);
        assert!(live_bytes > 0);
        // Populate the quarantine area both ways a post-mortem can leave it:
        // the usual <root>/quarantine/<subject>/<file> nesting and a file
        // directly under <root>/quarantine/ — gc must treat neither as
        // subject artifacts.
        let quarantine = scratch.root.join("quarantine");
        std::fs::create_dir_all(quarantine.join("s7830")).unwrap();
        std::fs::write(
            quarantine.join("s7830").join("deadbeef.exe.json"),
            "evidence",
        )
        .unwrap();
        std::fs::write(quarantine.join("deadbeef.trace.json"), "stray evidence").unwrap();
        let stats = scratch.store.gc(0).unwrap();
        // The sweep emptied the live store without ever counting — or
        // deleting — the quarantined bytes: every surviving file is under
        // quarantine/.
        assert_eq!(stats.scanned_bytes, live_bytes, "{stats:?}");
        let survivors = walk_files(&scratch.root);
        assert!(
            !survivors.is_empty() && survivors.iter().all(|p| p.starts_with(&quarantine)),
            "{survivors:?}"
        );
        assert_eq!(
            std::fs::read_to_string(quarantine.join("s7830").join("deadbeef.exe.json")).unwrap(),
            "evidence"
        );
        assert_eq!(
            std::fs::read_to_string(quarantine.join("deadbeef.trace.json")).unwrap(),
            "stray evidence"
        );
    }

    #[test]
    fn fetch_envelope_refuses_path_escaping_kinds() {
        let scratch = Scratch::new("fetch-kind-gate");
        // A victim file inside the root but outside any subject directory —
        // the position of e.g. a journal a traversal kind could reach.
        let victim = scratch.root.join("victim.json");
        std::fs::write(&victim, "{\"format\":\"not-an-artifact\"}\n").unwrap();
        for kind in ["k/../../victim", "../victim", "k\\..\\victim", "", "."] {
            assert!(
                scratch
                    .store
                    .fetch_envelope(SubjectKey(1), Fingerprint(2), kind)
                    .is_none(),
                "kind `{kind}` must not resolve"
            );
        }
        assert!(
            victim.exists(),
            "a traversal fetch must not quarantine files outside subject dirs"
        );
        assert_eq!(
            scratch.store.stats().rejected,
            0,
            "gated kinds never reach the content validator"
        );
    }

    #[test]
    fn tmp_files_never_linger_after_saves() {
        let scratch = Scratch::new("tmp");
        let subject = Subject::from_seed(7400);
        subject.attach_store(Arc::clone(&scratch.store));
        let _ = subject.violations(&config());
        let leftovers: Vec<PathBuf> = walk_files(&scratch.root)
            .into_iter()
            .filter(|p| p.extension().is_some_and(|e| e == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
    }

    fn walk_files(root: &Path) -> Vec<PathBuf> {
        let mut files = Vec::new();
        let mut stack = vec![root.to_path_buf()];
        while let Some(dir) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&dir) else {
                continue;
            };
            for entry in entries.flatten() {
                let path = entry.path();
                if path.is_dir() {
                    stack.push(path);
                } else {
                    files.push(path);
                }
            }
        }
        files.sort();
        files
    }
}
