//! Streaming campaign output: the JSON Lines shard format
//! (`holes.campaign-jsonl/v1`) that bounds memory at millions of seeds.
//!
//! A `holes.campaign/v1` shard file is one JSON document, which forces the
//! driver to hold every violation record of the shard in memory until the
//! run completes. This module streams instead: one compact JSON value per
//! line —
//!
//! 1. a **header** carrying the same identity fields as the classic format
//!    (`format`, `personality`, `compiler_version`, `seeds`, `shards`,
//!    `shard`, `levels`),
//! 2. one **record** per violation, in the same canonical order and with
//!    the same schema as the `records` array of the classic format,
//! 3. a **footer** `{"end": true, "programs": …, "records": …}` whose
//!    counts let the reader reject truncated files.
//!
//! [`run_shard_streaming`] evaluates seeds in bounded parallel chunks and
//! emits each chunk's records as soon as they are ready, so peak memory is
//! proportional to the chunk size — never to the seed range. On the
//! consuming side, [`fold_jsonl_reader`] is the symmetric **streaming
//! reader**: it revalidates everything the classic parser does (per-record
//! membership, canonical order — checked pairwise against only the
//! previous record — and the footer counts), reports errors with the
//! **record index and line number**, and hands each record to a fold
//! callback instead of materializing a vector, so `holes report` aggregates
//! arbitrarily large shards in bounded memory. [`read_jsonl_shard`] wraps
//! the fold into an ordinary [`CampaignShard`] for consumers that do need
//! the records: merging JSONL shards through
//! [`crate::shard::merge_shards`] is byte-identical to merging classic
//! shards, which the CLI and test suite hold it to.

use std::io::Write;

use holes_compiler::OptLevel;
use holes_core::json::Json;

use crate::campaign::{subject_records, CampaignResult, ViolationRecord};
use crate::fault::{self, FaultPolicy, SubjectFault, SubjectOutcome};
use crate::shard::{
    check_record_order, fault_from_json, fault_to_json, parse_levels, parse_spec_header,
    record_from_json, record_to_json, spec_header_pairs, CampaignShard, CampaignSpec, ShardError,
};
use crate::{par, CacheStats, Subject};

/// The identifying first-line `format` value of a JSON Lines shard file.
pub const CAMPAIGN_JSONL_FORMAT: &str = "holes.campaign-jsonl/v1";

/// A failure while producing or consuming a record stream: either the
/// campaign data itself is bad, or the underlying writer failed.
#[derive(Debug)]
pub enum StreamError {
    /// The spec or a record is invalid (see [`ShardError`]).
    Shard(ShardError),
    /// The output sink failed.
    Io(std::io::Error),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Shard(e) => e.fmt(f),
            StreamError::Io(e) => write!(f, "writing campaign stream: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<ShardError> for StreamError {
    fn from(error: ShardError) -> StreamError {
        StreamError::Shard(error)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(error: std::io::Error) -> StreamError {
        StreamError::Io(error)
    }
}

/// An incremental writer of the JSON Lines shard format. Records are
/// flushed to the sink as they arrive; nothing is accumulated.
pub struct CampaignJsonlWriter<W: Write> {
    out: W,
    spec: CampaignSpec,
    records: usize,
    faults: usize,
}

impl<W: Write> CampaignJsonlWriter<W> {
    /// Validate the spec and emit the header line.
    ///
    /// # Errors
    ///
    /// Returns the spec validation failure or the sink's I/O error.
    pub fn new(out: W, spec: &CampaignSpec) -> Result<CampaignJsonlWriter<W>, StreamError> {
        CampaignJsonlWriter::resume(out, spec, 0, 0, true)
    }

    /// A writer continuing a stream whose intact prefix already carries
    /// `records` record lines and `faults` fault lines ([`CampaignJsonlWriter::new`]
    /// is the `(0, 0, emit_header: true)` case). The kept counts flow into
    /// the footer, so a resumed file ends exactly like an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Returns the spec validation failure or the sink's I/O error.
    pub fn resume(
        mut out: W,
        spec: &CampaignSpec,
        records: usize,
        faults: usize,
        emit_header: bool,
    ) -> Result<CampaignJsonlWriter<W>, StreamError> {
        spec.validate()?;
        if emit_header {
            let header = Json::Obj(spec_header_pairs(spec, CAMPAIGN_JSONL_FORMAT));
            writeln!(out, "{}", header.to_compact())?;
        }
        Ok(CampaignJsonlWriter {
            out,
            spec: spec.clone(),
            records,
            faults,
        })
    }

    /// Emit one record line.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error.
    pub fn write_record(&mut self, record: &ViolationRecord) -> Result<(), StreamError> {
        writeln!(self.out, "{}", record_to_json(record).to_compact())?;
        self.records += 1;
        Ok(())
    }

    /// Emit one contained-fault line (see [`crate::fault`]). Fault lines
    /// carry a `fault` key, which records never do, so readers can tell the
    /// two apart without a schema change.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error.
    pub fn write_fault(&mut self, subject_fault: &SubjectFault) -> Result<(), StreamError> {
        writeln!(self.out, "{}", fault_to_json(subject_fault).to_compact())?;
        self.faults += 1;
        Ok(())
    }

    /// Emit the footer line and return the sink. A file without a footer is
    /// truncated by definition, so readers reject it. The `faulted` count
    /// appears only when faults occurred, keeping no-fault streams
    /// byte-identical to the pre-containment format.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error.
    pub fn finish(mut self) -> Result<W, StreamError> {
        let programs = self.spec.seeds.shard_len(self.spec.shards, self.spec.shard);
        let mut pairs = vec![
            ("end".to_owned(), Json::Bool(true)),
            ("programs".to_owned(), Json::from_u64(programs)),
            ("records".to_owned(), Json::from_usize(self.records)),
        ];
        if self.faults > 0 {
            pairs.push(("faulted".to_owned(), Json::from_usize(self.faults)));
        }
        writeln!(self.out, "{}", Json::Obj(pairs).to_compact())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// How many seeds each parallel evaluation chunk covers: enough to keep the
/// worker pool saturated, small enough to bound the records held in memory.
fn chunk_size() -> usize {
    (par::max_workers() * 4).max(1)
}

/// What a streaming shard run produced: the line counts of the emitted
/// stream plus the evaluation-engine activity behind them.
#[derive(Debug, Clone, Default)]
pub struct StreamRun {
    /// Record lines emitted (kept **and** new on a resumed run).
    pub records: usize,
    /// Fault lines emitted — subjects whose evaluation was contained by the
    /// [`crate::fault`] layer instead of completing.
    pub faulted: usize,
    /// Evaluation-engine activity aggregated over the subjects this run
    /// actually evaluated (what `holes campaign --stats` reports).
    pub stats: CacheStats,
}

/// Evaluate the shard's seeds from global subject index `from_index`
/// onwards, writing each subject's lines as its chunk completes — the
/// shared engine of [`run_shard_streaming_with_policy`] and
/// [`resume_shard_streaming`]. Each subject runs under
/// [`fault::contain`], so a panicking or fuel-exhausted subject becomes one
/// fault line instead of tearing down the shard.
fn stream_seeds<W: Write>(
    writer: &mut CampaignJsonlWriter<W>,
    spec: &CampaignSpec,
    policy: &FaultPolicy,
    from_index: usize,
) -> Result<CacheStats, StreamError> {
    let levels = spec.personality.levels().to_vec();
    let mut stats = CacheStats::default();
    let start = spec.seeds.start;
    let mut seeds = spec
        .seeds
        .shard_seeds(spec.shards, spec.shard)
        .filter(|&seed| (seed - start) as usize >= from_index);
    loop {
        let chunk: Vec<u64> = seeds.by_ref().take(chunk_size()).collect();
        if chunk.is_empty() {
            break;
        }
        let per_seed = par::par_map(&chunk, |_, &seed| {
            let global_index = (seed - start) as usize;
            fault::contain(policy, seed, global_index, || {
                let subject = Subject::from_seed(seed).with_fuel_limit(policy.fuel_limit);
                let records = subject_records(
                    &subject,
                    global_index,
                    spec.personality,
                    spec.version,
                    spec.backend,
                    &levels,
                );
                (records, subject.cache_stats())
            })
        });
        for outcome in per_seed {
            match outcome {
                SubjectOutcome::Completed((records, subject_stats)) => {
                    stats.absorb(subject_stats);
                    for record in &records {
                        writer.write_record(record)?;
                        crate::serve::chaos::on_line_emitted();
                    }
                }
                SubjectOutcome::Faulted(subject_fault) => {
                    writer.write_fault(&subject_fault)?;
                    crate::serve::chaos::on_line_emitted();
                }
            }
        }
    }
    Ok(stats)
}

/// Run one campaign shard, streaming each seed's records to `out` as soon
/// as they are computed. Seeds are evaluated in parallel chunks and emitted
/// in seed order, so the stream's record sequence is exactly the classic
/// driver's — but the full record vector is **never** materialized, and
/// subjects are dropped as their chunk completes.
///
/// Returns the number of records emitted and the evaluation-engine
/// activity aggregated over all subjects (what `holes campaign --stats`
/// reports). Runs with the default (inert) [`FaultPolicy`]; use
/// [`run_shard_streaming_with_policy`] to contain faulting subjects.
///
/// # Errors
///
/// Returns the spec validation failure or the sink's I/O error.
pub fn run_shard_streaming<W: Write>(
    spec: &CampaignSpec,
    out: W,
) -> Result<(usize, CacheStats), StreamError> {
    let run = run_shard_streaming_with_policy(spec, out, &FaultPolicy::default())?;
    Ok((run.records, run.stats))
}

/// [`run_shard_streaming`] under an explicit [`FaultPolicy`]: each subject
/// is evaluated inside [`fault::contain`], and contained faults are emitted
/// as `{"fault": …}` lines in subject order, interleaved with the record
/// lines. With the default policy the output is byte-identical to
/// [`run_shard_streaming`].
///
/// # Errors
///
/// Returns the spec validation failure or the sink's I/O error.
pub fn run_shard_streaming_with_policy<W: Write>(
    spec: &CampaignSpec,
    out: W,
    policy: &FaultPolicy,
) -> Result<StreamRun, StreamError> {
    let mut writer = CampaignJsonlWriter::new(out, spec)?;
    let stats = stream_seeds(&mut writer, spec, policy, 0)?;
    let (records, faulted) = (writer.records, writer.faults);
    writer.finish()?;
    Ok(StreamRun {
        records,
        faulted,
        stats,
    })
}

/// Fold a complete set of shard runs into one **unsharded** JSON Lines
/// stream, byte-identical to [`run_shard_streaming_with_policy`] over the
/// whole range in a single process — the merge seam the distributed
/// coordinator ([`crate::serve`]) writes its final report through.
///
/// The shards are validated exactly like [`crate::shard::merge_shards`]
/// (same campaign, indices covering `0..shards` once — so a duplicate or
/// double-submitted shard is rejected, never double-counted), their records
/// and faults are stably sorted by global subject index, and the lines are
/// interleaved in ascending subject order. A subject either faults or
/// yields records, never both, so that interleaving reproduces the
/// single-process writer's line sequence exactly; the emitted header and
/// footer describe the unsharded campaign.
///
/// # Errors
///
/// Returns the shard-set validation failure or the sink's I/O error.
pub fn write_merged_stream<W: Write>(
    shards: Vec<CampaignShard>,
    out: W,
) -> Result<StreamRun, StreamError> {
    let specs: Vec<CampaignSpec> = shards.iter().map(|s| s.spec.clone()).collect();
    let first = crate::shard::validate_shard_specs(&specs)?;
    let merged = crate::shard::merge_shards(shards)?;
    let mut spec = first;
    spec.shards = 1;
    spec.shard = 0;
    let mut writer = CampaignJsonlWriter::new(out, &spec)?;
    let mut faults = merged.faults.iter();
    let mut pending_fault = faults.next();
    for record in &merged.records {
        while let Some(subject_fault) = pending_fault {
            if subject_fault.subject >= record.subject {
                break;
            }
            writer.write_fault(subject_fault)?;
            pending_fault = faults.next();
        }
        writer.write_record(record)?;
    }
    while let Some(subject_fault) = pending_fault {
        writer.write_fault(subject_fault)?;
        pending_fault = faults.next();
    }
    let (records, faulted) = (writer.records, writer.faults);
    writer.finish()?;
    Ok(StreamRun {
        records,
        faulted,
        stats: CacheStats::default(),
    })
}

/// Whether `text` looks like a JSON Lines shard file (first line is a
/// `holes.campaign-jsonl/v1` header) — how `holes report` auto-detects the
/// format of each input file.
pub fn is_jsonl_shard(text: &str) -> bool {
    let first = text.lines().next().unwrap_or("");
    Json::parse(first)
        .ok()
        .and_then(|header| {
            header
                .get("format")
                .and_then(Json::as_str)
                .map(|format| format == CAMPAIGN_JSONL_FORMAT)
        })
        .unwrap_or(false)
}

fn malformed(line: usize, message: impl std::fmt::Display) -> ShardError {
    ShardError::Malformed(format!("line {}: {message}", line + 1))
}

/// What [`fold_jsonl_shard`] validated about a stream, once the footer has
/// confirmed it was complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlSummary {
    /// The campaign spec from the header.
    pub spec: CampaignSpec,
    /// The level schedule from the header (already checked against the
    /// personality).
    pub levels: Vec<OptLevel>,
    /// Programs covered by the shard, per the footer.
    pub programs: usize,
    /// Records handed to the fold callback.
    pub records: usize,
    /// Contained subject faults carried by the stream, in subject order.
    /// Empty for streams produced without a fault policy.
    pub faults: Vec<SubjectFault>,
}

/// Parse and validate a JSON Lines shard **header line** (the format's
/// first line): the spec and level schedule, without touching any record.
/// Streaming consumers use this to size their accumulators before folding.
///
/// # Errors
///
/// Returns a [`ShardError`] when the line is not a valid
/// `holes.campaign-jsonl/v1` header.
pub fn parse_jsonl_header(line: &str) -> Result<(CampaignSpec, Vec<OptLevel>), ShardError> {
    parse_jsonl_header_at(line, 0)
}

/// [`parse_jsonl_header`] with the header's real 0-based line number for
/// error context — the shared implementation [`fold_jsonl_reader`] uses,
/// since blank lines may precede the header.
fn parse_jsonl_header_at(
    line: &str,
    line_no: usize,
) -> Result<(CampaignSpec, Vec<OptLevel>), ShardError> {
    let header = Json::parse(line).map_err(|e| malformed(line_no, format!("bad header: {e}")))?;
    let format = header
        .get("format")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed(line_no, "missing `format`"))?;
    if format != CAMPAIGN_JSONL_FORMAT {
        return Err(malformed(
            line_no,
            format!("unsupported format `{format}` (expected `{CAMPAIGN_JSONL_FORMAT}`)"),
        ));
    }
    let spec = parse_spec_header(&header).map_err(|e| e.contextualize("header"))?;
    let levels = parse_levels(&header, spec.personality).map_err(|e| e.contextualize("header"))?;
    Ok((spec, levels))
}

/// Stream a JSON Lines shard through a record callback, **line by line from
/// a reader**: each record is parsed, validated, handed to `each`, and
/// dropped, so a consumer folding into an aggregate (the `holes report`
/// accumulator) reads a million-record shard in bounded memory — the
/// reader state is one line buffer, the spec, the previous record (for the
/// canonical-order check), and the running count.
///
/// Every validation of the materializing parser applies — header
/// consistency, per-record membership and subject-index checks, canonical
/// record order, and the footer's truncation-detecting counts — and errors
/// name the offending line and record index. Records handed to `each`
/// before an error is discovered must be discarded by the caller (an
/// aggregate built from a stream that later fails validation is
/// meaningless).
///
/// # Errors
///
/// Returns the first malformed line as a [`StreamError::Shard`], or the
/// reader's failure as [`StreamError::Io`].
pub fn fold_jsonl_reader<R: std::io::BufRead>(
    reader: R,
    mut each: impl FnMut(ViolationRecord),
) -> Result<JsonlSummary, StreamError> {
    let mut lines = reader
        .lines()
        .enumerate()
        .filter(|(_, l)| l.as_ref().map_or(true, |l| !l.trim().is_empty()))
        .peekable();
    let (line_no, header_text) = match lines.next() {
        None => {
            return Err(ShardError::Malformed(
                "truncated stream (0 intact records): the file is empty; \
                 rerun with --resume to complete it"
                    .into(),
            )
            .into())
        }
        Some((line_no, text)) => (line_no, text?),
    };
    let (spec, levels) = parse_jsonl_header_at(&header_text, line_no)?;

    let mut count = 0usize;
    let mut previous: Option<ViolationRecord> = None;
    let mut faults: Vec<SubjectFault> = Vec::new();
    let mut footer: Option<(usize, Json)> = None;
    while let Some((line_no, line)) = lines.next() {
        let line = line?;
        if let Some((footer_line, _)) = footer {
            return Err(malformed(
                line_no,
                format!("content after the footer on line {}", footer_line + 1),
            )
            .into());
        }
        let value = match Json::parse(&line) {
            Ok(value) => value,
            // A final line that fails to parse is the signature of a killed
            // writer: everything before it is intact, only the cut tail is
            // missing. Point the user at the recovery path instead of at a
            // JSON syntax error.
            Err(_) if lines.peek().is_none() => {
                return Err(malformed(
                    line_no,
                    format!(
                        "truncated stream ({count} intact records): \
                         the final line is cut mid-record; rerun with --resume to complete it"
                    ),
                )
                .into())
            }
            Err(e) => return Err(malformed(line_no, e).into()),
        };
        if value.get("end").is_some() {
            footer = Some((line_no, value));
            continue;
        }
        if value.get("fault").is_some() {
            let subject_fault = fault_from_json(&value, &spec)
                .map_err(|e| e.contextualize(&format!("line {}", line_no + 1)))?;
            let floor = previous
                .as_ref()
                .map(|r| r.subject)
                .max(faults.last().map(|f| f.subject));
            if floor.is_some_and(|floor| subject_fault.subject <= floor) {
                return Err(malformed(
                    line_no,
                    format!(
                        "fault for subject {} violates canonical campaign order \
                         (a line for subject {} precedes it)",
                        subject_fault.subject,
                        floor.expect("floor is Some")
                    ),
                )
                .into());
            }
            faults.push(subject_fault);
            continue;
        }
        let record = record_from_json(&value, &spec).map_err(|e| {
            e.for_record(count)
                .contextualize(&format!("line {}", line_no + 1))
        })?;
        if let Some(prev) = &previous {
            check_record_order(count - 1, prev, &record, &spec)?;
        }
        if let Some(last_fault) = faults.last() {
            if record.subject <= last_fault.subject {
                return Err(malformed(
                    line_no,
                    format!(
                        "record for subject {} violates canonical campaign order \
                         (subject {} already faulted)",
                        record.subject, last_fault.subject
                    ),
                )
                .into());
            }
        }
        previous = Some(record.clone());
        each(record);
        count += 1;
    }
    let (footer_line, footer) = footer.ok_or_else(|| {
        ShardError::Malformed(format!(
            "truncated stream ({count} intact records, missing footer); \
             rerun with --resume to complete it"
        ))
    })?;
    if footer.get("end").and_then(Json::as_bool) != Some(true) {
        return Err(malformed(footer_line, "footer `end` is not `true`").into());
    }
    let programs = footer
        .get("programs")
        .and_then(Json::as_usize)
        .ok_or_else(|| malformed(footer_line, "footer is missing `programs`"))?;
    if programs as u64 != spec.seeds.shard_len(spec.shards, spec.shard) {
        return Err(malformed(
            footer_line,
            format!(
                "program count {programs} does not match shard {} of {} over {}",
                spec.shard, spec.shards, spec.seeds
            ),
        )
        .into());
    }
    let declared = footer
        .get("records")
        .and_then(Json::as_usize)
        .ok_or_else(|| malformed(footer_line, "footer is missing `records`"))?;
    if declared != count {
        return Err(malformed(
            footer_line,
            format!("footer declares {declared} records but the stream carries {count}"),
        )
        .into());
    }
    let declared_faulted = footer.get("faulted").and_then(Json::as_usize).unwrap_or(0);
    if declared_faulted != faults.len() {
        return Err(malformed(
            footer_line,
            format!(
                "footer declares {declared_faulted} faulted subjects but the stream carries {}",
                faults.len()
            ),
        )
        .into());
    }
    Ok(JsonlSummary {
        spec,
        levels,
        programs,
        records: count,
        faults,
    })
}

/// [`fold_jsonl_reader`] over an in-memory stream.
///
/// # Errors
///
/// Returns a [`ShardError`] describing the first malformed line.
pub fn fold_jsonl_shard(
    text: &str,
    each: impl FnMut(ViolationRecord),
) -> Result<JsonlSummary, ShardError> {
    match fold_jsonl_reader(text.as_bytes(), each) {
        Ok(summary) => Ok(summary),
        Err(StreamError::Shard(error)) => Err(error),
        // Reading from an in-memory slice cannot fail; keep the error path
        // total anyway.
        Err(StreamError::Io(error)) => Err(ShardError::Malformed(format!(
            "I/O failure on an in-memory stream: {error}"
        ))),
    }
}

/// Parse a JSON Lines shard file back into a [`CampaignShard`], applying
/// every validation the classic parser does (header consistency, per-record
/// membership and subject-index checks, canonical record order, and the
/// footer's truncation-detecting counts). Errors name the offending line
/// and record index.
///
/// This materializes every record; callers that only aggregate should use
/// [`fold_jsonl_shard`] and keep memory bounded.
///
/// # Errors
///
/// Returns a [`ShardError`] describing the first malformed line.
pub fn read_jsonl_shard(text: &str) -> Result<CampaignShard, ShardError> {
    let mut records: Vec<ViolationRecord> = Vec::new();
    let summary = fold_jsonl_shard(text, |record| records.push(record))?;
    Ok(CampaignShard {
        spec: summary.spec,
        result: CampaignResult {
            records,
            programs: summary.programs,
            levels: summary.levels,
            faults: summary.faults,
        },
    })
}

/// What [`resume_shard_streaming`] did to the target file.
#[derive(Debug, Clone, Default)]
pub struct ResumeOutcome {
    /// Record lines in the final file (kept prefix plus continuation).
    pub records: usize,
    /// Fault lines in the final file.
    pub faulted: usize,
    /// Subjects this resume re-evaluated (0 when the file already carried a
    /// valid footer).
    pub resumed_subjects: usize,
    /// Evaluation-engine activity for the re-evaluated subjects only.
    pub stats: CacheStats,
    /// The file already ended in a valid footer; nothing was rewritten.
    pub already_complete: bool,
}

/// One intact line of a killed stream's body, as the resume scanner sees
/// it: where it starts in the file and which subject it belongs to.
struct ScannedLine {
    start: usize,
    subject: usize,
    is_fault: bool,
}

fn unresumable(message: impl std::fmt::Display) -> StreamError {
    ShardError::Malformed(format!("cannot resume: {message}")).into()
}

/// Complete a killed `--jsonl` campaign file in place so the result is
/// **byte-identical** to an uninterrupted run of the same spec.
///
/// The writer emits lines in ascending subject order and a kill can only
/// lose a suffix, so the recovery is mechanical: scan the newline-terminated
/// prefix, validate every intact line against `spec`, find the highest
/// subject `P` with any line (its lines may be incomplete — a flush can land
/// mid-subject), truncate the file back to the first line of `P`, and
/// re-evaluate every subject with global index `≥ P`, appending through the
/// same writer an uninterrupted run uses. Determinism does the rest.
///
/// Special cases: a file that already ends in a valid footer is left
/// untouched (`already_complete`); a missing, empty, or mid-header-cut file
/// is rewritten from scratch; a file whose header belongs to a different
/// campaign — or is not a campaign stream at all — is refused rather than
/// overwritten.
///
/// # Errors
///
/// Returns [`StreamError::Io`] for filesystem failures and
/// [`StreamError::Shard`] when the existing content is not a resumable
/// stream of this campaign.
pub fn resume_shard_streaming(
    spec: &CampaignSpec,
    path: &std::path::Path,
    policy: &FaultPolicy,
) -> Result<ResumeOutcome, StreamError> {
    spec.validate()?;
    let data = match std::fs::read(path) {
        Ok(data) => data,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e.into()),
    };
    let expected_header = Json::Obj(spec_header_pairs(spec, CAMPAIGN_JSONL_FORMAT)).to_compact();

    // Scan the header line. Anything short of a byte-exact match either
    // restarts the file (a cut within the header loses nothing) or refuses
    // to touch it (it is not this campaign's stream).
    let mut segments = data.split_inclusive(|&b| b == b'\n');
    let mut write_header = true;
    let mut offset = 0usize;
    match segments.next() {
        None => {}
        Some(segment) => {
            let complete = segment.ends_with(b"\n");
            let line = if complete {
                &segment[..segment.len() - 1]
            } else {
                segment
            };
            if complete && line == expected_header.as_bytes() {
                write_header = false;
                offset = segment.len();
            } else if !complete && expected_header.as_bytes().starts_with(line) {
                // The kill landed inside the header; rewrite from scratch.
            } else if std::str::from_utf8(line)
                .ok()
                .is_some_and(|text| parse_jsonl_header(text).is_ok())
            {
                return Err(unresumable(
                    "the file's header describes a different campaign; refusing to overwrite it",
                ));
            } else {
                return Err(unresumable(
                    "the file does not begin with this campaign's header",
                ));
            }
        }
    }

    // Scan the body: every newline-terminated line must be an intact record,
    // fault, or footer of this campaign; a trailing segment without a
    // newline is the cut the kill left and is dropped.
    let mut scanned: Vec<ScannedLine> = Vec::new();
    let mut footer: Option<Json> = None;
    if !write_header {
        for segment in segments {
            let start = offset;
            offset += segment.len();
            if footer.is_some() {
                return Err(unresumable("the file has content after its footer"));
            }
            if !segment.ends_with(b"\n") {
                break;
            }
            let line = &segment[..segment.len() - 1];
            let text = std::str::from_utf8(line)
                .map_err(|_| unresumable("an intact line is not UTF-8"))?;
            let value = Json::parse(text)
                .map_err(|e| unresumable(format!("an intact line failed to parse: {e}")))?;
            if value.get("end").is_some() {
                footer = Some(value);
                continue;
            }
            let (subject, is_fault) = if value.get("fault").is_some() {
                (fault_from_json(&value, spec)?.subject, true)
            } else {
                (record_from_json(&value, spec)?.subject, false)
            };
            if scanned.last().is_some_and(|last| subject < last.subject) {
                return Err(unresumable(
                    "intact lines are not in ascending subject order",
                ));
            }
            scanned.push(ScannedLine {
                start,
                subject,
                is_fault,
            });
        }
    }

    // A valid footer means the run finished; resuming is a no-op. Footer
    // counts that disagree with the body mean corruption, not truncation.
    if let Some(footer) = footer {
        let records = scanned.iter().filter(|l| !l.is_fault).count();
        let faulted = scanned.iter().filter(|l| l.is_fault).count();
        let programs = spec.seeds.shard_len(spec.shards, spec.shard);
        let intact = footer.get("end").and_then(Json::as_bool) == Some(true)
            && footer.get("programs").and_then(Json::as_u64) == Some(programs)
            && footer.get("records").and_then(Json::as_usize) == Some(records)
            && footer.get("faulted").and_then(Json::as_usize).unwrap_or(0) == faulted;
        if !intact {
            return Err(unresumable(
                "the file ends in a footer whose counts do not match its records",
            ));
        }
        return Ok(ResumeOutcome {
            records,
            faulted,
            resumed_subjects: 0,
            stats: CacheStats::default(),
            already_complete: true,
        });
    }

    // The highest subject with any line may have been cut mid-flush; keep
    // strictly older subjects, re-evaluate from it onwards.
    let (keep_bytes, from_index) = match scanned.last().map(|last| last.subject) {
        None if write_header => (0, 0),
        None => (offset.min(expected_header.len() + 1), 0),
        Some(newest) => {
            let boundary = scanned
                .iter()
                .find(|line| line.subject == newest)
                .expect("newest subject came from `scanned`")
                .start;
            (boundary, newest)
        }
    };
    let kept_records = scanned
        .iter()
        .filter(|l| l.subject < from_index && !l.is_fault)
        .count();
    let kept_faults = scanned
        .iter()
        .filter(|l| l.subject < from_index && l.is_fault)
        .count();
    let resumed_subjects = spec
        .seeds
        .shard_seeds(spec.shards, spec.shard)
        .filter(|&seed| (seed - spec.seeds.start) as usize >= from_index)
        .count();

    // Deliberately not `truncate(true)`: the intact prefix of the file is
    // kept and the explicit `set_len` below cuts exactly at its boundary.
    let file = std::fs::OpenOptions::new()
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)?;
    file.set_len(keep_bytes as u64)?;
    let mut file = file;
    std::io::Seek::seek(&mut file, std::io::SeekFrom::Start(keep_bytes as u64))?;
    let out = std::io::BufWriter::new(file);
    let mut writer =
        CampaignJsonlWriter::resume(out, spec, kept_records, kept_faults, write_header)?;
    let stats = stream_seeds(&mut writer, spec, policy, from_index)?;
    let (records, faulted) = (writer.records, writer.faults);
    writer.finish()?;
    Ok(ResumeOutcome {
        records,
        faulted,
        resumed_subjects,
        stats,
        already_complete: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{merge_shards, run_shard};
    use holes_compiler::Personality;
    use holes_progen::SeedRange;

    fn spec(range: SeedRange) -> CampaignSpec {
        CampaignSpec::new(Personality::Ccg, Personality::Ccg.trunk(), range)
    }

    fn streamed(spec: &CampaignSpec) -> String {
        let mut out = Vec::new();
        run_shard_streaming(spec, &mut out).expect("streaming run");
        String::from_utf8(out).expect("UTF-8 stream")
    }

    #[test]
    fn streamed_shard_reads_back_identical_to_the_classic_run() {
        let range = SeedRange::new(2600, 2612);
        let classic = run_shard(&spec(range)).unwrap();
        let text = streamed(&spec(range));
        assert!(is_jsonl_shard(&text));
        assert!(!is_jsonl_shard(&classic.to_json().to_pretty()));
        let parsed = read_jsonl_shard(&text).unwrap();
        assert_eq!(parsed, classic);
        // And the rendered classic JSON is byte-identical either way.
        assert_eq!(parsed.to_json().to_pretty(), classic.to_json().to_pretty());
    }

    #[test]
    fn jsonl_shards_merge_byte_identically_with_classic_shards() {
        let range = SeedRange::new(2700, 2716);
        let monolithic = run_shard(&spec(range)).unwrap();
        let shards = 3u64;
        let mut mixed = Vec::new();
        for index in 0..shards {
            let shard_spec = spec(range).with_shard(shards, index);
            if index % 2 == 0 {
                mixed.push(read_jsonl_shard(&streamed(&shard_spec)).unwrap());
            } else {
                mixed.push(run_shard(&shard_spec).unwrap());
            }
        }
        let merged = merge_shards(mixed).unwrap();
        assert_eq!(merged.records, monolithic.result.records);
        assert_eq!(merged.table1(), monolithic.result.table1());
        assert_eq!(merged.venn(), monolithic.result.venn());
    }

    #[test]
    fn truncated_and_tampered_streams_are_rejected_with_locations() {
        let range = SeedRange::new(2800, 2812);
        let text = streamed(&spec(range));
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "stream too small to exercise");

        // Truncation: dropping the footer (or cutting mid-record) fails.
        let no_footer = lines[..lines.len() - 1].join("\n");
        let err = read_jsonl_shard(&no_footer).unwrap_err();
        assert!(err.to_string().contains("footer"), "{err}");
        let cut_mid_record = &text[..text.len() - text.len() / 3];
        assert!(read_jsonl_shard(cut_mid_record).is_err());

        // A tampered record reports its index and line.
        let mut tampered: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
        tampered[1] = tampered[1].replace("\"seed\":", "\"seed\":9999, \"x\":");
        let err = read_jsonl_shard(&tampered.join("\n")).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("record 0") && message.contains("line 2"),
            "{message}"
        );

        // A record count mismatch in the footer is caught.
        let mut short: Vec<&str> = lines.clone();
        short.remove(1);
        assert!(read_jsonl_shard(&short.join("\n")).is_err());

        // Wrong format tag.
        let wrong = text.replace(CAMPAIGN_JSONL_FORMAT, "holes.campaign-jsonl/v9");
        assert!(read_jsonl_shard(&wrong).is_err());
        assert!(!is_jsonl_shard(&wrong));
    }

    #[test]
    fn folding_reader_matches_the_materializing_reader() {
        use crate::campaign::CampaignTallies;
        let range = SeedRange::new(2900, 2912);
        let text = streamed(&spec(range));
        let shard = read_jsonl_shard(&text).unwrap();
        assert!(
            !shard.result.records.is_empty(),
            "range exposed no records to fold"
        );
        let mut tallies = CampaignTallies::new(shard.result.levels.clone(), shard.result.programs);
        let summary = fold_jsonl_shard(&text, |record| tallies.add(&record)).unwrap();
        assert_eq!(summary.spec, shard.spec);
        assert_eq!(summary.records, shard.result.records.len());
        assert_eq!(summary.programs, shard.result.programs);
        assert_eq!(summary.levels, shard.result.levels);
        // The line-by-line accumulator renders byte-identically to the
        // materialized result.
        assert_eq!(tallies.table1(), shard.result.table1());
        assert_eq!(
            tallies.summary_json().to_pretty(),
            shard.result.summary_json().to_pretty()
        );

        // Out-of-order streams are rejected with the offending indices,
        // exactly like the materializing path.
        let lines: Vec<&str> = text.lines().collect();
        if lines.len() >= 4 {
            let mut swapped: Vec<&str> = lines.clone();
            swapped.swap(1, 2);
            let err = fold_jsonl_shard(&swapped.join("\n"), |_| {}).unwrap_err();
            assert!(
                err.to_string().contains("canonical campaign order"),
                "{err}"
            );
            assert_eq!(
                read_jsonl_shard(&swapped.join("\n")).unwrap_err(),
                err,
                "the two readers disagree on the rejection"
            );
        }
    }

    #[test]
    fn injected_faults_stream_as_lines_and_count_in_the_footer() {
        let range = SeedRange::new(2600, 2612);
        let policy = FaultPolicy {
            inject_seeds: [2603u64, 2607].into_iter().collect(),
            ..FaultPolicy::default()
        };
        let mut out = Vec::new();
        let run = run_shard_streaming_with_policy(&spec(range), &mut out, &policy).expect("run");
        assert_eq!(run.faulted, 2);
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"fault\":\"generate\""), "{text}");
        assert!(
            text.lines().last().unwrap().contains("\"faulted\":2"),
            "{text}"
        );
        let shard = read_jsonl_shard(&text).expect("faulted stream reads back");
        assert_eq!(shard.result.faults.len(), 2);
        assert_eq!(
            shard
                .result
                .faults
                .iter()
                .map(|f| f.seed)
                .collect::<Vec<_>>(),
            vec![2603, 2607]
        );
        // Faulted subjects are excluded from records; everything else is
        // untouched relative to the clean run.
        let clean = read_jsonl_shard(&streamed(&spec(range))).unwrap();
        let survivors: Vec<_> = clean
            .result
            .records
            .iter()
            .filter(|r| r.seed != 2603 && r.seed != 2607)
            .cloned()
            .collect();
        assert_eq!(shard.result.records, survivors);
        // The default policy stays byte-identical to the no-policy path:
        // no fault lines, no `faulted` footer key.
        assert!(!streamed(&spec(range)).contains("fault"));
    }

    #[test]
    fn truncated_streams_name_the_intact_prefix_and_the_recovery_flag() {
        let range = SeedRange::new(2600, 2612);
        let text = streamed(&spec(range));
        // Cut mid-record: the diagnostic counts the intact records and
        // points at --resume.
        let cut = &text[..text.len() - text.len() / 3];
        let err = read_jsonl_shard(cut).unwrap_err().to_string();
        assert!(err.contains("truncated stream ("), "{err}");
        assert!(err.contains("--resume"), "{err}");
        // Footer missing but last line intact.
        let lines: Vec<&str> = text.lines().collect();
        let no_footer = lines[..lines.len() - 1].join("\n");
        let err = read_jsonl_shard(&no_footer).unwrap_err().to_string();
        assert!(err.contains("missing footer"), "{err}");
        assert!(err.contains("--resume"), "{err}");
        // Empty file.
        let err = read_jsonl_shard("").unwrap_err().to_string();
        assert!(err.contains("truncated stream (0 intact records)"), "{err}");
    }

    struct ScratchFile(std::path::PathBuf);

    impl ScratchFile {
        fn new(name: &str) -> ScratchFile {
            let path = std::env::temp_dir().join(format!(
                "holes-stream-{name}-{}-{:?}.jsonl",
                std::process::id(),
                std::thread::current().id(),
            ));
            let _ = std::fs::remove_file(&path);
            ScratchFile(path)
        }
    }

    impl Drop for ScratchFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn resume_reproduces_the_uninterrupted_stream_from_any_kill_point() {
        let range = SeedRange::new(2600, 2616);
        let spec = spec(range);
        let full = streamed(&spec).into_bytes();
        let scratch = ScratchFile::new("kill");
        // Sweep a spread of kill points including the header, a line
        // boundary, and the final byte.
        for cut in [
            0,
            1,
            full.len() / 7,
            full.len() / 3,
            full.len() / 2,
            full.len() - 1,
        ] {
            std::fs::write(&scratch.0, &full[..cut]).unwrap();
            let outcome =
                resume_shard_streaming(&spec, &scratch.0, &FaultPolicy::default()).expect("resume");
            assert!(!outcome.already_complete, "cut at {cut}");
            let recovered = std::fs::read(&scratch.0).unwrap();
            assert_eq!(
                recovered, full,
                "cut at byte {cut} did not resume byte-identically"
            );
        }
        // A missing file is a fresh run.
        let _ = std::fs::remove_file(&scratch.0);
        resume_shard_streaming(&spec, &scratch.0, &FaultPolicy::default()).expect("fresh");
        assert_eq!(std::fs::read(&scratch.0).unwrap(), full);
        // A complete file is a no-op.
        let outcome =
            resume_shard_streaming(&spec, &scratch.0, &FaultPolicy::default()).expect("no-op");
        assert!(outcome.already_complete);
        assert_eq!(outcome.resumed_subjects, 0);
        assert_eq!(std::fs::read(&scratch.0).unwrap(), full);
    }

    #[test]
    fn resume_preserves_fault_lines_and_refuses_foreign_files() {
        let range = SeedRange::new(2600, 2612);
        let spec = spec(range);
        let policy = FaultPolicy {
            inject_seeds: [2605u64].into_iter().collect(),
            ..FaultPolicy::default()
        };
        let mut out = Vec::new();
        run_shard_streaming_with_policy(&spec, &mut out, &policy).expect("run");
        let scratch = ScratchFile::new("faulted");
        std::fs::write(&scratch.0, &out[..out.len() * 2 / 3]).unwrap();
        resume_shard_streaming(&spec, &scratch.0, &policy).expect("resume");
        assert_eq!(std::fs::read(&scratch.0).unwrap(), out);

        // A header from a different campaign is refused, and the file is
        // left untouched.
        let other = CampaignSpec::new(Personality::Lcc, Personality::Lcc.trunk(), range);
        let foreign = streamed(&other);
        std::fs::write(&scratch.0, &foreign).unwrap();
        let err = resume_shard_streaming(&spec, &scratch.0, &FaultPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("different campaign"), "{err}");
        assert_eq!(std::fs::read(&scratch.0).unwrap(), foreign.into_bytes());
        // Arbitrary content is refused too.
        std::fs::write(&scratch.0, b"not a stream\n").unwrap();
        let err = resume_shard_streaming(&spec, &scratch.0, &FaultPolicy::default()).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
    }

    #[test]
    fn merged_stream_is_byte_identical_to_the_single_process_run() {
        let range = SeedRange::new(2700, 2716);
        let spec = spec(range);
        let reference = streamed(&spec);
        for shards in [1u64, 2, 3, 5, 16, 20] {
            let runs: Vec<CampaignShard> = (0..shards)
                .map(|i| read_jsonl_shard(&streamed(&spec.clone().with_shard(shards, i))).unwrap())
                .collect();
            let mut scrambled = runs;
            scrambled.reverse();
            let mut out = Vec::new();
            let run = write_merged_stream(scrambled, &mut out).expect("merge");
            assert_eq!(
                String::from_utf8(out).unwrap(),
                reference,
                "K={shards} merge is not byte-identical"
            );
            assert_eq!(run.faulted, 0);
        }
        // Faults interleave in subject order exactly like the
        // single-process writer emits them.
        let policy = FaultPolicy {
            inject_seeds: [2703u64, 2712].into_iter().collect(),
            ..FaultPolicy::default()
        };
        let mut faulted_ref = Vec::new();
        run_shard_streaming_with_policy(&spec, &mut faulted_ref, &policy).expect("run");
        let runs: Vec<CampaignShard> = (0..3)
            .map(|i| {
                let mut out = Vec::new();
                let shard_spec = spec.clone().with_shard(3, i);
                run_shard_streaming_with_policy(&shard_spec, &mut out, &policy).expect("run");
                read_jsonl_shard(&String::from_utf8(out).unwrap()).unwrap()
            })
            .collect();
        let mut out = Vec::new();
        let run = write_merged_stream(runs, &mut out).expect("merge with faults");
        assert_eq!(run.faulted, 2);
        assert_eq!(out, faulted_ref, "faulted merge is not byte-identical");
        // An incomplete or duplicated shard set is rejected, never
        // double-counted.
        let s0 = read_jsonl_shard(&streamed(&spec.clone().with_shard(2, 0))).unwrap();
        assert!(write_merged_stream(vec![s0.clone()], Vec::new()).is_err());
        assert!(write_merged_stream(vec![s0.clone(), s0], Vec::new()).is_err());
    }

    #[test]
    fn empty_ranges_stream_a_header_and_footer_only() {
        let empty = spec(SeedRange::new(10, 10));
        let text = streamed(&empty);
        assert_eq!(text.lines().count(), 2, "{text}");
        let parsed = read_jsonl_shard(&text).unwrap();
        assert_eq!(parsed.result.programs, 0);
        assert!(parsed.result.records.is_empty());
    }
}
