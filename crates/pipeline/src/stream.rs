//! Streaming campaign output: the JSON Lines shard format
//! (`holes.campaign-jsonl/v1`) that bounds memory at millions of seeds.
//!
//! A `holes.campaign/v1` shard file is one JSON document, which forces the
//! driver to hold every violation record of the shard in memory until the
//! run completes. This module streams instead: one compact JSON value per
//! line —
//!
//! 1. a **header** carrying the same identity fields as the classic format
//!    (`format`, `personality`, `compiler_version`, `seeds`, `shards`,
//!    `shard`, `levels`),
//! 2. one **record** per violation, in the same canonical order and with
//!    the same schema as the `records` array of the classic format,
//! 3. a **footer** `{"end": true, "programs": …, "records": …}` whose
//!    counts let the reader reject truncated files.
//!
//! [`run_shard_streaming`] evaluates seeds in bounded parallel chunks and
//! emits each chunk's records as soon as they are ready, so peak memory is
//! proportional to the chunk size — never to the seed range. On the
//! consuming side, [`fold_jsonl_reader`] is the symmetric **streaming
//! reader**: it revalidates everything the classic parser does (per-record
//! membership, canonical order — checked pairwise against only the
//! previous record — and the footer counts), reports errors with the
//! **record index and line number**, and hands each record to a fold
//! callback instead of materializing a vector, so `holes report` aggregates
//! arbitrarily large shards in bounded memory. [`read_jsonl_shard`] wraps
//! the fold into an ordinary [`CampaignShard`] for consumers that do need
//! the records: merging JSONL shards through
//! [`crate::shard::merge_shards`] is byte-identical to merging classic
//! shards, which the CLI and test suite hold it to.

use std::io::Write;

use holes_compiler::OptLevel;
use holes_core::json::Json;

use crate::campaign::{subject_records, CampaignResult, ViolationRecord};
use crate::shard::{
    check_record_order, parse_levels, parse_spec_header, record_from_json, record_to_json,
    spec_header_pairs, CampaignShard, CampaignSpec, ShardError,
};
use crate::{par, CacheStats, Subject};

/// The identifying first-line `format` value of a JSON Lines shard file.
pub const CAMPAIGN_JSONL_FORMAT: &str = "holes.campaign-jsonl/v1";

/// A failure while producing or consuming a record stream: either the
/// campaign data itself is bad, or the underlying writer failed.
#[derive(Debug)]
pub enum StreamError {
    /// The spec or a record is invalid (see [`ShardError`]).
    Shard(ShardError),
    /// The output sink failed.
    Io(std::io::Error),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Shard(e) => e.fmt(f),
            StreamError::Io(e) => write!(f, "writing campaign stream: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<ShardError> for StreamError {
    fn from(error: ShardError) -> StreamError {
        StreamError::Shard(error)
    }
}

impl From<std::io::Error> for StreamError {
    fn from(error: std::io::Error) -> StreamError {
        StreamError::Io(error)
    }
}

/// An incremental writer of the JSON Lines shard format. Records are
/// flushed to the sink as they arrive; nothing is accumulated.
pub struct CampaignJsonlWriter<W: Write> {
    out: W,
    spec: CampaignSpec,
    records: usize,
}

impl<W: Write> CampaignJsonlWriter<W> {
    /// Validate the spec and emit the header line.
    ///
    /// # Errors
    ///
    /// Returns the spec validation failure or the sink's I/O error.
    pub fn new(mut out: W, spec: &CampaignSpec) -> Result<CampaignJsonlWriter<W>, StreamError> {
        spec.validate()?;
        let header = Json::Obj(spec_header_pairs(spec, CAMPAIGN_JSONL_FORMAT));
        writeln!(out, "{}", header.to_compact())?;
        Ok(CampaignJsonlWriter {
            out,
            spec: spec.clone(),
            records: 0,
        })
    }

    /// Emit one record line.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error.
    pub fn write_record(&mut self, record: &ViolationRecord) -> Result<(), StreamError> {
        writeln!(self.out, "{}", record_to_json(record).to_compact())?;
        self.records += 1;
        Ok(())
    }

    /// Emit the footer line and return the sink. A file without a footer is
    /// truncated by definition, so readers reject it.
    ///
    /// # Errors
    ///
    /// Returns the sink's I/O error.
    pub fn finish(mut self) -> Result<W, StreamError> {
        let programs = self.spec.seeds.shard_len(self.spec.shards, self.spec.shard);
        let footer = Json::Obj(vec![
            ("end".to_owned(), Json::Bool(true)),
            ("programs".to_owned(), Json::from_u64(programs)),
            ("records".to_owned(), Json::from_usize(self.records)),
        ]);
        writeln!(self.out, "{}", footer.to_compact())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// How many seeds each parallel evaluation chunk covers: enough to keep the
/// worker pool saturated, small enough to bound the records held in memory.
fn chunk_size() -> usize {
    (par::max_workers() * 4).max(1)
}

/// Run one campaign shard, streaming each seed's records to `out` as soon
/// as they are computed. Seeds are evaluated in parallel chunks and emitted
/// in seed order, so the stream's record sequence is exactly the classic
/// driver's — but the full record vector is **never** materialized, and
/// subjects are dropped as their chunk completes.
///
/// Returns the number of records emitted and the evaluation-engine
/// activity aggregated over all subjects (what `holes campaign --stats`
/// reports).
///
/// # Errors
///
/// Returns the spec validation failure or the sink's I/O error.
pub fn run_shard_streaming<W: Write>(
    spec: &CampaignSpec,
    out: W,
) -> Result<(usize, CacheStats), StreamError> {
    let mut writer = CampaignJsonlWriter::new(out, spec)?;
    let levels = spec.personality.levels().to_vec();
    let mut stats = CacheStats::default();
    let mut seeds = spec.seeds.shard_seeds(spec.shards, spec.shard);
    loop {
        let chunk: Vec<u64> = seeds.by_ref().take(chunk_size()).collect();
        if chunk.is_empty() {
            break;
        }
        let per_seed = par::par_map(&chunk, |_, &seed| {
            let subject = Subject::from_seed(seed);
            let global_index = (seed - spec.seeds.start) as usize;
            let records = subject_records(
                &subject,
                global_index,
                spec.personality,
                spec.version,
                spec.backend,
                &levels,
            );
            (records, subject.cache_stats())
        });
        for (records, subject_stats) in per_seed {
            stats.absorb(subject_stats);
            for record in &records {
                writer.write_record(record)?;
            }
        }
    }
    let records = writer.records;
    writer.finish()?;
    Ok((records, stats))
}

/// Whether `text` looks like a JSON Lines shard file (first line is a
/// `holes.campaign-jsonl/v1` header) — how `holes report` auto-detects the
/// format of each input file.
pub fn is_jsonl_shard(text: &str) -> bool {
    let first = text.lines().next().unwrap_or("");
    Json::parse(first)
        .ok()
        .and_then(|header| {
            header
                .get("format")
                .and_then(Json::as_str)
                .map(|format| format == CAMPAIGN_JSONL_FORMAT)
        })
        .unwrap_or(false)
}

fn malformed(line: usize, message: impl std::fmt::Display) -> ShardError {
    ShardError::Malformed(format!("line {}: {message}", line + 1))
}

/// What [`fold_jsonl_shard`] validated about a stream, once the footer has
/// confirmed it was complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonlSummary {
    /// The campaign spec from the header.
    pub spec: CampaignSpec,
    /// The level schedule from the header (already checked against the
    /// personality).
    pub levels: Vec<OptLevel>,
    /// Programs covered by the shard, per the footer.
    pub programs: usize,
    /// Records handed to the fold callback.
    pub records: usize,
}

/// Parse and validate a JSON Lines shard **header line** (the format's
/// first line): the spec and level schedule, without touching any record.
/// Streaming consumers use this to size their accumulators before folding.
///
/// # Errors
///
/// Returns a [`ShardError`] when the line is not a valid
/// `holes.campaign-jsonl/v1` header.
pub fn parse_jsonl_header(line: &str) -> Result<(CampaignSpec, Vec<OptLevel>), ShardError> {
    parse_jsonl_header_at(line, 0)
}

/// [`parse_jsonl_header`] with the header's real 0-based line number for
/// error context — the shared implementation [`fold_jsonl_reader`] uses,
/// since blank lines may precede the header.
fn parse_jsonl_header_at(
    line: &str,
    line_no: usize,
) -> Result<(CampaignSpec, Vec<OptLevel>), ShardError> {
    let header = Json::parse(line).map_err(|e| malformed(line_no, format!("bad header: {e}")))?;
    let format = header
        .get("format")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed(line_no, "missing `format`"))?;
    if format != CAMPAIGN_JSONL_FORMAT {
        return Err(malformed(
            line_no,
            format!("unsupported format `{format}` (expected `{CAMPAIGN_JSONL_FORMAT}`)"),
        ));
    }
    let spec = parse_spec_header(&header).map_err(|e| e.contextualize("header"))?;
    let levels = parse_levels(&header, spec.personality).map_err(|e| e.contextualize("header"))?;
    Ok((spec, levels))
}

/// Stream a JSON Lines shard through a record callback, **line by line from
/// a reader**: each record is parsed, validated, handed to `each`, and
/// dropped, so a consumer folding into an aggregate (the `holes report`
/// accumulator) reads a million-record shard in bounded memory — the
/// reader state is one line buffer, the spec, the previous record (for the
/// canonical-order check), and the running count.
///
/// Every validation of the materializing parser applies — header
/// consistency, per-record membership and subject-index checks, canonical
/// record order, and the footer's truncation-detecting counts — and errors
/// name the offending line and record index. Records handed to `each`
/// before an error is discovered must be discarded by the caller (an
/// aggregate built from a stream that later fails validation is
/// meaningless).
///
/// # Errors
///
/// Returns the first malformed line as a [`StreamError::Shard`], or the
/// reader's failure as [`StreamError::Io`].
pub fn fold_jsonl_reader<R: std::io::BufRead>(
    reader: R,
    mut each: impl FnMut(ViolationRecord),
) -> Result<JsonlSummary, StreamError> {
    let mut lines = reader
        .lines()
        .enumerate()
        .filter(|(_, l)| l.as_ref().map_or(true, |l| !l.trim().is_empty()));
    let (line_no, header_text) = match lines.next() {
        None => return Err(ShardError::Malformed("empty stream".into()).into()),
        Some((line_no, text)) => (line_no, text?),
    };
    let (spec, levels) = parse_jsonl_header_at(&header_text, line_no)?;

    let mut count = 0usize;
    let mut previous: Option<ViolationRecord> = None;
    let mut footer: Option<(usize, Json)> = None;
    for (line_no, line) in lines {
        let line = line?;
        if let Some((footer_line, _)) = footer {
            return Err(malformed(
                line_no,
                format!("content after the footer on line {}", footer_line + 1),
            )
            .into());
        }
        let value = Json::parse(&line).map_err(|e| malformed(line_no, e))?;
        if value.get("end").is_some() {
            footer = Some((line_no, value));
            continue;
        }
        let record = record_from_json(&value, &spec).map_err(|e| {
            e.for_record(count)
                .contextualize(&format!("line {}", line_no + 1))
        })?;
        if let Some(prev) = &previous {
            check_record_order(count - 1, prev, &record, &spec)?;
        }
        previous = Some(record.clone());
        each(record);
        count += 1;
    }
    let (footer_line, footer) =
        footer.ok_or_else(|| ShardError::Malformed("missing footer (truncated stream?)".into()))?;
    if footer.get("end").and_then(Json::as_bool) != Some(true) {
        return Err(malformed(footer_line, "footer `end` is not `true`").into());
    }
    let programs = footer
        .get("programs")
        .and_then(Json::as_usize)
        .ok_or_else(|| malformed(footer_line, "footer is missing `programs`"))?;
    if programs as u64 != spec.seeds.shard_len(spec.shards, spec.shard) {
        return Err(malformed(
            footer_line,
            format!(
                "program count {programs} does not match shard {} of {} over {}",
                spec.shard, spec.shards, spec.seeds
            ),
        )
        .into());
    }
    let declared = footer
        .get("records")
        .and_then(Json::as_usize)
        .ok_or_else(|| malformed(footer_line, "footer is missing `records`"))?;
    if declared != count {
        return Err(malformed(
            footer_line,
            format!("footer declares {declared} records but the stream carries {count}"),
        )
        .into());
    }
    Ok(JsonlSummary {
        spec,
        levels,
        programs,
        records: count,
    })
}

/// [`fold_jsonl_reader`] over an in-memory stream.
///
/// # Errors
///
/// Returns a [`ShardError`] describing the first malformed line.
pub fn fold_jsonl_shard(
    text: &str,
    each: impl FnMut(ViolationRecord),
) -> Result<JsonlSummary, ShardError> {
    match fold_jsonl_reader(text.as_bytes(), each) {
        Ok(summary) => Ok(summary),
        Err(StreamError::Shard(error)) => Err(error),
        // Reading from an in-memory slice cannot fail; keep the error path
        // total anyway.
        Err(StreamError::Io(error)) => Err(ShardError::Malformed(format!(
            "I/O failure on an in-memory stream: {error}"
        ))),
    }
}

/// Parse a JSON Lines shard file back into a [`CampaignShard`], applying
/// every validation the classic parser does (header consistency, per-record
/// membership and subject-index checks, canonical record order, and the
/// footer's truncation-detecting counts). Errors name the offending line
/// and record index.
///
/// This materializes every record; callers that only aggregate should use
/// [`fold_jsonl_shard`] and keep memory bounded.
///
/// # Errors
///
/// Returns a [`ShardError`] describing the first malformed line.
pub fn read_jsonl_shard(text: &str) -> Result<CampaignShard, ShardError> {
    let mut records: Vec<ViolationRecord> = Vec::new();
    let summary = fold_jsonl_shard(text, |record| records.push(record))?;
    Ok(CampaignShard {
        spec: summary.spec,
        result: CampaignResult {
            records,
            programs: summary.programs,
            levels: summary.levels,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::{merge_shards, run_shard};
    use holes_compiler::Personality;
    use holes_progen::SeedRange;

    fn spec(range: SeedRange) -> CampaignSpec {
        CampaignSpec::new(Personality::Ccg, Personality::Ccg.trunk(), range)
    }

    fn streamed(spec: &CampaignSpec) -> String {
        let mut out = Vec::new();
        run_shard_streaming(spec, &mut out).expect("streaming run");
        String::from_utf8(out).expect("UTF-8 stream")
    }

    #[test]
    fn streamed_shard_reads_back_identical_to_the_classic_run() {
        let range = SeedRange::new(2600, 2612);
        let classic = run_shard(&spec(range)).unwrap();
        let text = streamed(&spec(range));
        assert!(is_jsonl_shard(&text));
        assert!(!is_jsonl_shard(&classic.to_json().to_pretty()));
        let parsed = read_jsonl_shard(&text).unwrap();
        assert_eq!(parsed, classic);
        // And the rendered classic JSON is byte-identical either way.
        assert_eq!(parsed.to_json().to_pretty(), classic.to_json().to_pretty());
    }

    #[test]
    fn jsonl_shards_merge_byte_identically_with_classic_shards() {
        let range = SeedRange::new(2700, 2716);
        let monolithic = run_shard(&spec(range)).unwrap();
        let shards = 3u64;
        let mut mixed = Vec::new();
        for index in 0..shards {
            let shard_spec = spec(range).with_shard(shards, index);
            if index % 2 == 0 {
                mixed.push(read_jsonl_shard(&streamed(&shard_spec)).unwrap());
            } else {
                mixed.push(run_shard(&shard_spec).unwrap());
            }
        }
        let merged = merge_shards(mixed).unwrap();
        assert_eq!(merged.records, monolithic.result.records);
        assert_eq!(merged.table1(), monolithic.result.table1());
        assert_eq!(merged.venn(), monolithic.result.venn());
    }

    #[test]
    fn truncated_and_tampered_streams_are_rejected_with_locations() {
        let range = SeedRange::new(2800, 2812);
        let text = streamed(&spec(range));
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.len() >= 3, "stream too small to exercise");

        // Truncation: dropping the footer (or cutting mid-record) fails.
        let no_footer = lines[..lines.len() - 1].join("\n");
        let err = read_jsonl_shard(&no_footer).unwrap_err();
        assert!(err.to_string().contains("footer"), "{err}");
        let cut_mid_record = &text[..text.len() - text.len() / 3];
        assert!(read_jsonl_shard(cut_mid_record).is_err());

        // A tampered record reports its index and line.
        let mut tampered: Vec<String> = lines.iter().map(|l| (*l).to_owned()).collect();
        tampered[1] = tampered[1].replace("\"seed\":", "\"seed\":9999, \"x\":");
        let err = read_jsonl_shard(&tampered.join("\n")).unwrap_err();
        let message = err.to_string();
        assert!(
            message.contains("record 0") && message.contains("line 2"),
            "{message}"
        );

        // A record count mismatch in the footer is caught.
        let mut short: Vec<&str> = lines.clone();
        short.remove(1);
        assert!(read_jsonl_shard(&short.join("\n")).is_err());

        // Wrong format tag.
        let wrong = text.replace(CAMPAIGN_JSONL_FORMAT, "holes.campaign-jsonl/v9");
        assert!(read_jsonl_shard(&wrong).is_err());
        assert!(!is_jsonl_shard(&wrong));
    }

    #[test]
    fn folding_reader_matches_the_materializing_reader() {
        use crate::campaign::CampaignTallies;
        let range = SeedRange::new(2900, 2912);
        let text = streamed(&spec(range));
        let shard = read_jsonl_shard(&text).unwrap();
        assert!(
            !shard.result.records.is_empty(),
            "range exposed no records to fold"
        );
        let mut tallies = CampaignTallies::new(shard.result.levels.clone(), shard.result.programs);
        let summary = fold_jsonl_shard(&text, |record| tallies.add(&record)).unwrap();
        assert_eq!(summary.spec, shard.spec);
        assert_eq!(summary.records, shard.result.records.len());
        assert_eq!(summary.programs, shard.result.programs);
        assert_eq!(summary.levels, shard.result.levels);
        // The line-by-line accumulator renders byte-identically to the
        // materialized result.
        assert_eq!(tallies.table1(), shard.result.table1());
        assert_eq!(
            tallies.summary_json().to_pretty(),
            shard.result.summary_json().to_pretty()
        );

        // Out-of-order streams are rejected with the offending indices,
        // exactly like the materializing path.
        let lines: Vec<&str> = text.lines().collect();
        if lines.len() >= 4 {
            let mut swapped: Vec<&str> = lines.clone();
            swapped.swap(1, 2);
            let err = fold_jsonl_shard(&swapped.join("\n"), |_| {}).unwrap_err();
            assert!(
                err.to_string().contains("canonical campaign order"),
                "{err}"
            );
            assert_eq!(
                read_jsonl_shard(&swapped.join("\n")).unwrap_err(),
                err,
                "the two readers disagree on the rejection"
            );
        }
    }

    #[test]
    fn empty_ranges_stream_a_header_and_footer_only() {
        let empty = spec(SeedRange::new(10, 10));
        let text = streamed(&empty);
        assert_eq!(text.lines().count(), 2, "{text}");
        let parsed = read_jsonl_shard(&text).unwrap();
        assert_eq!(parsed.result.programs, 0);
        assert!(parsed.result.records.is_empty());
    }
}
