//! Culprit-optimization triage (§4.3, Table 2).
//!
//! For the clang-like personality we use the native incremental bisection
//! (`-opt-bisect-limit` analogue): run growing prefixes of the pass pipeline
//! and report the first pass whose execution makes the violation appear.
//! For the gcc-like personality, which cannot be run incrementally, we use
//! the paper's flag-search method: recompile with each `-fno-<pass>` flag and
//! report the flags whose disabling makes the violation disappear.

use std::collections::BTreeMap;

use holes_compiler::{CompilerConfig, Personality};
use holes_core::{Conjecture, Violation};

use crate::campaign::CampaignResult;
use crate::Subject;

/// The outcome of triaging one violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageOutcome {
    /// The passes identified as (potentially jointly) responsible.
    pub culprits: Vec<String>,
    /// How the culprit was found.
    pub method: TriageMethod,
}

/// Which triage method produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriageMethod {
    /// Incremental pass bisection (clang-like).
    Bisection,
    /// Per-flag disabling search (gcc-like).
    FlagSearch,
}

/// Triage one violation found on `subject` under `config`.
pub fn triage(subject: &Subject, config: &CompilerConfig, violation: &Violation) -> TriageOutcome {
    match config.personality {
        Personality::Lcc => bisect(subject, config, violation),
        Personality::Ccg => flag_search(subject, config, violation),
    }
}

/// Find the first pass prefix at which the violation appears.
fn bisect(subject: &Subject, config: &CompilerConfig, violation: &Violation) -> TriageOutcome {
    let schedule = config.pass_schedule();
    for budget in 0..=schedule.len() {
        let candidate = config.clone().with_pass_budget(budget);
        if subject.violation_occurs(&candidate, violation) {
            let culprit = if budget == 0 {
                "isel".to_owned()
            } else {
                schedule[budget - 1].to_owned()
            };
            return TriageOutcome {
                culprits: vec![culprit],
                method: TriageMethod::Bisection,
            };
        }
    }
    TriageOutcome {
        culprits: Vec::new(),
        method: TriageMethod::Bisection,
    }
}

/// Disable each flag in turn; every flag whose disabling removes the
/// violation is reported (the method can identify multiple flags because of
/// pass dependencies, as the paper notes).
fn flag_search(subject: &Subject, config: &CompilerConfig, violation: &Violation) -> TriageOutcome {
    let mut culprits = Vec::new();
    for flag in config.triage_flags() {
        let candidate = config.clone().with_disabled_pass(flag);
        if !subject.violation_occurs(&candidate, violation) {
            culprits.push(flag.to_owned());
        }
    }
    TriageOutcome {
        culprits,
        method: TriageMethod::FlagSearch,
    }
}

/// Table 2: for each conjecture, how many triaged violations are attributed
/// to each pass, sorted by frequency.
#[derive(Debug, Clone, Default)]
pub struct TriageTable {
    /// `counts[conjecture][pass] = number of violations attributed to it`.
    pub counts: BTreeMap<Conjecture, BTreeMap<String, usize>>,
}

impl TriageTable {
    /// The top-`n` passes for a conjecture, most frequent first.
    pub fn top(&self, conjecture: Conjecture, n: usize) -> Vec<(String, usize)> {
        let mut entries: Vec<(String, usize)> = self
            .counts
            .get(&conjecture)
            .map(|m| m.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(n);
        entries
    }

    /// Number of distinct passes (or flag combinations) identified.
    pub fn distinct_culprits(&self) -> usize {
        let mut all: Vec<&String> = self.counts.values().flat_map(|m| m.keys()).collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }

    /// Render as plain text (one block per conjecture), like Table 2.
    pub fn render(&self, n: usize) -> String {
        let mut out = String::new();
        for conjecture in Conjecture::ALL {
            out.push_str(&format!("{conjecture}:\n"));
            for (pass, count) in self.top(conjecture, n) {
                out.push_str(&format!("  {pass:<22} {count}\n"));
            }
        }
        out
    }
}

/// Triage a sample of the unique violations of a campaign and build Table 2.
///
/// `per_conjecture_limit` bounds how many violations are triaged for each
/// conjecture (triage is the most expensive stage, as the paper also notes:
/// ~20 minutes per program for gcc).
pub fn triage_campaign(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
    result: &CampaignResult,
    per_conjecture_limit: usize,
) -> TriageTable {
    let mut table = TriageTable::default();
    let mut taken: BTreeMap<Conjecture, usize> = BTreeMap::new();
    let mut seen: Vec<(usize, Conjecture, u32, String)> = Vec::new();
    for record in &result.records {
        let conjecture = record.violation.conjecture;
        let key = (
            record.subject,
            conjecture,
            record.violation.line,
            record.violation.variable.clone(),
        );
        if seen.contains(&key) {
            continue;
        }
        if *taken.get(&conjecture).unwrap_or(&0) >= per_conjecture_limit {
            continue;
        }
        seen.push(key);
        *taken.entry(conjecture).or_insert(0) += 1;
        let config = CompilerConfig::new(personality, record.level).with_version(version);
        let outcome = triage(&subjects[record.subject], &config, &record.violation);
        for culprit in outcome.culprits {
            *table
                .counts
                .entry(conjecture)
                .or_default()
                .entry(culprit)
                .or_insert(0) += 1;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::subject_pool;

    #[test]
    fn triage_identifies_a_culprit_for_found_violations() {
        let subjects = subject_pool(1200, 4);
        for personality in [Personality::Ccg, Personality::Lcc] {
            let result = run_campaign(&subjects, personality, personality.trunk());
            let Some(record) = result.records.first() else {
                continue;
            };
            let config =
                CompilerConfig::new(personality, record.level).with_version(personality.trunk());
            let outcome = triage(&subjects[record.subject], &config, &record.violation);
            match personality {
                // Bisection always identifies the pass after which the
                // violation first appears.
                Personality::Lcc => assert!(
                    !outcome.culprits.is_empty(),
                    "lcc: bisection found no culprit for {:?}",
                    record.violation
                ),
                // The flag search can legitimately fail when two independent
                // defects hit the same variable (§4.3 notes this limitation);
                // it must at least have used the right method.
                Personality::Ccg => assert_eq!(outcome.method, TriageMethod::FlagSearch),
            }
        }
    }

    #[test]
    fn triage_table_aggregates_by_conjecture() {
        let subjects = subject_pool(1210, 3);
        let result = run_campaign(&subjects, Personality::Ccg, Personality::Ccg.trunk());
        let table = triage_campaign(
            &subjects,
            Personality::Ccg,
            Personality::Ccg.trunk(),
            &result,
            2,
        );
        let rendered = table.render(5);
        assert!(rendered.contains("C1"));
        assert!(table.distinct_culprits() <= 20);
    }
}
