//! Culprit-optimization triage (§4.3, Table 2).
//!
//! For the clang-like personality we use the native incremental bisection
//! (`-opt-bisect-limit` analogue): binary-search the pass-prefix budget for
//! the first pass whose execution makes the violation appear. For the
//! gcc-like personality, which cannot be run incrementally, we use the
//! paper's flag-search method: recompile with each `-fno-<pass>` flag and
//! report the flags whose disabling makes the violation disappear.
//!
//! Both methods drive [`Subject::violation_occurs`] — the targeted,
//! cache-backed oracle — so a triage query costs one compile + trace the
//! first time a configuration is seen and a hash lookup afterwards. The
//! bisection needs O(log n) oracle queries instead of the linear scan's
//! O(n) (the scan is kept as [`bisect_linear`], and tests hold the two to
//! identical culprits); the flag search evaluates its flags in parallel.
//!
//! Budget probes are additionally (nearly) **compile-free**: a pass-budget
//! configuration is a strict prefix of its base pipeline, so the subject's
//! cache derives its executable from the recorded pass-prefix snapshots by
//! code generation alone (see [`holes_compiler::PassSnapshots`] and
//! `CacheStats::codegen_only`) — a whole bisection, probing a dozen
//! budgets, runs the optimization pipeline exactly once.

use std::collections::{BTreeMap, BTreeSet};

use holes_compiler::{BackendKind, CompilerConfig, Personality};
use holes_core::json::Json;
use holes_core::{Conjecture, Violation};

use crate::campaign::{subject_records, unique_key, CampaignResult, UniqueKey};
use crate::fault::{self, FaultPolicy, SubjectFault, SubjectOutcome};
use crate::par;
use crate::shard::{parse_levels, parse_spec_header, spec_header_pairs, CampaignSpec, ShardError};
use crate::Subject;

/// The outcome of triaging one violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageOutcome {
    /// The passes identified as (potentially jointly) responsible.
    pub culprits: Vec<String>,
    /// How the culprit was found.
    pub method: TriageMethod,
}

/// Which triage method produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriageMethod {
    /// Incremental pass bisection (clang-like).
    Bisection,
    /// Per-flag disabling search (gcc-like).
    FlagSearch,
}

/// Triage one violation found on `subject` under `config`.
pub fn triage(subject: &Subject, config: &CompilerConfig, violation: &Violation) -> TriageOutcome {
    match config.personality {
        Personality::Lcc => bisect(subject, config, violation),
        Personality::Ccg => flag_search(subject, config, violation),
    }
}

/// Find the first pass prefix at which the violation appears, by binary
/// search over the pass budget.
///
/// Monotonicity is what makes the binary search sound: an IR-level defect
/// fires when its pass runs and nothing downstream repairs debug
/// information, so once a violation has appeared at some prefix it persists
/// at every longer prefix. Debug builds assert this over the whole budget
/// range (cheap, because every probed budget is already memoized by the
/// subject's artifact cache).
///
/// Backends with **codegen-level** defects (the stack backend's spill-loss
/// class) break the assumption: which bindings spill depends on the
/// post-pipeline IR, so a violation can appear at budget `k` and vanish at
/// `k + 1`. For those configurations this function delegates to the linear
/// reference scan, whose "first budget at which the violation appears"
/// semantics are well defined for any predicate.
pub fn bisect(subject: &Subject, config: &CompilerConfig, violation: &Violation) -> TriageOutcome {
    if config.backend != BackendKind::Reg {
        return bisect_linear(subject, config, violation);
    }
    let schedule = config.pass_schedule();
    let passes = schedule.len();
    let occurs = |budget: usize| {
        // A budget covering the whole schedule is the unbudgeted pipeline;
        // probing it as the original configuration reuses the campaign's
        // cached artifacts instead of re-keying them under `Some(len)`.
        let candidate = if budget >= passes && config.pass_budget.is_none() {
            config.clone()
        } else {
            config.clone().with_pass_budget(budget)
        };
        subject.violation_occurs(&candidate, violation)
    };
    if !occurs(passes) {
        // The violation does not reproduce even with the full pipeline
        // budget; nothing to attribute.
        return TriageOutcome {
            culprits: Vec::new(),
            method: TriageMethod::Bisection,
        };
    }
    // Invariant: occurs(high); low is the smallest budget not yet ruled out.
    let (mut low, mut high) = (0usize, passes);
    while low < high {
        let mid = low + (high - low) / 2;
        if occurs(mid) {
            high = mid;
        } else {
            low = mid + 1;
        }
    }
    debug_assert!(
        (0..=passes).all(|budget| occurs(budget) == (budget >= high)),
        "violation appearance is not monotone in the pass budget"
    );
    let culprit = if high == 0 {
        // Present before any optimization pass ran: instruction selection.
        "isel".to_owned()
    } else {
        schedule[high - 1].to_owned()
    };
    TriageOutcome {
        culprits: vec![culprit],
        method: TriageMethod::Bisection,
    }
}

/// The linear-scan reference implementation of [`bisect`]: try every prefix
/// budget from 0 up and report the first at which the violation appears.
/// O(n) oracle queries; kept for the equivalence tests and benchmarks.
pub fn bisect_linear(
    subject: &Subject,
    config: &CompilerConfig,
    violation: &Violation,
) -> TriageOutcome {
    let schedule = config.pass_schedule();
    for budget in 0..=schedule.len() {
        // A budget covering the whole schedule is the unbudgeted pipeline;
        // probing it as the original configuration reuses cached artifacts
        // (and, on backends with codegen-level defects, guarantees the last
        // probe reproduces the campaign's observation exactly).
        let candidate = if budget >= schedule.len() && config.pass_budget.is_none() {
            config.clone()
        } else {
            config.clone().with_pass_budget(budget)
        };
        if subject.violation_occurs(&candidate, violation) {
            let culprit = if budget == 0 {
                "isel".to_owned()
            } else {
                schedule[budget - 1].to_owned()
            };
            return TriageOutcome {
                culprits: vec![culprit],
                method: TriageMethod::Bisection,
            };
        }
    }
    TriageOutcome {
        culprits: Vec::new(),
        method: TriageMethod::Bisection,
    }
}

/// Disable each flag in turn; every flag whose disabling removes the
/// violation is reported (the method can identify multiple flags because of
/// pass dependencies, as the paper notes). The per-flag recompilations are
/// independent and evaluated in parallel, in schedule order.
///
/// When no flag removes the violation, one extra probe with an empty pass
/// pipeline decides whether the violation comes from code generation
/// itself: if it still reproduces with every optimization disabled, the
/// culprit is `"isel"` — the attribution the stack backend's spill-loss
/// defects need, since they live outside the flaggable pass schedule. (On
/// the register backend the probe never fires: every defect there is
/// pass-gated, so a zero-pass compilation is violation-free.)
fn flag_search(subject: &Subject, config: &CompilerConfig, violation: &Violation) -> TriageOutcome {
    let flags = config.triage_flags();
    let removed = par::par_map(&flags, |_, flag| {
        let candidate = config.clone().with_disabled_pass(flag);
        !subject.violation_occurs(&candidate, violation)
    });
    let mut culprits: Vec<String> = flags
        .iter()
        .zip(removed)
        .filter(|(_, removed)| *removed)
        .map(|(flag, _)| (*flag).to_owned())
        .collect();
    if culprits.is_empty()
        && subject.violation_occurs(&config.clone().with_pass_budget(0), violation)
    {
        culprits.push("isel".to_owned());
    }
    TriageOutcome {
        culprits,
        method: TriageMethod::FlagSearch,
    }
}

/// Table 2: for each conjecture, how many triaged violations are attributed
/// to each pass, sorted by frequency.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TriageTable {
    /// `counts[conjecture][pass] = number of violations attributed to it`.
    pub counts: BTreeMap<Conjecture, BTreeMap<String, usize>>,
}

impl TriageTable {
    /// The top-`n` passes for a conjecture, most frequent first.
    pub fn top(&self, conjecture: Conjecture, n: usize) -> Vec<(String, usize)> {
        let mut entries: Vec<(String, usize)> = self
            .counts
            .get(&conjecture)
            .map(|m| m.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(n);
        entries
    }

    /// Fold another table's counts into this one (the triage-shard merge
    /// primitive: attribution counts are additive across disjoint seed
    /// sets).
    pub fn absorb(&mut self, other: TriageTable) {
        for (conjecture, passes) in other.counts {
            let into = self.counts.entry(conjecture).or_default();
            for (pass, count) in passes {
                *into.entry(pass).or_insert(0) += count;
            }
        }
    }

    /// Number of distinct passes (or flag combinations) identified.
    pub fn distinct_culprits(&self) -> usize {
        let all: BTreeSet<&String> = self.counts.values().flat_map(|m| m.keys()).collect();
        all.len()
    }

    /// Render as plain text (one block per conjecture), like Table 2.
    pub fn render(&self, n: usize) -> String {
        let mut out = String::new();
        for conjecture in Conjecture::ALL {
            out.push_str(&format!("{conjecture}:\n"));
            for (pass, count) in self.top(conjecture, n) {
                out.push_str(&format!("  {pass:<22} {count}\n"));
            }
        }
        out
    }

    /// The machine-readable Table 2: per conjecture, every culprit pass with
    /// its attribution count, most frequent first. Deterministic — equal
    /// tables always serialize to equal bytes.
    pub fn to_json(&self) -> Json {
        let per_conjecture = Conjecture::ALL
            .iter()
            .map(|&conjecture| {
                let passes = self
                    .top(conjecture, usize::MAX)
                    .into_iter()
                    .map(|(pass, count)| {
                        Json::Obj(vec![
                            ("pass".to_owned(), Json::str(pass)),
                            ("count".to_owned(), Json::from_usize(count)),
                        ])
                    })
                    .collect();
                (conjecture.to_string(), Json::Arr(passes))
            })
            .collect();
        Json::Obj(vec![
            ("format".to_owned(), Json::str("holes.triage/v1")),
            ("culprits".to_owned(), Json::Obj(per_conjecture)),
        ])
    }
}

/// Triage a sample of the unique violations of a campaign and build Table 2.
///
/// `per_conjecture_limit` bounds how many violations are triaged for each
/// conjecture (triage is the most expensive stage, as the paper also notes:
/// ~20 minutes per program for gcc). The sample is selected serially — in
/// record order, so it is deterministic — and then triaged in parallel;
/// counts are aggregated back in selection order.
pub fn triage_campaign(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
    result: &CampaignResult,
    per_conjecture_limit: usize,
) -> TriageTable {
    triage_campaign_on(
        subjects,
        personality,
        version,
        BackendKind::Reg,
        result,
        per_conjecture_limit,
    )
}

/// [`triage_campaign`] targeting an explicit backend (the campaign result
/// must have been produced on the same backend, or the oracle will not
/// reproduce the violations).
pub fn triage_campaign_on(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
    backend: BackendKind,
    result: &CampaignResult,
    per_conjecture_limit: usize,
) -> TriageTable {
    triage_campaign_on_with_policy(
        subjects,
        personality,
        version,
        backend,
        result,
        per_conjecture_limit,
        &FaultPolicy::default(),
    )
    .0
}

/// [`triage_campaign_on`] under an explicit [`FaultPolicy`]: each selected
/// violation's triage runs inside [`fault::contain`], so a panicking or
/// fuel-exhausted probe is recorded as a [`SubjectFault`] (in selection
/// order) instead of tearing down the whole triage. Faulted triages
/// contribute nothing to the table; they are never silently dropped from
/// the returned fault list.
pub fn triage_campaign_on_with_policy(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
    backend: BackendKind,
    result: &CampaignResult,
    per_conjecture_limit: usize,
    policy: &FaultPolicy,
) -> (TriageTable, Vec<SubjectFault>) {
    let mut taken: BTreeMap<Conjecture, usize> = BTreeMap::new();
    let mut seen: BTreeSet<UniqueKey> = BTreeSet::new();
    let mut selected: Vec<&crate::campaign::ViolationRecord> = Vec::new();
    for record in &result.records {
        let conjecture = record.violation.conjecture;
        if *taken.get(&conjecture).unwrap_or(&0) >= per_conjecture_limit {
            continue;
        }
        if !seen.insert(unique_key(record)) {
            continue;
        }
        *taken.entry(conjecture).or_insert(0) += 1;
        selected.push(record);
    }
    let outcomes = par::par_map(&selected, |_, record| {
        fault::contain(policy, record.seed, record.subject, || {
            let config = CompilerConfig::new(personality, record.level)
                .with_version(version)
                .with_backend(backend);
            // A fuel limit rides on a cache-sharing clone, exactly as in the
            // campaign driver.
            let limited;
            let subject = if policy.fuel_limit.is_some() {
                limited = subjects[record.subject]
                    .clone()
                    .with_fuel_limit(policy.fuel_limit);
                &limited
            } else {
                &subjects[record.subject]
            };
            triage(subject, &config, &record.violation)
        })
    });
    let mut table = TriageTable::default();
    let mut faults = Vec::new();
    for (record, outcome) in selected.iter().zip(outcomes) {
        match outcome {
            SubjectOutcome::Completed(outcome) => {
                for culprit in outcome.culprits {
                    *table
                        .counts
                        .entry(record.violation.conjecture)
                        .or_default()
                        .entry(culprit)
                        .or_insert(0) += 1;
                }
            }
            SubjectOutcome::Faulted(subject_fault) => faults.push(subject_fault),
        }
    }
    (table, faults)
}

/// The identifying first line of a triage shard file.
pub const TRIAGE_SHARD_FORMAT: &str = "holes.triage-shard/v1";

/// One completed triage shard: the campaign spec it ran over, the
/// per-subject selection limit, and the attributions found on the shard's
/// seeds.
///
/// Sharded triage reuses [`crate::shard`]'s partitioning seam but changes
/// the *selection* semantics: instead of the monolithic driver's global
/// per-conjecture limit (whose selection depends on the whole range's
/// record order and therefore cannot be computed shard-locally), each
/// **subject** contributes up to `limit` unique violations per conjecture.
/// Selection is then independent per seed, every seed lives in exactly one
/// shard, and [`merge_triage_shards`] — a pointwise sum of attribution
/// counts — is deterministic and byte-identical to the single-shard run,
/// mirroring the campaign merge contract.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageShard {
    /// What was run (personality, version, seed range, shard slice,
    /// backend).
    pub spec: CampaignSpec,
    /// Unique violations triaged per conjecture *per subject*.
    pub limit: usize,
    /// The shard's attribution counts.
    pub table: TriageTable,
}

/// Run one shard of a sharded triage (see [`TriageShard`] for the
/// selection semantics), returning the shard plus the aggregated
/// evaluation-engine activity.
///
/// # Errors
///
/// Returns the spec validation failure.
pub fn run_triage_shard(
    spec: &CampaignSpec,
    limit: usize,
) -> Result<(TriageShard, crate::CacheStats), ShardError> {
    let (shard, _, stats) = run_triage_shard_with_policy(spec, limit, &FaultPolicy::default())?;
    Ok((shard, stats))
}

/// [`run_triage_shard`] under an explicit [`FaultPolicy`]: each seed's
/// whole evaluation (campaign records plus its triages) runs inside
/// [`fault::contain`]. A faulted seed contributes nothing to the table and
/// is reported as a [`SubjectFault`] in subject order.
///
/// # Errors
///
/// Returns the spec validation failure.
pub fn run_triage_shard_with_policy(
    spec: &CampaignSpec,
    limit: usize,
    policy: &FaultPolicy,
) -> Result<(TriageShard, Vec<SubjectFault>, crate::CacheStats), ShardError> {
    spec.validate()?;
    let levels = spec.personality.levels().to_vec();
    let seeds = spec.shard_seeds();
    let per_seed = par::par_map(&seeds, |_, &seed| {
        let global_index = (seed - spec.seeds.start) as usize;
        fault::contain(policy, seed, global_index, || {
            let subject = Subject::from_seed(seed).with_fuel_limit(policy.fuel_limit);
            let records = subject_records(
                &subject,
                global_index,
                spec.personality,
                spec.version,
                spec.backend,
                &levels,
            );
            let mut taken: BTreeMap<Conjecture, usize> = BTreeMap::new();
            let mut seen: BTreeSet<UniqueKey> = BTreeSet::new();
            let mut table = TriageTable::default();
            for record in &records {
                let conjecture = record.violation.conjecture;
                if *taken.get(&conjecture).unwrap_or(&0) >= limit {
                    continue;
                }
                if !seen.insert(unique_key(record)) {
                    continue;
                }
                *taken.entry(conjecture).or_insert(0) += 1;
                let config = CompilerConfig::new(spec.personality, record.level)
                    .with_version(spec.version)
                    .with_backend(spec.backend);
                let outcome = triage(&subject, &config, &record.violation);
                for culprit in outcome.culprits {
                    *table
                        .counts
                        .entry(conjecture)
                        .or_default()
                        .entry(culprit)
                        .or_insert(0) += 1;
                }
            }
            (table, subject.cache_stats())
        })
    });
    let mut table = TriageTable::default();
    let mut faults = Vec::new();
    let mut stats = crate::CacheStats::default();
    for outcome in per_seed {
        match outcome {
            SubjectOutcome::Completed((subject_table, subject_stats)) => {
                table.absorb(subject_table);
                stats.absorb(subject_stats);
            }
            SubjectOutcome::Faulted(subject_fault) => faults.push(subject_fault),
        }
    }
    Ok((
        TriageShard {
            spec: spec.clone(),
            limit,
            table,
        },
        faults,
        stats,
    ))
}

/// Merge a complete set of triage shards back into the monolithic
/// [`TriageTable`] for the full seed range: the pointwise sum of the
/// shards' attribution counts. All shards must belong to the same campaign,
/// use the same limit, and cover `0..shards` exactly once (the same
/// contract as [`crate::shard::merge_shards`]).
///
/// # Errors
///
/// Returns a [`ShardError`] when the set is incomplete or inconsistent.
pub fn merge_triage_shards(shards: Vec<TriageShard>) -> Result<TriageTable, ShardError> {
    let first = shards
        .first()
        .cloned()
        .ok_or_else(|| ShardError::Incompatible("no triage shards to merge".into()))?;
    for shard in &shards {
        shard.spec.validate()?;
        if !shard.spec.same_campaign(&first.spec) {
            return Err(ShardError::Incompatible(format!(
                "triage shard {} belongs to a different campaign than shard {}",
                shard.spec.shard, first.spec.shard
            )));
        }
        if shard.limit != first.limit {
            return Err(ShardError::Incompatible(format!(
                "triage shard {} used limit {} but shard {} used limit {}",
                shard.spec.shard, shard.limit, first.spec.shard, first.limit
            )));
        }
    }
    let mut indices: Vec<u64> = shards.iter().map(|s| s.spec.shard).collect();
    indices.sort_unstable();
    let expected: Vec<u64> = (0..first.spec.shards).collect();
    if indices != expected {
        return Err(ShardError::Incompatible(format!(
            "triage shard indices {indices:?} do not cover 0..{} exactly once",
            first.spec.shards
        )));
    }
    let mut table = TriageTable::default();
    for shard in shards {
        table.absorb(shard.table);
    }
    Ok(table)
}

impl TriageShard {
    /// Serialize to the deterministic triage-shard JSON (see
    /// [`TRIAGE_SHARD_FORMAT`]): the campaign spec header shared with the
    /// campaign shard formats, the per-subject limit, and the attribution
    /// counts in canonical (conjecture, pass-name) order.
    pub fn to_json(&self) -> Json {
        let mut pairs = spec_header_pairs(&self.spec, TRIAGE_SHARD_FORMAT);
        pairs.push(("limit".to_owned(), Json::from_usize(self.limit)));
        let culprits = Conjecture::ALL
            .iter()
            .map(|&conjecture| {
                let passes = self
                    .table
                    .counts
                    .get(&conjecture)
                    .map(|passes| {
                        passes
                            .iter()
                            .map(|(pass, count)| {
                                Json::Obj(vec![
                                    ("pass".to_owned(), Json::str(pass.clone())),
                                    ("count".to_owned(), Json::from_usize(*count)),
                                ])
                            })
                            .collect()
                    })
                    .unwrap_or_default();
                (conjecture.to_string(), Json::Arr(passes))
            })
            .collect();
        pairs.push(("culprits".to_owned(), Json::Obj(culprits)));
        Json::Obj(pairs)
    }

    /// Parse and validate a triage shard file produced by
    /// [`TriageShard::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a [`ShardError`] for format, spec, or count problems.
    pub fn from_json(json: &Json) -> Result<TriageShard, ShardError> {
        let format = json
            .get("format")
            .and_then(Json::as_str)
            .ok_or_else(|| ShardError::Malformed("missing `format`".into()))?;
        if format != TRIAGE_SHARD_FORMAT {
            return Err(ShardError::Malformed(format!(
                "unsupported format `{format}` (expected `{TRIAGE_SHARD_FORMAT}`)"
            )));
        }
        let spec = parse_spec_header(json)?;
        parse_levels(json, spec.personality)?;
        let limit = json
            .get("limit")
            .and_then(Json::as_usize)
            .ok_or_else(|| ShardError::Malformed("missing or non-integer `limit`".into()))?;
        let culprits = json
            .get("culprits")
            .and_then(|c| match c {
                Json::Obj(pairs) => Some(pairs),
                _ => None,
            })
            .ok_or_else(|| ShardError::Malformed("missing `culprits` object".into()))?;
        let mut table = TriageTable::default();
        for (key, passes) in culprits {
            let conjecture: Conjecture = key
                .parse()
                .map_err(|_| ShardError::Malformed(format!("unknown conjecture `{key}`")))?;
            let passes = passes
                .as_arr()
                .ok_or_else(|| ShardError::Malformed("culprit list is not an array".into()))?;
            for entry in passes {
                let pass = entry
                    .get("pass")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ShardError::Malformed("culprit without a pass name".into()))?;
                let count = entry
                    .get("count")
                    .and_then(Json::as_usize)
                    .ok_or_else(|| ShardError::Malformed("culprit without a count".into()))?;
                if count == 0 {
                    return Err(ShardError::Malformed(format!(
                        "culprit `{pass}` carries a zero count"
                    )));
                }
                let slot = table
                    .counts
                    .entry(conjecture)
                    .or_default()
                    .entry(pass.to_owned())
                    .or_insert(0);
                if *slot != 0 {
                    return Err(ShardError::Malformed(format!(
                        "culprit `{pass}` is listed twice for {conjecture}"
                    )));
                }
                *slot = count;
            }
        }
        Ok(TriageShard { spec, limit, table })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::subject_pool;

    #[test]
    fn triage_identifies_a_culprit_for_found_violations() {
        let subjects = subject_pool(1200, 4);
        for personality in [Personality::Ccg, Personality::Lcc] {
            let result = run_campaign(&subjects, personality, personality.trunk());
            let Some(record) = result.records.first() else {
                continue;
            };
            let config =
                CompilerConfig::new(personality, record.level).with_version(personality.trunk());
            let outcome = triage(&subjects[record.subject], &config, &record.violation);
            match personality {
                // Bisection always identifies the pass after which the
                // violation first appears.
                Personality::Lcc => assert!(
                    !outcome.culprits.is_empty(),
                    "lcc: bisection found no culprit for {:?}",
                    record.violation
                ),
                // The flag search can legitimately fail when two independent
                // defects hit the same variable (§4.3 notes this limitation);
                // it must at least have used the right method.
                Personality::Ccg => assert_eq!(outcome.method, TriageMethod::FlagSearch),
            }
        }
    }

    #[test]
    fn binary_search_bisection_matches_the_linear_scan() {
        let subjects = subject_pool(1220, 6);
        let personality = Personality::Lcc;
        let result = run_campaign(&subjects, personality, personality.trunk());
        let mut compared = 0usize;
        for record in result.records.iter().take(20) {
            let config =
                CompilerConfig::new(personality, record.level).with_version(personality.trunk());
            let subject = &subjects[record.subject];
            let binary = bisect(subject, &config, &record.violation);
            let linear = bisect_linear(subject, &config, &record.violation);
            assert_eq!(
                binary,
                linear,
                "bisection divergence on {:?} at {}",
                record.violation,
                config.describe()
            );
            compared += 1;
        }
        assert!(
            compared > 0,
            "campaign produced no lcc violations to bisect"
        );
    }

    #[test]
    fn bisection_uses_fewer_oracle_compiles_than_the_linear_scan() {
        let subjects = subject_pool(1230, 8);
        let personality = Personality::Lcc;
        let result = run_campaign(&subjects, personality, personality.trunk());
        assert!(!result.records.is_empty(), "campaign found no violations");
        let mut any_strictly_fewer = false;
        for record in result.records.iter().take(24) {
            let config =
                CompilerConfig::new(personality, record.level).with_version(personality.trunk());
            // Fresh caches so the two strategies' counters are isolated
            // from each other and from the campaign above. Budget probes
            // are satisfied by snapshot codegen, so the oracle work each
            // strategy performs is `compiles + codegen_only`.
            let for_binary = subjects[record.subject].with_fresh_cache();
            let binary = bisect(&for_binary, &config, &record.violation);
            let binary_stats = for_binary.cache_stats();
            let binary_work = binary_stats.compiles + binary_stats.codegen_only;
            let for_linear = subjects[record.subject].with_fresh_cache();
            let linear = bisect_linear(&for_linear, &config, &record.violation);
            let linear_stats = for_linear.cache_stats();
            let linear_work = linear_stats.compiles + linear_stats.codegen_only;
            assert_eq!(binary, linear);
            // Both stay within one oracle evaluation per distinct budget,
            // and neither runs the full pipeline for a non-trunk budget:
            // at most the one unbudgeted endpoint probe compiles.
            let budgets = config.pass_schedule().len() + 1;
            assert!(binary_work <= budgets);
            assert!(linear_work <= budgets);
            assert!(binary_stats.compiles <= 1, "{binary_stats:?}");
            assert!(linear_stats.compiles <= 1, "{linear_stats:?}");
            any_strictly_fewer |= binary_work < linear_work;
        }
        // The debug monotonicity assertion deliberately probes every budget,
        // so the count advantage is only observable in release builds (the
        // benchmark suite measures it there).
        if !cfg!(debug_assertions) {
            assert!(
                any_strictly_fewer,
                "binary search never evaluated strictly fewer budgets than the linear scan"
            );
        }
    }

    #[test]
    fn stack_backend_triage_runs_and_attributes_spill_loss_to_isel() {
        // Regression test: the spill-loss defect fires at code generation,
        // so violation appearance is NOT monotone in the pass budget; lcc
        // triage used to trip bisection's monotonicity debug-assertion.
        // Both personalities must triage a stack-backend campaign without
        // panicking, and the codegen-level class must show up as "isel".
        use holes_progen::SeedRange;
        let mut saw_isel = false;
        for personality in [Personality::Lcc, Personality::Ccg] {
            let spec = CampaignSpec::new(personality, personality.trunk(), SeedRange::new(0, 12))
                .with_backend(BackendKind::Stack);
            let (shard, _) = run_triage_shard(&spec, 3).unwrap();
            assert!(
                !shard.table.counts.is_empty(),
                "{personality}: stack campaign exposed nothing to triage"
            );
            saw_isel |= shard
                .table
                .counts
                .values()
                .any(|passes| passes.contains_key("isel"));
        }
        assert!(
            saw_isel,
            "no spill-loss violation was attributed to code generation"
        );
    }

    #[test]
    fn sharded_triage_merges_to_the_single_shard_run() {
        // The triage analogue of the campaign merge-determinism contract:
        // K shard runs — round-tripped through their JSON files — merge to
        // the exact table of the K=1 run, in any input order.
        use holes_core::json::Json;
        use holes_progen::SeedRange;
        let personality = Personality::Lcc;
        let spec = CampaignSpec::new(personality, personality.trunk(), SeedRange::new(2600, 2612));
        let (monolithic, stats) = run_triage_shard(&spec, 2).unwrap();
        assert!(stats.compiles > 0, "triage compiled nothing");
        assert!(
            !monolithic.table.counts.is_empty(),
            "range exposed no violations to triage"
        );
        for shards in [2u64, 3] {
            let mut runs: Vec<TriageShard> = (0..shards)
                .map(|index| {
                    let (run, _) =
                        run_triage_shard(&spec.clone().with_shard(shards, index), 2).unwrap();
                    let rendered = run.to_json().to_pretty();
                    let reparsed =
                        TriageShard::from_json(&Json::parse(&rendered).unwrap()).unwrap();
                    assert_eq!(reparsed, run, "shard file round-trip changed the shard");
                    // Serialization is deterministic.
                    assert_eq!(reparsed.to_json().to_pretty(), rendered);
                    reparsed
                })
                .collect();
            runs.reverse(); // merge order must not matter
            let merged = merge_triage_shards(runs).unwrap();
            assert_eq!(merged, monolithic.table, "K={shards}");
            assert_eq!(
                merged.to_json().to_pretty(),
                monolithic.table.to_json().to_pretty()
            );
        }
    }

    #[test]
    fn triage_merge_rejects_incomplete_and_inconsistent_sets() {
        use holes_progen::SeedRange;
        let spec = CampaignSpec::new(
            Personality::Lcc,
            Personality::Lcc.trunk(),
            SeedRange::new(2620, 2624),
        );
        let (s0, _) = run_triage_shard(&spec.clone().with_shard(2, 0), 1).unwrap();
        let (s1, _) = run_triage_shard(&spec.clone().with_shard(2, 1), 1).unwrap();
        assert!(merge_triage_shards(Vec::new()).is_err(), "empty set");
        assert!(
            merge_triage_shards(vec![s0.clone()]).is_err(),
            "missing shard"
        );
        assert!(
            merge_triage_shards(vec![s0.clone(), s0.clone()]).is_err(),
            "duplicate shard"
        );
        let mut other_limit = s1.clone();
        other_limit.limit = 9;
        assert!(
            merge_triage_shards(vec![s0.clone(), other_limit]).is_err(),
            "mixed limits"
        );
        let mut other_backend = s1.clone();
        other_backend.spec.backend = BackendKind::Stack;
        assert!(
            merge_triage_shards(vec![s0.clone(), other_backend]).is_err(),
            "mixed backends"
        );
        assert!(merge_triage_shards(vec![s0, s1]).is_ok());
    }

    #[test]
    fn triage_shard_files_reject_tampering() {
        use holes_core::json::Json;
        use holes_progen::SeedRange;
        let spec = CampaignSpec::new(
            Personality::Ccg,
            Personality::Ccg.trunk(),
            SeedRange::new(2630, 2634),
        );
        let (run, _) = run_triage_shard(&spec, 1).unwrap();
        let good = run.to_json().to_pretty();
        for (needle, replacement) in [
            ("holes.triage-shard/v1", "holes.triage-shard/v0"),
            ("\"ccg\"", "\"gcc\""),
            ("\"limit\": 1", "\"limit\": true"),
        ] {
            let bad = good.replace(needle, replacement);
            assert_ne!(bad, good, "replacement `{needle}` did not apply");
            assert!(
                TriageShard::from_json(&Json::parse(&bad).unwrap()).is_err(),
                "tampered `{needle}` was accepted"
            );
        }
    }

    #[test]
    fn triage_table_aggregates_by_conjecture() {
        let subjects = subject_pool(1210, 3);
        let result = run_campaign(&subjects, Personality::Ccg, Personality::Ccg.trunk());
        let table = triage_campaign(
            &subjects,
            Personality::Ccg,
            Personality::Ccg.trunk(),
            &result,
            2,
        );
        let rendered = table.render(5);
        assert!(rendered.contains("C1"));
        assert!(table.distinct_culprits() <= 20);
    }
}
