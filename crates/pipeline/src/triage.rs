//! Culprit-optimization triage (§4.3, Table 2).
//!
//! For the clang-like personality we use the native incremental bisection
//! (`-opt-bisect-limit` analogue): binary-search the pass-prefix budget for
//! the first pass whose execution makes the violation appear. For the
//! gcc-like personality, which cannot be run incrementally, we use the
//! paper's flag-search method: recompile with each `-fno-<pass>` flag and
//! report the flags whose disabling makes the violation disappear.
//!
//! Both methods drive [`Subject::violation_occurs`] — the targeted,
//! cache-backed oracle — so a triage query costs one compile + trace the
//! first time a configuration is seen and a hash lookup afterwards. The
//! bisection needs O(log n) oracle queries instead of the linear scan's
//! O(n) (the scan is kept as [`bisect_linear`], and tests hold the two to
//! identical culprits); the flag search evaluates its flags in parallel.

use std::collections::{BTreeMap, BTreeSet};

use holes_compiler::{CompilerConfig, Personality};
use holes_core::json::Json;
use holes_core::{Conjecture, Violation};

use crate::campaign::{unique_key, CampaignResult, UniqueKey};
use crate::par;
use crate::Subject;

/// The outcome of triaging one violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriageOutcome {
    /// The passes identified as (potentially jointly) responsible.
    pub culprits: Vec<String>,
    /// How the culprit was found.
    pub method: TriageMethod,
}

/// Which triage method produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriageMethod {
    /// Incremental pass bisection (clang-like).
    Bisection,
    /// Per-flag disabling search (gcc-like).
    FlagSearch,
}

/// Triage one violation found on `subject` under `config`.
pub fn triage(subject: &Subject, config: &CompilerConfig, violation: &Violation) -> TriageOutcome {
    match config.personality {
        Personality::Lcc => bisect(subject, config, violation),
        Personality::Ccg => flag_search(subject, config, violation),
    }
}

/// Find the first pass prefix at which the violation appears, by binary
/// search over the pass budget.
///
/// Monotonicity is what makes this sound: a defect fires when its pass runs
/// and nothing downstream repairs debug information, so once a violation has
/// appeared at some prefix it persists at every longer prefix. Debug builds
/// assert this over the whole budget range (cheap, because every probed
/// budget is already memoized by the subject's artifact cache).
pub fn bisect(subject: &Subject, config: &CompilerConfig, violation: &Violation) -> TriageOutcome {
    let schedule = config.pass_schedule();
    let passes = schedule.len();
    let occurs = |budget: usize| {
        // A budget covering the whole schedule is the unbudgeted pipeline;
        // probing it as the original configuration reuses the campaign's
        // cached artifacts instead of re-keying them under `Some(len)`.
        let candidate = if budget >= passes && config.pass_budget.is_none() {
            config.clone()
        } else {
            config.clone().with_pass_budget(budget)
        };
        subject.violation_occurs(&candidate, violation)
    };
    if !occurs(passes) {
        // The violation does not reproduce even with the full pipeline
        // budget; nothing to attribute.
        return TriageOutcome {
            culprits: Vec::new(),
            method: TriageMethod::Bisection,
        };
    }
    // Invariant: occurs(high); low is the smallest budget not yet ruled out.
    let (mut low, mut high) = (0usize, passes);
    while low < high {
        let mid = low + (high - low) / 2;
        if occurs(mid) {
            high = mid;
        } else {
            low = mid + 1;
        }
    }
    debug_assert!(
        (0..=passes).all(|budget| occurs(budget) == (budget >= high)),
        "violation appearance is not monotone in the pass budget"
    );
    let culprit = if high == 0 {
        // Present before any optimization pass ran: instruction selection.
        "isel".to_owned()
    } else {
        schedule[high - 1].to_owned()
    };
    TriageOutcome {
        culprits: vec![culprit],
        method: TriageMethod::Bisection,
    }
}

/// The linear-scan reference implementation of [`bisect`]: try every prefix
/// budget from 0 up and report the first at which the violation appears.
/// O(n) oracle queries; kept for the equivalence tests and benchmarks.
pub fn bisect_linear(
    subject: &Subject,
    config: &CompilerConfig,
    violation: &Violation,
) -> TriageOutcome {
    let schedule = config.pass_schedule();
    for budget in 0..=schedule.len() {
        let candidate = config.clone().with_pass_budget(budget);
        if subject.violation_occurs(&candidate, violation) {
            let culprit = if budget == 0 {
                "isel".to_owned()
            } else {
                schedule[budget - 1].to_owned()
            };
            return TriageOutcome {
                culprits: vec![culprit],
                method: TriageMethod::Bisection,
            };
        }
    }
    TriageOutcome {
        culprits: Vec::new(),
        method: TriageMethod::Bisection,
    }
}

/// Disable each flag in turn; every flag whose disabling removes the
/// violation is reported (the method can identify multiple flags because of
/// pass dependencies, as the paper notes). The per-flag recompilations are
/// independent and evaluated in parallel, in schedule order.
fn flag_search(subject: &Subject, config: &CompilerConfig, violation: &Violation) -> TriageOutcome {
    let flags = config.triage_flags();
    let removed = par::par_map(&flags, |_, flag| {
        let candidate = config.clone().with_disabled_pass(flag);
        !subject.violation_occurs(&candidate, violation)
    });
    let culprits = flags
        .iter()
        .zip(removed)
        .filter(|(_, removed)| *removed)
        .map(|(flag, _)| (*flag).to_owned())
        .collect();
    TriageOutcome {
        culprits,
        method: TriageMethod::FlagSearch,
    }
}

/// Table 2: for each conjecture, how many triaged violations are attributed
/// to each pass, sorted by frequency.
#[derive(Debug, Clone, Default)]
pub struct TriageTable {
    /// `counts[conjecture][pass] = number of violations attributed to it`.
    pub counts: BTreeMap<Conjecture, BTreeMap<String, usize>>,
}

impl TriageTable {
    /// The top-`n` passes for a conjecture, most frequent first.
    pub fn top(&self, conjecture: Conjecture, n: usize) -> Vec<(String, usize)> {
        let mut entries: Vec<(String, usize)> = self
            .counts
            .get(&conjecture)
            .map(|m| m.iter().map(|(k, v)| (k.clone(), *v)).collect())
            .unwrap_or_default();
        entries.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(n);
        entries
    }

    /// Number of distinct passes (or flag combinations) identified.
    pub fn distinct_culprits(&self) -> usize {
        let all: BTreeSet<&String> = self.counts.values().flat_map(|m| m.keys()).collect();
        all.len()
    }

    /// Render as plain text (one block per conjecture), like Table 2.
    pub fn render(&self, n: usize) -> String {
        let mut out = String::new();
        for conjecture in Conjecture::ALL {
            out.push_str(&format!("{conjecture}:\n"));
            for (pass, count) in self.top(conjecture, n) {
                out.push_str(&format!("  {pass:<22} {count}\n"));
            }
        }
        out
    }

    /// The machine-readable Table 2: per conjecture, every culprit pass with
    /// its attribution count, most frequent first. Deterministic — equal
    /// tables always serialize to equal bytes.
    pub fn to_json(&self) -> Json {
        let per_conjecture = Conjecture::ALL
            .iter()
            .map(|&conjecture| {
                let passes = self
                    .top(conjecture, usize::MAX)
                    .into_iter()
                    .map(|(pass, count)| {
                        Json::Obj(vec![
                            ("pass".to_owned(), Json::str(pass)),
                            ("count".to_owned(), Json::from_usize(count)),
                        ])
                    })
                    .collect();
                (conjecture.to_string(), Json::Arr(passes))
            })
            .collect();
        Json::Obj(vec![
            ("format".to_owned(), Json::str("holes.triage/v1")),
            ("culprits".to_owned(), Json::Obj(per_conjecture)),
        ])
    }
}

/// Triage a sample of the unique violations of a campaign and build Table 2.
///
/// `per_conjecture_limit` bounds how many violations are triaged for each
/// conjecture (triage is the most expensive stage, as the paper also notes:
/// ~20 minutes per program for gcc). The sample is selected serially — in
/// record order, so it is deterministic — and then triaged in parallel;
/// counts are aggregated back in selection order.
pub fn triage_campaign(
    subjects: &[Subject],
    personality: Personality,
    version: usize,
    result: &CampaignResult,
    per_conjecture_limit: usize,
) -> TriageTable {
    let mut taken: BTreeMap<Conjecture, usize> = BTreeMap::new();
    let mut seen: BTreeSet<UniqueKey> = BTreeSet::new();
    let mut selected: Vec<&crate::campaign::ViolationRecord> = Vec::new();
    for record in &result.records {
        let conjecture = record.violation.conjecture;
        if *taken.get(&conjecture).unwrap_or(&0) >= per_conjecture_limit {
            continue;
        }
        if !seen.insert(unique_key(record)) {
            continue;
        }
        *taken.entry(conjecture).or_insert(0) += 1;
        selected.push(record);
    }
    let outcomes = par::par_map(&selected, |_, record| {
        let config = CompilerConfig::new(personality, record.level).with_version(version);
        triage(&subjects[record.subject], &config, &record.violation)
    });
    let mut table = TriageTable::default();
    for (record, outcome) in selected.iter().zip(outcomes) {
        for culprit in outcome.culprits {
            *table
                .counts
                .entry(record.violation.conjecture)
                .or_default()
                .entry(culprit)
                .or_insert(0) += 1;
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::run_campaign;
    use crate::subject_pool;

    #[test]
    fn triage_identifies_a_culprit_for_found_violations() {
        let subjects = subject_pool(1200, 4);
        for personality in [Personality::Ccg, Personality::Lcc] {
            let result = run_campaign(&subjects, personality, personality.trunk());
            let Some(record) = result.records.first() else {
                continue;
            };
            let config =
                CompilerConfig::new(personality, record.level).with_version(personality.trunk());
            let outcome = triage(&subjects[record.subject], &config, &record.violation);
            match personality {
                // Bisection always identifies the pass after which the
                // violation first appears.
                Personality::Lcc => assert!(
                    !outcome.culprits.is_empty(),
                    "lcc: bisection found no culprit for {:?}",
                    record.violation
                ),
                // The flag search can legitimately fail when two independent
                // defects hit the same variable (§4.3 notes this limitation);
                // it must at least have used the right method.
                Personality::Ccg => assert_eq!(outcome.method, TriageMethod::FlagSearch),
            }
        }
    }

    #[test]
    fn binary_search_bisection_matches_the_linear_scan() {
        let subjects = subject_pool(1220, 6);
        let personality = Personality::Lcc;
        let result = run_campaign(&subjects, personality, personality.trunk());
        let mut compared = 0usize;
        for record in result.records.iter().take(20) {
            let config =
                CompilerConfig::new(personality, record.level).with_version(personality.trunk());
            let subject = &subjects[record.subject];
            let binary = bisect(subject, &config, &record.violation);
            let linear = bisect_linear(subject, &config, &record.violation);
            assert_eq!(
                binary,
                linear,
                "bisection divergence on {:?} at {}",
                record.violation,
                config.describe()
            );
            compared += 1;
        }
        assert!(
            compared > 0,
            "campaign produced no lcc violations to bisect"
        );
    }

    #[test]
    fn bisection_uses_fewer_oracle_compiles_than_the_linear_scan() {
        let subjects = subject_pool(1230, 8);
        let personality = Personality::Lcc;
        let result = run_campaign(&subjects, personality, personality.trunk());
        assert!(!result.records.is_empty(), "campaign found no violations");
        let mut any_strictly_fewer = false;
        for record in result.records.iter().take(24) {
            let config =
                CompilerConfig::new(personality, record.level).with_version(personality.trunk());
            // Fresh caches so the two strategies' compile counters are
            // isolated from each other and from the campaign above.
            let for_binary = subjects[record.subject].with_fresh_cache();
            let binary = bisect(&for_binary, &config, &record.violation);
            let binary_compiles = for_binary.cache_stats().compiles;
            let for_linear = subjects[record.subject].with_fresh_cache();
            let linear = bisect_linear(&for_linear, &config, &record.violation);
            let linear_compiles = for_linear.cache_stats().compiles;
            assert_eq!(binary, linear);
            // Both stay within one compile per distinct budget.
            let budgets = config.pass_schedule().len() + 1;
            assert!(binary_compiles <= budgets);
            assert!(linear_compiles <= budgets);
            any_strictly_fewer |= binary_compiles < linear_compiles;
        }
        // The debug monotonicity assertion deliberately probes every budget,
        // so the count advantage is only observable in release builds (the
        // benchmark suite measures it there).
        if !cfg!(debug_assertions) {
            assert!(
                any_strictly_fewer,
                "binary search never compiled strictly less than the linear scan"
            );
        }
    }

    #[test]
    fn triage_table_aggregates_by_conjecture() {
        let subjects = subject_pool(1210, 3);
        let result = run_campaign(&subjects, Personality::Ccg, Personality::Ccg.trunk());
        let table = triage_campaign(
            &subjects,
            Personality::Ccg,
            Personality::Ccg.trunk(),
            &result,
            2,
        );
        let rendered = table.render(5);
        assert!(rendered.contains("C1"));
        assert!(table.distinct_culprits() <= 20);
    }
}
