//! Seeded generator of MiniC test programs — the reproduction's substitute
//! for the Csmith fuzzer used by the paper.
//!
//! The paper generates 1000–5000 heterogeneous C programs, drawing each time
//! from "different assortments of 20 options that define program
//! characteristics" (§4.1), and reuses the same programs to test all three
//! conjectures. This crate mirrors that workflow:
//!
//! * [`GeneratorOptions`] exposes twenty knobs controlling which constructs a
//!   program may contain (loops, nesting, volatile globals, pointers, opaque
//!   calls, constant-valued locals, unnamed scopes, goto loops, ...).
//! * [`GeneratorOptions::assortment`] derives a deterministic assortment of
//!   options from a seed, like the paper's per-program option draws.
//! * [`ProgramGenerator`] produces a [`Program`] that is structurally valid,
//!   free of undefined behaviour and guaranteed to terminate: every program
//!   is validated and executed in the reference interpreter before being
//!   returned.
//!
//! # Example
//!
//! ```
//! use holes_progen::{GeneratorOptions, ProgramGenerator};
//!
//! let options = GeneratorOptions::assortment(7);
//! let mut generator = ProgramGenerator::new(7, options);
//! let generated = generator.generate();
//! assert!(generated.program.stmt_count() > 0);
//! assert!(!generated.source.text.is_empty());
//! ```

#![forbid(unsafe_code)]

mod options;
mod seed_range;

pub use options::GeneratorOptions;
pub use seed_range::{ParseSeedRangeError, SeedRange};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use holes_minic::analysis::ProgramAnalysis;
use holes_minic::ast::{
    BinOp, Expr, FunctionId, GlobalId, LValue, LocalId, Program, Stmt, Ty, UnOp, VarRef,
};
use holes_minic::build::ProgramBuilder;
use holes_minic::interp::Interpreter;
use holes_minic::lines::SourceMap;
use holes_minic::validate::validate;

/// A generated program together with its rendered source, line map and the
/// static analyses the conjecture checkers need.
#[derive(Debug, Clone)]
pub struct GeneratedProgram {
    /// The program AST with assigned line numbers.
    pub program: Program,
    /// Rendered source text and line maps.
    pub source: SourceMap,
    /// Static analyses (conjecture sites, liveness, induction variables).
    pub analysis: ProgramAnalysis,
    /// The seed that produced the program.
    pub seed: u64,
}

/// Deterministic, validating program generator.
#[derive(Debug)]
pub struct ProgramGenerator {
    seed: u64,
    options: GeneratorOptions,
}

impl ProgramGenerator {
    /// Create a generator for a seed and an option assortment.
    pub fn new(seed: u64, options: GeneratorOptions) -> ProgramGenerator {
        ProgramGenerator { seed, options }
    }

    /// Create a generator whose options are themselves derived from the seed,
    /// mirroring the paper's per-program option draws.
    pub fn from_seed(seed: u64) -> ProgramGenerator {
        ProgramGenerator::new(seed, GeneratorOptions::assortment(seed))
    }

    /// Generate one valid, terminating program.
    ///
    /// Candidate programs that fail validation or dynamic screening (out of
    /// fuel, out of bounds) are discarded and regenerated from a derived
    /// sub-seed; in practice almost every first candidate is accepted.
    pub fn generate(&mut self) -> GeneratedProgram {
        for attempt in 0..64u64 {
            let sub_seed = self
                .seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(attempt);
            let mut rng = StdRng::seed_from_u64(sub_seed);
            let mut program = Emitter::new(&mut rng, &self.options).emit();
            let source = program.assign_lines();
            if validate(&program).is_err() {
                continue;
            }
            if Interpreter::new(&program).run().is_err() {
                continue;
            }
            let analysis = ProgramAnalysis::analyze(&program);
            return GeneratedProgram {
                program,
                source,
                analysis,
                seed: self.seed,
            };
        }
        unreachable!("generator failed to produce a valid program in 64 attempts")
    }
}

/// Generate a whole pool of programs from consecutive seeds, as the paper
/// does for its quantitative study and its violation campaigns.
pub fn generate_pool(base_seed: u64, count: usize) -> Vec<GeneratedProgram> {
    (0..count as u64)
        .map(|i| ProgramGenerator::from_seed(base_seed.wrapping_add(i)).generate())
        .collect()
}

/// Internal single-candidate emitter.
struct Emitter<'r> {
    rng: &'r mut StdRng,
    opts: &'r GeneratorOptions,
    builder: ProgramBuilder,
    scalar_globals: Vec<GlobalId>,
    array_globals: Vec<(GlobalId, Vec<usize>)>,
    /// A global that is initialized to zero and never written: safe target
    /// for the `label: if (g) goto label;` pattern of the paper's §3.4.
    quiescent_global: Option<GlobalId>,
    aux_functions: Vec<(FunctionId, usize)>,
    pure_functions: Vec<FunctionId>,
    name_counter: usize,
}

impl<'r> Emitter<'r> {
    fn new(rng: &'r mut StdRng, opts: &'r GeneratorOptions) -> Emitter<'r> {
        Emitter {
            rng,
            opts,
            builder: ProgramBuilder::new(),
            scalar_globals: Vec::new(),
            array_globals: Vec::new(),
            quiescent_global: None,
            aux_functions: Vec::new(),
            pure_functions: Vec::new(),
            name_counter: 0,
        }
    }

    fn fresh_name(&mut self, prefix: &str) -> String {
        self.name_counter += 1;
        format!("{prefix}{}", self.name_counter)
    }

    fn scalar_ty(&mut self) -> Ty {
        let choices = [
            Ty::I8,
            Ty::I16,
            Ty::I32,
            Ty::I32,
            Ty::I64,
            Ty::U8,
            Ty::U16,
            Ty::U32,
        ];
        choices[self.rng.gen_range(0..choices.len())]
    }

    fn small_literal(&mut self) -> i64 {
        self.rng.gen_range(-8..64)
    }

    fn emit(mut self) -> Program {
        self.emit_globals();
        self.emit_aux_functions();
        self.emit_main();
        self.builder.finish()
    }

    fn emit_globals(&mut self) {
        let n_scalars = self
            .rng
            .gen_range(self.opts.min_globals..=self.opts.max_globals);
        for _ in 0..n_scalars {
            let ty = self.scalar_ty();
            let volatile = self.rng.gen_bool(self.opts.volatile_prob);
            let init = self.small_literal();
            let name = self.fresh_name("g");
            let id = self
                .builder
                .global(&name, ty, volatile, vec![ty.wrap(init)]);
            self.scalar_globals.push(id);
        }
        // Dedicated quiescent global for goto-loop patterns.
        if self.opts.goto_loops {
            let name = self.fresh_name("quiet");
            let id = self.builder.global(&name, Ty::I32, false, vec![0]);
            self.quiescent_global = Some(id);
        }
        let n_arrays = self
            .rng
            .gen_range(self.opts.min_arrays..=self.opts.max_arrays);
        for _ in 0..n_arrays {
            let ndims = self.rng.gen_range(1..=self.opts.max_array_dims.max(1));
            let dims: Vec<usize> = (0..ndims).map(|_| self.rng.gen_range(2..=4)).collect();
            let count: usize = dims.iter().product();
            let ty = self.scalar_ty();
            let init: Vec<i64> = (0..count).map(|_| ty.wrap(self.small_literal())).collect();
            let volatile = self.rng.gen_bool(self.opts.volatile_prob / 2.0);
            let name = self.fresh_name("arr");
            let id = self
                .builder
                .global_array(&name, ty, volatile, dims.clone(), init);
            self.array_globals.push((id, dims));
        }
        // Guarantee at least one scalar global exists (stores need a target).
        if self.scalar_globals.is_empty() {
            let id = self.builder.global("g0", Ty::I32, false, vec![0]);
            self.scalar_globals.push(id);
        }
    }

    fn emit_aux_functions(&mut self) {
        let n = self.rng.gen_range(0..=self.opts.max_aux_functions);
        for _ in 0..n {
            let name = self.fresh_name("f");
            let func = self.builder.function(&name, Ty::I32);
            let n_params = self.rng.gen_range(0..=self.opts.max_params);
            let mut params = Vec::new();
            for p in 0..n_params {
                let pname = format!("p{p}");
                params.push(self.builder.param(func, &pname, Ty::I32));
            }
            if self.rng.gen_bool(self.opts.pure_function_prob) || params.is_empty() {
                // A side-effect free function returning a constant: fodder for
                // the paper's gcc bug 105108 (pure-function folding).
                let value = self.small_literal();
                self.builder.push(func, Stmt::ret(Some(Expr::lit(value))));
                self.pure_functions.push(func);
                self.aux_functions.push((func, n_params));
            } else {
                // Combine the parameters, optionally touch a global.
                let mut expr = Expr::local(params[0]);
                for p in &params[1..] {
                    let op = [BinOp::Add, BinOp::Sub, BinOp::Xor][self.rng.gen_range(0..3)];
                    expr = Expr::binary(op, expr, Expr::local(*p));
                }
                if self.rng.gen_bool(0.5) && !self.scalar_globals.is_empty() {
                    let g = self.pick_scalar_global();
                    self.builder
                        .push(func, Stmt::assign(LValue::global(g), expr.clone()));
                }
                self.builder.push(func, Stmt::ret(Some(expr)));
                self.aux_functions.push((func, n_params));
            }
        }
    }

    fn pick_scalar_global(&mut self) -> GlobalId {
        self.scalar_globals[self.rng.gen_range(0..self.scalar_globals.len())]
    }

    fn emit_main(&mut self) {
        let main = self.builder.function("main", Ty::I32);
        let mut ctx = MainContext {
            func: main,
            locals: Vec::new(),
            constant_locals: Vec::new(),
            pointer_locals: Vec::new(),
            label_counter: 0,
        };
        // Local declarations.
        let n_locals = self
            .rng
            .gen_range(self.opts.min_locals..=self.opts.max_locals);
        for _ in 0..n_locals {
            self.emit_local_decl(&mut ctx);
        }
        // Statement soup.
        let n_stmts = self
            .rng
            .gen_range(self.opts.min_stmts..=self.opts.max_stmts);
        for _ in 0..n_stmts {
            self.emit_statement(&mut ctx, 0);
        }
        // Conjecture 1 instrumentation: the paper adds a call to an external
        // non-optimizable function at a random point, passing "a plurality of
        // the local variables" (§4.2). Emit one or more such calls.
        let n_sink = self.rng.gen_range(1..=self.opts.max_sink_calls.max(1));
        for _ in 0..n_sink {
            self.emit_sink_call(&mut ctx);
        }
        self.builder.push(ctx.func, Stmt::ret(Some(Expr::lit(0))));
    }

    fn emit_local_decl(&mut self, ctx: &mut MainContext) {
        let roll: f64 = self.rng.gen();
        if roll < self.opts.pointer_prob && !self.scalar_globals.is_empty() {
            // Pointer local, pointing to a global or an earlier local.
            let name = self.fresh_name("ptr");
            let id = self.builder.local(ctx.func, &name, Ty::Ptr(&Ty::I32));
            let target = if self.rng.gen_bool(0.5) || ctx.locals.is_empty() {
                VarRef::Global(self.pick_scalar_global())
            } else {
                let candidates: Vec<LocalId> = ctx
                    .locals
                    .iter()
                    .copied()
                    .filter(|l| !ctx.pointer_locals.contains(l))
                    .collect();
                if candidates.is_empty() {
                    VarRef::Global(self.pick_scalar_global())
                } else {
                    VarRef::Local(candidates[self.rng.gen_range(0..candidates.len())])
                }
            };
            self.builder
                .push(ctx.func, Stmt::decl(id, Some(Expr::addr_of(target))));
            ctx.pointer_locals.push(id);
            ctx.locals.push(id);
        } else if roll < self.opts.pointer_prob + self.opts.constant_local_prob {
            // Constant-valued local (feeds Conjecture 2's constant class and
            // the constant-folding defects).
            let name = self.fresh_name("c");
            let ty = self.scalar_ty();
            let id = self.builder.local(ctx.func, &name, ty);
            let lit = self.small_literal();
            self.builder
                .push(ctx.func, Stmt::decl(id, Some(Expr::lit(ty.wrap(lit)))));
            ctx.constant_locals.push(id);
            ctx.locals.push(id);
        } else {
            // Ordinary local initialized from a global or a literal.
            let name = self.fresh_name("v");
            let ty = self.scalar_ty();
            let id = self.builder.local(ctx.func, &name, ty);
            let init = if self.rng.gen_bool(0.5) && !self.scalar_globals.is_empty() {
                Expr::global(self.pick_scalar_global())
            } else {
                Expr::lit(self.small_literal())
            };
            self.builder.push(ctx.func, Stmt::decl(id, Some(init)));
            ctx.locals.push(id);
        }
    }

    /// A side-effect-free expression over constants, locals and globals.
    /// Pointer-typed locals are excluded so the value semantics stay simple.
    fn emit_expr(&mut self, ctx: &MainContext, depth: usize) -> Expr {
        if depth >= self.opts.max_expr_depth || self.rng.gen_bool(0.35) {
            return self.emit_leaf(ctx);
        }
        let roll = self.rng.gen_range(0..10);
        match roll {
            0..=5 => {
                let op = BinOp::ALL[self.rng.gen_range(0..BinOp::ALL.len())];
                Expr::binary(
                    op,
                    self.emit_expr(ctx, depth + 1),
                    self.emit_expr(ctx, depth + 1),
                )
            }
            6 => {
                let op = [UnOp::Neg, UnOp::Not, UnOp::LogicalNot][self.rng.gen_range(0..3)];
                Expr::unary(op, self.emit_expr(ctx, depth + 1))
            }
            7 if !self.pure_functions.is_empty()
                && self.rng.gen_bool(self.opts.call_in_expr_prob) =>
            {
                let callee = self.pure_functions[self.rng.gen_range(0..self.pure_functions.len())];
                Expr::call(callee, vec![])
            }
            _ => self.emit_leaf(ctx),
        }
    }

    fn emit_leaf(&mut self, ctx: &MainContext) -> Expr {
        let value_locals: Vec<LocalId> = ctx
            .locals
            .iter()
            .copied()
            .filter(|l| !ctx.pointer_locals.contains(l))
            .collect();
        let roll = self.rng.gen_range(0..10);
        match roll {
            0..=2 => Expr::lit(self.small_literal()),
            3..=5 if !value_locals.is_empty() => {
                Expr::local(value_locals[self.rng.gen_range(0..value_locals.len())])
            }
            6..=7 if !self.scalar_globals.is_empty() => Expr::global(self.pick_scalar_global()),
            8 if !ctx.pointer_locals.is_empty() => Expr::deref(Expr::local(
                ctx.pointer_locals[self.rng.gen_range(0..ctx.pointer_locals.len())],
            )),
            _ => Expr::lit(self.small_literal()),
        }
    }

    fn emit_statement(&mut self, ctx: &mut MainContext, depth: usize) {
        let roll: f64 = self.rng.gen();
        let mut budget = roll;
        let mut pick = |p: f64| {
            if budget < p {
                budget = 2.0;
                true
            } else {
                budget -= p;
                false
            }
        };
        if pick(self.opts.loop_prob) && depth < self.opts.max_depth {
            self.emit_loop(ctx, depth);
        } else if pick(self.opts.if_prob) && depth < self.opts.max_depth {
            self.emit_if(ctx, depth);
        } else if pick(self.opts.internal_call_prob) && !self.aux_functions.is_empty() {
            let (callee, n_params) =
                self.aux_functions[self.rng.gen_range(0..self.aux_functions.len())];
            let args: Vec<Expr> = (0..n_params).map(|_| self.emit_expr(ctx, 1)).collect();
            self.builder
                .push(ctx.func, Stmt::call_internal(callee, args));
        } else if pick(self.opts.goto_loop_prob) && self.opts.goto_loops {
            self.emit_goto_loop(ctx);
        } else if pick(self.opts.block_prob) {
            self.emit_block(ctx, depth);
        } else if pick(self.opts.local_reassign_prob) && !ctx.locals.is_empty() {
            // Reassignment of a local: creates a fresh variable instance for
            // Conjecture 3.
            let target = ctx.locals[self.rng.gen_range(0..ctx.locals.len())];
            if ctx.pointer_locals.contains(&target) {
                let g = self.pick_scalar_global();
                self.builder.push(
                    ctx.func,
                    Stmt::assign(LValue::local(target), Expr::addr_of(VarRef::Global(g))),
                );
            } else {
                ctx.constant_locals.retain(|l| *l != target);
                let value = self.emit_expr(ctx, 0);
                self.builder
                    .push(ctx.func, Stmt::assign(LValue::local(target), value));
            }
        } else {
            self.emit_global_store(ctx);
        }
    }

    /// Assign to a global (scalar or array element) through an expression —
    /// the bread and butter of Conjecture 2.
    fn emit_global_store(&mut self, ctx: &mut MainContext) {
        let value = self.emit_expr(ctx, 0);
        if !self.array_globals.is_empty() && self.rng.gen_bool(0.3) {
            let (arr, dims) =
                self.array_globals[self.rng.gen_range(0..self.array_globals.len())].clone();
            let indices: Vec<Expr> = dims
                .iter()
                .map(|d| Expr::lit(self.rng.gen_range(0..*d) as i64))
                .collect();
            self.builder.push(
                ctx.func,
                Stmt::assign(
                    LValue::Index {
                        base: VarRef::Global(arr),
                        indices,
                    },
                    value,
                ),
            );
        } else {
            let g = self.pick_scalar_global();
            self.builder
                .push(ctx.func, Stmt::assign(LValue::global(g), value));
        }
    }

    /// A canonical counted loop, optionally nested, whose body reads global
    /// arrays indexed by the induction variable and writes a global.
    fn emit_loop(&mut self, ctx: &mut MainContext, depth: usize) {
        let iv_name = self.fresh_name("i");
        let iv = self.builder.local(ctx.func, &iv_name, Ty::I32);
        // Pick a bound: if we will index an array, the bound must match.
        let (body_store, bound) = if !self.array_globals.is_empty() && self.rng.gen_bool(0.7) {
            let (arr, dims) =
                self.array_globals[self.rng.gen_range(0..self.array_globals.len())].clone();
            let bound = dims[0] as i64;
            let mut indices = Vec::new();
            for (d, dim) in dims.iter().enumerate() {
                if d == 0 {
                    indices.push(Expr::local(iv));
                } else {
                    indices.push(Expr::lit(self.rng.gen_range(0..*dim) as i64));
                }
            }
            let dest = self.pick_scalar_global();
            let store = Stmt::assign(
                LValue::global(dest),
                Expr::index(VarRef::Global(arr), indices),
            );
            (store, bound)
        } else {
            let bound = self.rng.gen_range(2..=self.opts.max_trip_count.max(2)) as i64;
            let dest = self.pick_scalar_global();
            let value = Expr::binary(BinOp::Add, Expr::local(iv), self.emit_expr(ctx, 1));
            (Stmt::assign(LValue::global(dest), value), bound)
        };
        let mut body = vec![body_store];
        // Optional extra body statement multiplying the induction variable by
        // a constant local (the paper's intro bug has exactly this shape).
        if self.rng.gen_bool(0.4) && !ctx.constant_locals.is_empty() {
            let c = ctx.constant_locals[self.rng.gen_range(0..ctx.constant_locals.len())];
            let dest = self.pick_scalar_global();
            body.push(Stmt::assign(
                LValue::global(dest),
                Expr::binary(BinOp::Mul, Expr::local(iv), Expr::local(c)),
            ));
        }
        // Optional nested loop.
        if depth + 1 < self.opts.max_depth && self.rng.gen_bool(self.opts.nested_loop_prob) {
            let saved = std::mem::take(&mut body);
            self.emit_nested_loop(ctx, &mut body);
            body.extend(saved);
        }
        // Optional opaque call inside the loop body (several reported bugs
        // involve calls within loops).
        if self.rng.gen_bool(self.opts.sink_in_loop_prob) {
            body.push(Stmt::call_opaque(vec![Expr::local(iv)]));
        }
        let stmt = Stmt::for_loop(
            Some(Stmt::assign(LValue::local(iv), Expr::lit(0))),
            Some(Expr::binary(BinOp::Lt, Expr::local(iv), Expr::lit(bound))),
            Some(Stmt::assign(
                LValue::local(iv),
                Expr::binary(BinOp::Add, Expr::local(iv), Expr::lit(1)),
            )),
            body,
        );
        self.builder.push(ctx.func, stmt);
        // The induction variable becomes reusable in later expressions.
        ctx.locals.push(iv);
    }

    fn emit_nested_loop(&mut self, ctx: &mut MainContext, body: &mut Vec<Stmt>) {
        let iv_name = self.fresh_name("j");
        let iv = self.builder.local(ctx.func, &iv_name, Ty::I32);
        let bound = self.rng.gen_range(2..=4) as i64;
        let dest = self.pick_scalar_global();
        let inner = Stmt::for_loop(
            Some(Stmt::assign(LValue::local(iv), Expr::lit(0))),
            Some(Expr::binary(BinOp::Lt, Expr::local(iv), Expr::lit(bound))),
            Some(Stmt::assign(
                LValue::local(iv),
                Expr::binary(BinOp::Add, Expr::local(iv), Expr::lit(1)),
            )),
            vec![Stmt::assign(
                LValue::global(dest),
                Expr::binary(BinOp::Add, Expr::local(iv), Expr::global(dest)),
            )],
        );
        body.push(inner);
        ctx.locals.push(iv);
    }

    fn emit_if(&mut self, ctx: &mut MainContext, _depth: usize) {
        let cond = self.emit_expr(ctx, 1);
        let g = self.pick_scalar_global();
        let then_value = self.emit_expr(ctx, 1);
        let then_branch = vec![Stmt::assign(LValue::global(g), then_value)];
        let else_branch = if self.rng.gen_bool(0.4) {
            let g2 = self.pick_scalar_global();
            let else_value = self.emit_expr(ctx, 1);
            vec![Stmt::assign(LValue::global(g2), else_value)]
        } else {
            Vec::new()
        };
        self.builder
            .push(ctx.func, Stmt::if_stmt(cond, then_branch, else_branch));
    }

    /// The `label: if (quiet) goto label;` pattern of the paper's §3.4 —
    /// terminates because the quiescent global is never written.
    fn emit_goto_loop(&mut self, ctx: &mut MainContext) {
        let Some(quiet) = self.quiescent_global else {
            return;
        };
        ctx.label_counter += 1;
        let label = ctx.label_counter;
        self.builder.push(ctx.func, Stmt::label(label));
        self.builder.push(
            ctx.func,
            Stmt::if_stmt(Expr::global(quiet), vec![Stmt::goto(label)], vec![]),
        );
    }

    fn emit_block(&mut self, ctx: &mut MainContext, _depth: usize) {
        // Unnamed scope containing a constant declaration and a global store
        // (the paper's gcc bug 104891 involves exactly this shape).
        let name = self.fresh_name("s");
        let ty = self.scalar_ty();
        let inner = self.builder.local(ctx.func, &name, ty);
        let lit = self.small_literal();
        let g = self.pick_scalar_global();
        let body = vec![
            Stmt::decl(inner, Some(Expr::lit(ty.wrap(lit)))),
            Stmt::assign(
                LValue::global(g),
                Expr::binary(BinOp::Add, Expr::local(inner), Expr::lit(1)),
            ),
        ];
        ctx.constant_locals.push(inner);
        ctx.locals.push(inner);
        self.builder.push(ctx.func, Stmt::block(body));
    }

    fn emit_sink_call(&mut self, ctx: &mut MainContext) {
        if ctx.locals.is_empty() {
            self.builder
                .push(ctx.func, Stmt::call_opaque(vec![Expr::lit(0)]));
            return;
        }
        // Pass a plurality of the local variables, as the paper does.
        let mut vars: Vec<LocalId> = ctx.locals.clone();
        // Deterministic shuffle via the rng.
        for i in (1..vars.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            vars.swap(i, j);
        }
        let take = (vars.len() / 2).clamp(1, self.opts.max_sink_args.max(1));
        let args: Vec<Expr> = vars.into_iter().take(take).map(Expr::local).collect();
        self.builder.push(ctx.func, Stmt::call_opaque(args));
    }
}

struct MainContext {
    func: FunctionId,
    locals: Vec<LocalId>,
    constant_locals: Vec<LocalId>,
    pointer_locals: Vec<LocalId>,
    label_counter: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use holes_minic::validate::validate;

    #[test]
    fn generation_is_deterministic() {
        let a = ProgramGenerator::from_seed(42).generate();
        let b = ProgramGenerator::from_seed(42).generate();
        assert_eq!(a.source.text, b.source.text);
        assert_eq!(a.program, b.program);
    }

    #[test]
    fn different_seeds_differ() {
        let a = ProgramGenerator::from_seed(1).generate();
        let b = ProgramGenerator::from_seed(2).generate();
        assert_ne!(a.source.text, b.source.text);
    }

    #[test]
    fn generated_programs_validate_and_terminate() {
        for seed in 0..40 {
            let generated = ProgramGenerator::from_seed(seed).generate();
            assert_eq!(validate(&generated.program), Ok(()), "seed {seed}");
            let outcome = Interpreter::new(&generated.program)
                .run()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(outcome.steps > 0);
        }
    }

    #[test]
    fn pool_generation_produces_distinct_programs() {
        let pool = generate_pool(100, 10);
        assert_eq!(pool.len(), 10);
        let mut texts: Vec<&str> = pool.iter().map(|p| p.source.text.as_str()).collect();
        texts.sort_unstable();
        texts.dedup();
        assert!(
            texts.len() >= 9,
            "programs should almost always be distinct"
        );
    }

    #[test]
    fn most_programs_have_conjecture_sites() {
        let pool = generate_pool(500, 20);
        let with_c1 = pool
            .iter()
            .filter(|p| !p.analysis.opaque_calls.is_empty())
            .count();
        let with_c2 = pool
            .iter()
            .filter(|p| !p.analysis.global_stores.is_empty())
            .count();
        let with_c3 = pool
            .iter()
            .filter(|p| !p.analysis.local_assignments.is_empty())
            .count();
        assert!(with_c1 >= 18, "C1 sites in {with_c1}/20");
        assert!(with_c2 >= 10, "C2 sites in {with_c2}/20");
        assert!(with_c3 >= 18, "C3 sites in {with_c3}/20");
    }

    #[test]
    fn options_influence_program_shape() {
        let opts = GeneratorOptions {
            min_stmts: 1,
            max_stmts: 2,
            min_locals: 1,
            max_locals: 2,
            max_sink_calls: 1,
            ..GeneratorOptions::default()
        };
        let small = ProgramGenerator::new(9, opts).generate();
        let big = ProgramGenerator::from_seed(9).generate();
        assert!(small.program.stmt_count() <= big.program.stmt_count());
    }

    #[test]
    fn line_maps_cover_all_statement_lines() {
        let generated = ProgramGenerator::from_seed(3).generate();
        let main = generated.program.main();
        let lines = generated.source.lines_of(main);
        assert!(!lines.is_empty());
        for &line in lines {
            assert_eq!(generated.source.function_of_line(line), Some(main));
        }
    }
}
