//! Generator options — the reproduction's analogue of the "assortments of 20
//! options that define program characteristics" the paper draws for every
//! Csmith invocation (§4.1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The twenty knobs of the program generator.
///
/// Every field has a sensible default; [`GeneratorOptions::assortment`]
/// derives a randomized assortment from a seed, which is how campaign runs
/// diversify the generated pool.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorOptions {
    /// 1. Minimum number of scalar globals.
    pub min_globals: usize,
    /// 2. Maximum number of scalar globals.
    pub max_globals: usize,
    /// 3. Minimum number of global arrays.
    pub min_arrays: usize,
    /// 4. Maximum number of global arrays.
    pub max_arrays: usize,
    /// 5. Maximum number of array dimensions (1–3).
    pub max_array_dims: usize,
    /// 6. Probability that a global is declared `volatile`.
    pub volatile_prob: f64,
    /// 7. Maximum number of auxiliary (non-`main`) functions.
    pub max_aux_functions: usize,
    /// 8. Maximum number of parameters of auxiliary functions.
    pub max_params: usize,
    /// 9. Probability that an auxiliary function is pure (returns a constant).
    pub pure_function_prob: f64,
    /// 10. Minimum number of locals declared in `main`.
    pub min_locals: usize,
    /// 11. Maximum number of locals declared in `main`.
    pub max_locals: usize,
    /// 12. Minimum number of top-level statements in `main`.
    pub min_stmts: usize,
    /// 13. Maximum number of top-level statements in `main`.
    pub max_stmts: usize,
    /// 14. Maximum statement nesting depth.
    pub max_depth: usize,
    /// 15. Maximum expression depth.
    pub max_expr_depth: usize,
    /// 16. Probability of emitting a counted loop at a statement slot.
    pub loop_prob: f64,
    /// 17. Probability that a loop contains a nested loop.
    pub nested_loop_prob: f64,
    /// 18. Probability of emitting an `if` at a statement slot.
    pub if_prob: f64,
    /// 19. Probability of emitting an internal call at a statement slot.
    pub internal_call_prob: f64,
    /// 20. Probability of declaring a pointer local.
    pub pointer_prob: f64,
    /// Probability of declaring a constant-valued local.
    pub constant_local_prob: f64,
    /// Probability of reassigning an existing local at a statement slot.
    pub local_reassign_prob: f64,
    /// Probability of emitting an unnamed scope at a statement slot.
    pub block_prob: f64,
    /// Whether `label: if (g) goto label;` patterns may be generated.
    pub goto_loops: bool,
    /// Probability of emitting a goto loop at a statement slot.
    pub goto_loop_prob: f64,
    /// Probability that a loop body contains an opaque sink call.
    pub sink_in_loop_prob: f64,
    /// Probability that an expression may contain a call to a pure function.
    pub call_in_expr_prob: f64,
    /// Maximum trip count for loops that do not index an array.
    pub max_trip_count: usize,
    /// Maximum number of standalone opaque sink calls appended to `main`.
    pub max_sink_calls: usize,
    /// Maximum number of variables passed to one sink call.
    pub max_sink_args: usize,
}

impl Default for GeneratorOptions {
    fn default() -> GeneratorOptions {
        GeneratorOptions {
            min_globals: 2,
            max_globals: 5,
            min_arrays: 1,
            max_arrays: 3,
            max_array_dims: 3,
            volatile_prob: 0.3,
            max_aux_functions: 2,
            max_params: 3,
            pure_function_prob: 0.4,
            min_locals: 3,
            max_locals: 8,
            min_stmts: 4,
            max_stmts: 12,
            max_depth: 3,
            max_expr_depth: 3,
            loop_prob: 0.3,
            nested_loop_prob: 0.35,
            if_prob: 0.15,
            internal_call_prob: 0.1,
            pointer_prob: 0.15,
            constant_local_prob: 0.35,
            local_reassign_prob: 0.15,
            block_prob: 0.08,
            goto_loops: true,
            goto_loop_prob: 0.05,
            sink_in_loop_prob: 0.25,
            call_in_expr_prob: 0.5,
            max_trip_count: 6,
            max_sink_calls: 2,
            max_sink_args: 5,
        }
    }
}

impl GeneratorOptions {
    /// Derive a randomized assortment of options from a seed.
    ///
    /// The ranges are chosen so that every assortment still produces
    /// conjecture-relevant constructs with high probability, while varying
    /// the mix enough to exercise different optimizer paths.
    pub fn assortment(seed: u64) -> GeneratorOptions {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA076_1D64_78BD_642F);
        let defaults = GeneratorOptions::default();
        GeneratorOptions {
            min_globals: rng.gen_range(1..=3),
            max_globals: rng.gen_range(3..=6),
            min_arrays: rng.gen_range(0..=1),
            max_arrays: rng.gen_range(1..=3),
            max_array_dims: rng.gen_range(1..=3),
            volatile_prob: rng.gen_range(0.1..0.5),
            max_aux_functions: rng.gen_range(0..=3),
            max_params: rng.gen_range(1..=4),
            pure_function_prob: rng.gen_range(0.2..0.6),
            min_locals: rng.gen_range(2..=4),
            max_locals: rng.gen_range(5..=10),
            min_stmts: rng.gen_range(3..=6),
            max_stmts: rng.gen_range(8..=16),
            max_depth: rng.gen_range(2..=3),
            max_expr_depth: rng.gen_range(2..=4),
            loop_prob: rng.gen_range(0.2..0.45),
            nested_loop_prob: rng.gen_range(0.2..0.5),
            if_prob: rng.gen_range(0.05..0.25),
            internal_call_prob: rng.gen_range(0.05..0.2),
            pointer_prob: rng.gen_range(0.05..0.25),
            constant_local_prob: rng.gen_range(0.25..0.5),
            local_reassign_prob: rng.gen_range(0.1..0.25),
            block_prob: rng.gen_range(0.02..0.15),
            goto_loops: rng.gen_bool(0.7),
            goto_loop_prob: rng.gen_range(0.02..0.1),
            sink_in_loop_prob: rng.gen_range(0.15..0.4),
            call_in_expr_prob: rng.gen_range(0.3..0.7),
            max_trip_count: rng.gen_range(3..=8),
            max_sink_calls: rng.gen_range(1..=3),
            max_sink_args: defaults.max_sink_args,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let o = GeneratorOptions::default();
        assert!(o.min_globals <= o.max_globals);
        assert!(o.min_arrays <= o.max_arrays);
        assert!(o.min_locals <= o.max_locals);
        assert!(o.min_stmts <= o.max_stmts);
        assert!(o.max_array_dims >= 1 && o.max_array_dims <= 3);
    }

    #[test]
    fn assortment_is_deterministic() {
        assert_eq!(
            GeneratorOptions::assortment(5),
            GeneratorOptions::assortment(5)
        );
        assert_ne!(
            GeneratorOptions::assortment(5),
            GeneratorOptions::assortment(6)
        );
    }

    #[test]
    fn assortments_are_consistent_ranges() {
        for seed in 0..100 {
            let o = GeneratorOptions::assortment(seed);
            assert!(o.min_globals <= o.max_globals, "seed {seed}");
            assert!(o.min_arrays <= o.max_arrays, "seed {seed}");
            assert!(o.min_locals <= o.max_locals, "seed {seed}");
            assert!(o.min_stmts <= o.max_stmts, "seed {seed}");
            assert!(
                o.volatile_prob > 0.0 && o.volatile_prob < 1.0,
                "seed {seed}"
            );
        }
    }
}
