//! Half-open seed ranges and their sharding, the unit of work of campaign
//! drivers.
//!
//! A campaign over seeds `A..B` can be split into `K` shards that partition
//! the range by `(seed - A) % K`, so consecutive seeds spread evenly across
//! shards regardless of how expensive individual programs turn out to be.
//! Shard `i` of `K` enumerates exactly the seeds the monolithic range does,
//! restricted to its residue class — the property the shard-merge machinery
//! of `holes_pipeline` relies on.

/// A half-open range of generator seeds, `start..end`, spelled `A..B` on the
/// command line and in report files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SeedRange {
    /// First seed of the range (inclusive).
    pub start: u64,
    /// End of the range (exclusive).
    pub end: u64,
}

impl SeedRange {
    /// A range from `start` (inclusive) to `end` (exclusive).
    ///
    /// # Panics
    ///
    /// Panics if `start > end`.
    pub fn new(start: u64, end: u64) -> SeedRange {
        assert!(start <= end, "seed range start {start} exceeds end {end}");
        SeedRange { start, end }
    }

    /// Number of seeds in the range.
    pub fn len(self) -> u64 {
        self.end - self.start
    }

    /// Whether the range contains no seeds.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Whether `seed` falls inside the range.
    pub fn contains(self, seed: u64) -> bool {
        (self.start..self.end).contains(&seed)
    }

    /// All seeds of the range, in increasing order.
    pub fn iter(self) -> impl Iterator<Item = u64> {
        self.start..self.end
    }

    /// The seeds of shard `shard` out of `shards`, in increasing order:
    /// every seed with `(seed - start) % shards == shard`. The `shards`
    /// shards partition the range.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `shard >= shards`.
    pub fn shard_seeds(self, shards: u64, shard: u64) -> impl Iterator<Item = u64> {
        assert!(shards > 0, "shard count must be positive");
        assert!(shard < shards, "shard index {shard} out of {shards}");
        // Saturation is exact here: if `start + shard` overflows it exceeds
        // every representable seed, so the shard is empty either way.
        (self.start.saturating_add(shard)..self.end).step_by(shards as usize)
    }

    /// Number of seeds in shard `shard` out of `shards` — the closed form
    /// of `shard_seeds(shards, shard).count()`, O(1) for any range size.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or `shard >= shards`.
    pub fn shard_len(self, shards: u64, shard: u64) -> u64 {
        assert!(shards > 0, "shard count must be positive");
        assert!(shard < shards, "shard index {shard} out of {shards}");
        self.len() / shards + u64::from(shard < self.len() % shards)
    }
}

impl std::fmt::Display for SeedRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Failed parse of a [`SeedRange`] spelling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseSeedRangeError {
    input: String,
}

impl std::fmt::Display for ParseSeedRangeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid seed range `{}` (expected `start..end` with start <= end)",
            self.input
        )
    }
}

impl std::error::Error for ParseSeedRangeError {}

impl std::str::FromStr for SeedRange {
    type Err = ParseSeedRangeError;

    /// Parse the `A..B` spelling (half-open, `A <= B`).
    fn from_str(s: &str) -> Result<SeedRange, ParseSeedRangeError> {
        let error = || ParseSeedRangeError {
            input: s.to_owned(),
        };
        let (start, end) = s.split_once("..").ok_or_else(error)?;
        let start: u64 = start.trim().parse().map_err(|_| error())?;
        let end: u64 = end.trim().parse().map_err(|_| error())?;
        if start > end {
            return Err(error());
        }
        Ok(SeedRange { start, end })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_displays_the_half_open_spelling() {
        let range: SeedRange = "0..200".parse().unwrap();
        assert_eq!(range, SeedRange::new(0, 200));
        assert_eq!(range.to_string(), "0..200");
        assert_eq!(range.len(), 200);
        assert!(range.contains(0) && range.contains(199) && !range.contains(200));
        assert_eq!("7..7".parse::<SeedRange>().unwrap().len(), 0);
        assert!("7..7".parse::<SeedRange>().unwrap().is_empty());
        for bad in ["5", "5..x", "x..5", "9..3", "..", ""] {
            assert!(bad.parse::<SeedRange>().is_err(), "{bad}");
        }
    }

    #[test]
    fn shards_partition_the_range() {
        let range = SeedRange::new(10, 47);
        for shards in 1..=6 {
            let mut merged: Vec<u64> = (0..shards)
                .flat_map(|shard| range.shard_seeds(shards, shard))
                .collect();
            merged.sort_unstable();
            assert_eq!(merged, range.iter().collect::<Vec<_>>(), "K={shards}");
        }
        // Each shard is internally increasing and matches the closed-form
        // length.
        for shard in 0..4 {
            let seeds: Vec<u64> = range.shard_seeds(4, shard).collect();
            assert!(seeds.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(seeds.len() as u64, range.shard_len(4, shard));
        }
        // Closed-form length agrees with enumeration on uneven splits, empty
        // ranges, and huge seed offsets.
        for (start, end) in [(0u64, 10), (5, 5), (u64::MAX - 3, u64::MAX)] {
            let range = SeedRange::new(start, end);
            for shards in 1..=5 {
                for shard in 0..shards {
                    assert_eq!(
                        range.shard_len(shards, shard),
                        range.shard_seeds(shards, shard).count() as u64,
                        "{range} K={shards} i={shard}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "shard index")]
    fn shard_index_out_of_range_panics() {
        let _ = SeedRange::new(0, 10).shard_seeds(3, 3);
    }
}
