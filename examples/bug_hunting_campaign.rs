//! A full bug-hunting campaign in miniature: generate a pool, check the
//! three conjectures across all optimization levels of both compiler
//! personalities, triage the culprit optimizations, classify the DIE
//! manifestations, and print Table 1/2/3-style summaries.
//!
//! ```sh
//! cargo run --release --example bug_hunting_campaign -- 25
//! ```

use holes_compiler::Personality;
use holes_pipeline::campaign::run_campaign;
use holes_pipeline::report::build_report;
use holes_pipeline::subject_pool;
use holes_pipeline::triage::triage_campaign;

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    println!("generating {count} programs...");
    let pool = subject_pool(99_000, count);
    for personality in [Personality::Lcc, Personality::Ccg] {
        let trunk = personality.trunk();
        let result = run_campaign(&pool, personality, trunk);
        println!("\n================ {personality} trunk ================");
        println!("--- Table 1: violations per level ---");
        println!("{}", result.table1());
        println!(
            "violations reproducing at every level: {}",
            result.at_all_levels()
        );

        println!("--- Table 2: top culprit optimizations ---");
        let triaged = triage_campaign(&pool, personality, trunk, &result, 5);
        println!("{}", triaged.render(5));

        println!("--- Table 3: DIE-level classification ---");
        let report = build_report(
            &pool,
            &result,
            personality,
            trunk,
            holes_pipeline::BackendKind::Reg,
            30,
        );
        println!("{}", report.render());
    }
}
