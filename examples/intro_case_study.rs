//! A directed case study mirroring the paper's introductory gcc bug
//! (bug 105161): a constant-valued variable `j` takes part in computing an
//! array index inside a loop; constant folding removes its storage, and the
//! buggy compiler forgets to describe the constant in debug information, so
//! the debugger shows `j` as optimized out at the access line.
//!
//! ```sh
//! cargo run --example intro_case_study
//! ```

use holes_compiler::{CompilerConfig, OptLevel, Personality};
use holes_minic::ast::{BinOp, Expr, LValue, Stmt, Ty, VarRef};
use holes_minic::build::ProgramBuilder;
use holes_pipeline::report::classify;
use holes_pipeline::triage::triage;
use holes_pipeline::Subject;

fn main() {
    // int b[10][2]; int a;
    // int main() {
    //   int i = 0, j, k;
    //   for (; i < 10; i++) {
    //     j = k = 0;
    //     for (; k < 1; k++)
    //       a = b[i][(j) * k];
    //   }
    // }
    let mut builder = ProgramBuilder::new();
    let b_arr = builder.global_array("b", Ty::I32, false, vec![10, 2], vec![7; 20]);
    let a = builder.global("a", Ty::I32, true, vec![0]);
    let main = builder.function("main", Ty::I32);
    let i = builder.local(main, "i", Ty::I32);
    let j = builder.local(main, "j", Ty::I32);
    let k = builder.local(main, "k", Ty::I32);
    let inner = Stmt::for_loop(
        Some(Stmt::assign(LValue::local(k), Expr::lit(0))),
        Some(Expr::binary(BinOp::Lt, Expr::local(k), Expr::lit(1))),
        Some(Stmt::assign(
            LValue::local(k),
            Expr::binary(BinOp::Add, Expr::local(k), Expr::lit(1)),
        )),
        vec![Stmt::assign(
            LValue::global(a),
            Expr::index(
                VarRef::Global(b_arr),
                vec![
                    Expr::local(i),
                    Expr::binary(BinOp::Mul, Expr::local(j), Expr::local(k)),
                ],
            ),
        )],
    );
    let outer = Stmt::for_loop(
        Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
        Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(10))),
        Some(Stmt::assign(
            LValue::local(i),
            Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
        )),
        vec![Stmt::assign(LValue::local(j), Expr::lit(0)), inner],
    );
    builder.push(main, outer);
    builder.push(main, Stmt::ret(Some(Expr::lit(0))));
    let subject = Subject::from_program(builder.finish());
    println!("--- test program ---\n{}", subject.source.text);

    // The gcc-like trunk at -O1 carries the constant-folding defect that
    // models the paper's bug.
    let config = CompilerConfig::new(Personality::Ccg, OptLevel::O1);
    let violations = subject.violations(&config);
    if violations.is_empty() {
        println!("no violation (try another level or version)");
        return;
    }
    for violation in &violations {
        println!(
            "{} violated at line {} for variable `{}` ({:?})",
            violation.conjecture, violation.line, violation.variable, violation.observed
        );
        let (category, component) = classify(&subject, &config, violation);
        println!("  DIE analysis: {category}, attributed to the {component:?}");
        let outcome = triage(&subject, &config, violation);
        println!("  culprit optimization(s): {:?}", outcome.culprits);
    }

    // The defect-free compiler keeps `j` available: the loss is a defect, not
    // an unavoidable effect of optimization.
    let clean = subject.violations(&config.clone().without_defects());
    println!(
        "violations with the hypothetical defect-free compiler: {}",
        clean.len()
    );
}
