//! The §2 quantitative study (Figure 1) on a configurable pool: line
//! coverage, availability of variables and their product, per compiler
//! version and optimization level.
//!
//! ```sh
//! cargo run --release --example quantitative_study -- 50
//! ```

use holes_compiler::Personality;
use holes_pipeline::regression::quantitative_study;
use holes_pipeline::subject_pool;

fn main() {
    let count: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(10);
    println!("generating {count} programs...");
    let pool = subject_pool(7_000, count);
    for personality in [Personality::Lcc, Personality::Ccg] {
        println!("== Figure 1 data ({personality}) ==");
        println!(
            "{:<10} {:<6} {:>9} {:>9} {:>9}",
            "version", "level", "line-cov", "avail", "product"
        );
        for row in quantitative_study(&pool, personality) {
            println!(
                "{:<10} {:<6} {:>9.3} {:>9.3} {:>9.3}",
                row.version,
                row.level.flag(),
                row.metrics.line_coverage,
                row.metrics.availability,
                row.metrics.product
            );
        }
    }
}
