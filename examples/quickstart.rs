//! Quickstart: generate a program, compile it with both compiler
//! personalities, debug it, and check the three conjectures.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use holes_compiler::{CompilerConfig, OptLevel, Personality};
use holes_pipeline::Subject;
use holes_progen::ProgramGenerator;

fn main() {
    // 1. Generate a MiniC test program (the Csmith substitute).
    let generated = ProgramGenerator::from_seed(2023).generate();
    let subject = Subject::from_generated(generated);
    println!("--- generated program (seed 2023) ---");
    println!("{}", subject.source.text);

    // 2. Compile and debug it at -O0 and -O2 with the gcc-like personality.
    let o0 = CompilerConfig::new(Personality::Ccg, OptLevel::O0);
    let o2 = CompilerConfig::new(Personality::Ccg, OptLevel::O2);
    let baseline = subject.trace(&o0);
    let optimized = subject.trace(&o2);
    println!(
        "lines steppable: {} at -O0, {} at -O2",
        baseline.lines_reached(),
        optimized.lines_reached()
    );
    let metrics = holes_core::metrics::Metrics::compute(&optimized, &baseline);
    println!(
        "line coverage {:.2}, availability of variables {:.2}, product {:.2}",
        metrics.line_coverage, metrics.availability, metrics.product
    );

    // 3. Check the three conjectures on every optimization level of both
    //    personalities.
    for personality in [Personality::Ccg, Personality::Lcc] {
        for &level in personality.levels() {
            let config = CompilerConfig::new(personality, level);
            let violations = subject.violations(&config);
            println!(
                "{personality} {level}: {} conjecture violation(s)",
                violations.len()
            );
            for v in violations {
                println!(
                    "  {} at line {}: variable `{}` observed as {:?}",
                    v.conjecture, v.line, v.variable, v.observed
                );
            }
        }
    }
}
