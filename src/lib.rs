//! Facade over the reproduction's crates: one `use holes::...` surface for
//! downstream tooling, plus the home of the cross-crate integration tests
//! (`tests/`) and runnable examples (`examples/`).
//!
//! The individual crates remain the canonical API:
//!
//! * [`minic`] — the MiniC language: AST, interpreter, analyses.
//! * [`progen`] — the Csmith-substitute random program generator.
//! * [`compiler`] — the two-personality optimizing compiler with injected
//!   debug-information defects.
//! * [`machine`] — the register VM the compiler targets.
//! * [`debuginfo`] — DWARF-modelled debug information.
//! * [`debugger`] — the gdb/lldb-like source-level debuggers.
//! * [`core`] — the three conjectures and their checkers.
//! * [`pipeline`] — campaigns, triage, reduction, reporting, regression
//!   studies, with the artifact cache, its persistent on-disk second level
//!   ([`pipeline::store`]), the parallel evaluation engine, and the sharded
//!   campaign files ([`pipeline::shard`]) plus their streaming JSON Lines
//!   variant ([`pipeline::stream`]) the CLI builds on.
//!
//! # Runnable entry points
//!
//! The `holes` binary (`crates/cli`) drives the whole §4 pipeline from a
//! shell — `holes help` lists the `generate`, `campaign`, `report`,
//! `triage`, `reduce`, `baseline`, `corpus`, and `cache` subcommands; the
//! top-level `README.md` has a copy-pasteable quickstart and a
//! "Regression gating in CI" recipe for the `baseline`/`corpus` gates.
//!
//! The `examples/` directory exercises the same workflow as library code
//! (all run with `cargo run --release --example <name>`):
//!
//! * `examples/quickstart.rs` — generate one program, compile and debug
//!   it at `-O0`/`-O2`, compute the §2 metrics, and check all three
//!   conjectures on every level of both personalities.
//! * `examples/intro_case_study.rs` — the paper's introductory gcc bug
//!   (105161) as a directed case study: violation, triage, classification.
//! * `examples/bug_hunting_campaign.rs` — a miniature end-to-end campaign:
//!   Table 1, culprit triage (Table 2), and issue classification (Table 3).
//! * `examples/quantitative_study.rs` — the §2 quantitative study
//!   (Figure 1): line coverage and availability per version and level.
//!
//! The CI workflow runs the quickstart example on every push, so the
//! documented entry points cannot silently rot.

#![forbid(unsafe_code)]

pub use holes_compiler as compiler;
pub use holes_core as core;
pub use holes_debugger as debugger;
pub use holes_debuginfo as debuginfo;
pub use holes_machine as machine;
pub use holes_minic as minic;
pub use holes_pipeline as pipeline;
pub use holes_progen as progen;
