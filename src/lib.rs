//! Facade over the reproduction's crates: one `use holes::...` surface for
//! downstream tooling, plus the home of the cross-crate integration tests
//! (`tests/`) and runnable examples (`examples/`).
//!
//! The individual crates remain the canonical API:
//!
//! * [`minic`] — the MiniC language: AST, interpreter, analyses.
//! * [`progen`] — the Csmith-substitute random program generator.
//! * [`compiler`] — the two-personality optimizing compiler with injected
//!   debug-information defects.
//! * [`machine`] — the register VM the compiler targets.
//! * [`debuginfo`] — DWARF-modelled debug information.
//! * [`debugger`] — the gdb/lldb-like source-level debuggers.
//! * [`core`] — the three conjectures and their checkers.
//! * [`pipeline`] — campaigns, triage, reduction, reporting, regression
//!   studies, with the artifact cache and parallel evaluation engine.

#![forbid(unsafe_code)]

pub use holes_compiler as compiler;
pub use holes_core as core;
pub use holes_debugger as debugger;
pub use holes_debuginfo as debuginfo;
pub use holes_machine as machine;
pub use holes_minic as minic;
pub use holes_pipeline as pipeline;
pub use holes_progen as progen;
