//! Acceptance tests for the fleet-wide artifact cache
//! (`holes.cache-rpc/v1`): byte-identity of the merged fleet stream under
//! every cache chaos schedule, zero compiles over a warm shared cache,
//! graceful local-only degradation when the cache server is unreachable,
//! and the proptest non-trust guarantee — a corrupted envelope served over
//! the cache RPC is rejected, quarantined, and recomputed, never believed.
//!
//! The fleet tests run a real TCP coordinator plus in-process `run_worker`
//! threads. Worker subjects bind their store through the process-wide
//! override ([`install_process_store`]), which is global state, so every
//! test in this file serializes on one mutex and uninstalls on exit.

use std::path::PathBuf;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use proptest::prelude::*;

use holes_compiler::{Fingerprint, Personality};
use holes_core::json::Json;
use holes_pipeline::fault::FaultPolicy;
use holes_pipeline::serve::chaos::{CacheMode, CachePlan};
use holes_pipeline::serve::{
    run_worker, Coordinator, LeaseConfig, RemoteStore, ServeConfig, WorkerConfig, WorkerOutcome,
};
use holes_pipeline::shard::CampaignSpec;
use holes_pipeline::store::{
    install_process_store, ArtifactStore, RemoteFetch, RemoteSource, SubjectKey,
};
use holes_pipeline::stream::run_shard_streaming;
use holes_progen::SeedRange;

/// Serializes every test here: the process-wide store override and the
/// worker threads' environment are shared process state.
static FLEET_LOCK: Mutex<()> = Mutex::new(());

fn spec(start: u64, len: u64) -> CampaignSpec {
    CampaignSpec::new(
        Personality::Ccg,
        Personality::Ccg.trunk(),
        SeedRange::new(start, start + len),
    )
}

/// The single-process stream the fleet must reproduce, evaluated with no
/// store attached (pure in-memory caching).
fn reference_stream(campaign: &CampaignSpec) -> Vec<u8> {
    install_process_store(None);
    let mut out = Vec::new();
    run_shard_streaming(campaign, &mut out).expect("reference run");
    out
}

/// A self-deleting scratch directory/file.
struct Scratch {
    path: PathBuf,
    dir: bool,
}

impl Scratch {
    fn file(name: &str) -> Scratch {
        let path = std::env::temp_dir().join(format!("holes-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Scratch { path, dir: false }
    }

    fn dir(name: &str) -> Scratch {
        let path = std::env::temp_dir().join(format!("holes-cache-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        let _ = std::fs::create_dir_all(&path);
        Scratch { path, dir: true }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if self.dir {
            let _ = std::fs::remove_dir_all(&self.path);
        } else {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Run a coordinator (optionally serving `cache` under `cache_chaos`) and
/// `workers` in-process worker threads whose subjects all bind to the
/// already-installed process store. Returns the merged campaign bytes and
/// each worker's outcome.
fn run_fleet(
    campaign: &CampaignSpec,
    cache: Option<Arc<ArtifactStore>>,
    cache_chaos: Option<Arc<CachePlan>>,
    tag: &str,
    workers: usize,
) -> (Vec<u8>, Vec<WorkerOutcome>) {
    let journal = Scratch::file(&format!("{tag}-journal"));
    let config = ServeConfig {
        lease_shards: 4,
        lease: LeaseConfig {
            heartbeat: Duration::from_millis(100),
            max_attempts: 5,
        },
        journal: journal.path.clone(),
        cache,
        cache_chaos,
        quiet: true,
    };
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let drain = std::sync::atomic::AtomicBool::new(false);
    let (report, outcomes) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|i| {
                let addr = addr.clone();
                let tag = tag.to_owned();
                scope.spawn(move || {
                    let work_dir = Scratch::dir(&format!("{tag}-w{i}"));
                    run_worker(&WorkerConfig {
                        connect: addr,
                        work_dir: work_dir.path.clone(),
                        policy: FaultPolicy::default(),
                        worker_id: format!("w{i}"),
                        patience: Duration::from_secs(10),
                        quiet: true,
                    })
                    .expect("worker runs")
                })
            })
            .collect();
        let report = coordinator
            .run(campaign, &config, &drain)
            .expect("coordinator runs");
        let outcomes: Vec<WorkerOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("worker joins"))
            .collect();
        (report, outcomes)
    });
    assert!(report.complete(), "every shard resolved");
    let mut merged = Vec::new();
    report.write_merged(&mut merged).expect("merge writes");
    (merged, outcomes)
}

/// Byte-identity under every cache chaos schedule: dropping, corrupting,
/// or stalling cache replies only ever costs retries or recomputes — the
/// merged fleet stream never moves a byte.
///
/// The clean schedule runs first against a cold coordinator store and
/// proves cold-fleet write-through (its puts warm the coordinator); the
/// chaos schedules then run cold workers over that warm store, so the
/// mutated replies are cache **hits** — the nastiest case, a corrupted
/// artifact envelope offered to the validation gates.
#[test]
fn fleet_stream_is_byte_identical_under_every_cache_chaos_schedule() {
    let _lock = FLEET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let campaign = spec(4710, 4);
    let reference = reference_stream(&campaign);

    let coord_dir = Scratch::dir("chaos-coord");
    let coord_store =
        Arc::new(ArtifactStore::open(&coord_dir.path).expect("coordinator store opens"));
    let schedules: [(&str, Option<(CacheMode, u32)>); 5] = [
        ("clean", None),
        ("drop", Some((CacheMode::Drop, 1))),
        ("corrupt1", Some((CacheMode::Corrupt, 1))),
        ("corrupt3", Some((CacheMode::Corrupt, 3))),
        ("delay", Some((CacheMode::Delay, 1))),
    ];
    for (tag, schedule) in schedules {
        let worker_dir = Scratch::dir(&format!("{tag}-local"));
        let chaos = schedule.map(|(mode, count)| Arc::new(CachePlan::new(mode, count)));

        let (merged, _) = run_fleet_with_remote(
            &campaign,
            Some(Arc::clone(&coord_store)),
            chaos,
            tag,
            &worker_dir,
        );
        assert_eq!(
            String::from_utf8(merged).expect("UTF-8"),
            String::from_utf8(reference.clone()).expect("UTF-8"),
            "schedule `{tag}` changed campaign bytes"
        );
        if schedule.is_none() {
            let stats = coord_store.stats();
            assert!(
                stats.writes > 0,
                "write-through puts warmed the coordinator store: {stats:?}"
            );
        }
        install_process_store(None);
    }
}

/// [`run_fleet`] for the common case where the worker store's remote tier
/// points at the coordinator being started (the address exists only after
/// bind, so the store is assembled inside).
fn run_fleet_with_remote(
    campaign: &CampaignSpec,
    cache: Option<Arc<ArtifactStore>>,
    cache_chaos: Option<Arc<CachePlan>>,
    tag: &str,
    worker_dir: &Scratch,
) -> (Vec<u8>, Vec<WorkerOutcome>) {
    let journal = Scratch::file(&format!("{tag}-journal"));
    let config = ServeConfig {
        lease_shards: 4,
        lease: LeaseConfig {
            heartbeat: Duration::from_millis(100),
            max_attempts: 5,
        },
        journal: journal.path.clone(),
        cache,
        cache_chaos,
        quiet: true,
    };
    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let local = Arc::new(ArtifactStore::open(&worker_dir.path).expect("worker store opens"));
    local.attach_remote(Arc::new(
        RemoteStore::new(addr.clone())
            .with_timeout(Duration::from_millis(500))
            .with_quiet(true),
    ));
    install_process_store(Some(local));
    let drain = std::sync::atomic::AtomicBool::new(false);
    let (report, outcomes) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let addr = addr.clone();
                let tag = tag.to_owned();
                scope.spawn(move || {
                    let work_dir = Scratch::dir(&format!("{tag}-w{i}"));
                    run_worker(&WorkerConfig {
                        connect: addr,
                        work_dir: work_dir.path.clone(),
                        policy: FaultPolicy::default(),
                        worker_id: format!("w{i}"),
                        patience: Duration::from_secs(10),
                        quiet: true,
                    })
                    .expect("worker runs")
                })
            })
            .collect();
        let report = coordinator
            .run(campaign, &config, &drain)
            .expect("coordinator runs");
        let outcomes: Vec<WorkerOutcome> = handles
            .into_iter()
            .map(|h| h.join().expect("worker joins"))
            .collect();
        (report, outcomes)
    });
    assert!(report.complete(), "every shard resolved");
    let mut merged = Vec::new();
    report.write_merged(&mut merged).expect("merge writes");
    (merged, outcomes)
}

/// The warm-cache guarantee: a fleet whose workers start cold but share
/// the coordinator's warmed cache performs **zero compiles** on any
/// worker, every miss answered by remote fetch, and still reproduces the
/// reference bytes exactly.
#[test]
fn a_warm_shared_cache_fleet_performs_zero_compiles() {
    let _lock = FLEET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let campaign = spec(4760, 4);

    // Warm the coordinator's store with a single-process run of the same
    // campaign; its output doubles as the byte-identity reference.
    let coord_dir = Scratch::dir("warm-coord");
    let coord_store =
        Arc::new(ArtifactStore::open(&coord_dir.path).expect("coordinator store opens"));
    install_process_store(Some(Arc::clone(&coord_store)));
    let mut reference = Vec::new();
    let (_, warm_stats) = run_shard_streaming(&campaign, &mut reference).expect("warming run");
    assert!(warm_stats.compiles > 0, "the warming run paid the compiles");
    install_process_store(None);

    let worker_dir = Scratch::dir("warm-local");
    let (merged, outcomes) = run_fleet_with_remote(
        &campaign,
        Some(Arc::clone(&coord_store)),
        None,
        "warm",
        &worker_dir,
    );
    install_process_store(None);

    assert_eq!(
        String::from_utf8(merged).expect("UTF-8"),
        String::from_utf8(reference).expect("UTF-8"),
        "warm fleet changed campaign bytes"
    );
    for (i, outcome) in outcomes.iter().enumerate() {
        assert_eq!(
            outcome.stats.compiles, 0,
            "worker {i} compiled over a warm shared cache: {:?}",
            outcome.stats
        );
    }
    assert!(
        outcomes.iter().any(|o| o.leases > 0),
        "the fleet actually worked"
    );
}

/// An unreachable cache server is never fatal: the circuit breaker trips,
/// the fleet degrades to local-only caching with the degradation counted,
/// and the merged bytes still match the reference.
#[test]
fn an_unreachable_cache_server_degrades_to_local_only() {
    let _lock = FLEET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let campaign = spec(4810, 4);
    let reference = reference_stream(&campaign);

    let worker_dir = Scratch::dir("degrade-local");
    let local = Arc::new(ArtifactStore::open(&worker_dir.path).expect("worker store opens"));
    // Port 1 refuses immediately; threshold 1 and a long probe window keep
    // the breaker open (and the test fast) for the whole run.
    local.attach_remote(Arc::new(
        RemoteStore::new("127.0.0.1:1")
            .with_timeout(Duration::from_millis(100))
            .with_failure_threshold(1)
            .with_probe_after(Duration::from_secs(600))
            .with_quiet(true),
    ));
    install_process_store(Some(Arc::clone(&local)));

    let (merged, outcomes) = run_fleet(&campaign, None, None, "degrade", 2);
    install_process_store(None);

    assert_eq!(
        String::from_utf8(merged).expect("UTF-8"),
        String::from_utf8(reference).expect("UTF-8"),
        "degraded fleet changed campaign bytes"
    );
    let stats = local.stats();
    assert!(
        stats.remote_degraded > 0,
        "degradation is observable in StoreStats: {stats:?}"
    );
    assert_eq!(stats.remote_hits, 0, "nothing was fetched: {stats:?}");
    assert!(
        outcomes.iter().map(|o| o.stats.compiles).sum::<usize>() > 0,
        "the fleet recomputed locally"
    );
}

/// A remote source that serves envelopes from a warm donor store with one
/// deterministic bit flipped in the compact wire text — the in-process
/// equivalent of `corrupt:N` hitting every reply. A flip that breaks JSON
/// parsing surfaces as a transport-level failure (`Unavailable`), exactly
/// as the TCP client treats an unparseable reply line.
#[derive(Debug)]
struct FlippingSource {
    donor: Arc<ArtifactStore>,
    flip: u64,
}

impl RemoteSource for FlippingSource {
    fn fetch(&self, subject: SubjectKey, fingerprint: Fingerprint, kind: &str) -> RemoteFetch {
        let Some(envelope) = self.donor.fetch_envelope(subject, fingerprint, kind) else {
            return RemoteFetch::Miss;
        };
        let mut bytes = envelope.to_compact().into_bytes();
        let index = (self.flip as usize) % bytes.len();
        let bit = 1u8 << ((self.flip >> 48) % 8);
        bytes[index] ^= bit;
        match String::from_utf8(bytes)
            .ok()
            .and_then(|text| Json::parse(&text).ok())
        {
            Some(corrupted) => RemoteFetch::Hit(corrupted),
            None => RemoteFetch::Unavailable,
        }
    }

    fn put(&self, _envelope: &Json) -> bool {
        true
    }
}

/// The flip proptest's warm donor store and reference bytes, built once:
/// re-warming per case would dominate the test. Initialized under
/// [`FLEET_LOCK`] (it installs the process store transiently); the
/// directory lives in the temp dir for the life of the test process.
fn flip_donor() -> &'static (Arc<ArtifactStore>, Vec<u8>) {
    static DONOR: OnceLock<(Arc<ArtifactStore>, Vec<u8>)> = OnceLock::new();
    DONOR.get_or_init(|| {
        let path =
            std::env::temp_dir().join(format!("holes-cache-flip-donor-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        std::fs::create_dir_all(&path).expect("donor dir");
        let store = Arc::new(ArtifactStore::open(&path).expect("donor store opens"));
        install_process_store(Some(Arc::clone(&store)));
        let mut reference = Vec::new();
        run_shard_streaming(&spec(4900, 2), &mut reference).expect("warming run");
        install_process_store(None);
        (store, reference)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Single-byte-flip non-trust: whatever byte and bit of the served
    /// envelope is corrupted, the store either fails to parse it
    /// (transport failure → degradation counter) or rejects it through
    /// the validation gates (quarantine), and in both cases the subject
    /// is recomputed — campaign bytes never change.
    #[test]
    fn corrupted_cache_envelopes_are_rejected_quarantined_and_recomputed(flip in any::<u64>()) {
        let _lock = FLEET_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let campaign = spec(4900, 2);
        let (donor, reference) = {
            let (store, reference) = flip_donor();
            (Arc::clone(store), reference.clone())
        };

        // Victim: a cold store whose remote tier serves only flipped bytes.
        let victim_dir = Scratch::dir("flip-victim");
        let victim = Arc::new(ArtifactStore::open(&victim_dir.path).expect("victim store opens"));
        victim.attach_remote(Arc::new(FlippingSource { donor, flip }));
        install_process_store(Some(Arc::clone(&victim)));
        let mut out = Vec::new();
        let (_, stats) = run_shard_streaming(&campaign, &mut out).expect("corrupted-cache run");
        install_process_store(None);

        prop_assert_eq!(
            String::from_utf8(out).expect("UTF-8"),
            String::from_utf8(reference).expect("UTF-8"),
            "a corrupted cache envelope changed campaign bytes (flip {})", flip
        );
        prop_assert!(stats.compiles > 0, "the subjects were recomputed: {:?}", stats);
        let store_stats = victim.stats();
        prop_assert!(
            store_stats.remote_rejected + store_stats.remote_degraded > 0,
            "every flipped envelope was refused one way or the other: {:?}",
            store_stats
        );
        // A rejection (as opposed to a parse failure) leaves the evidence
        // in quarantine.
        if store_stats.remote_rejected > 0 {
            prop_assert!(
                store_stats.quarantined > 0,
                "rejected envelopes are quarantined: {:?}",
                store_stats
            );
        }
    }
}
