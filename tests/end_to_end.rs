//! Cross-crate integration tests: generation → compilation → execution →
//! debugging → conjecture checking → triage → reduction, end to end.

use holes_compiler::{compile, CompilerConfig, OptLevel, Personality};
use holes_debugger::{trace, DebuggerKind};
use holes_minic::interp::Interpreter;
use holes_pipeline::campaign::run_campaign;
use holes_pipeline::report::build_report;
use holes_pipeline::triage::triage;
use holes_pipeline::{subject_pool, Subject};
use holes_progen::ProgramGenerator;

/// Every stage of the pipeline agrees on semantics: the interpreter, the
/// unoptimized executable, and every optimized executable of both
/// personalities produce the same observable outcome.
#[test]
fn semantics_agree_across_the_whole_matrix() {
    for seed in 100..106 {
        let generated = ProgramGenerator::from_seed(seed).generate();
        let reference = Interpreter::new(&generated.program)
            .run()
            .expect("interpreter");
        for personality in [Personality::Ccg, Personality::Lcc] {
            for version in [0, personality.trunk(), 5] {
                for &level in personality.levels() {
                    let config = CompilerConfig::new(personality, level).with_version(version);
                    let exe = compile(&generated.program, &config);
                    let outcome = exe.run().expect("vm execution");
                    assert!(
                        outcome.matches(&reference),
                        "seed {seed} {personality} v{version} {level} diverged"
                    );
                }
            }
        }
    }
}

/// The `-O0` baseline never violates any conjecture, for either debugger.
#[test]
fn o0_baseline_is_always_clean() {
    let pool = subject_pool(60_000, 6);
    for subject in &pool {
        for personality in [Personality::Ccg, Personality::Lcc] {
            let exe = subject.compile(&CompilerConfig::new(personality, OptLevel::O0));
            for kind in [DebuggerKind::GdbLike, DebuggerKind::LldbLike] {
                let t = trace(&exe, kind);
                let violations =
                    holes_core::check_all(&subject.program, &subject.analysis, &subject.source, &t);
                assert!(
                    violations.is_empty(),
                    "{personality} {kind:?}: {violations:?}"
                );
            }
        }
    }
}

/// Defect-free optimized compilation never violates a conjecture: every
/// violation the campaign finds is attributable to a catalogued defect.
#[test]
fn violations_only_come_from_catalogued_defects() {
    let pool = subject_pool(61_000, 5);
    for subject in &pool {
        for personality in [Personality::Ccg, Personality::Lcc] {
            for &level in personality.levels() {
                let clean = CompilerConfig::new(personality, level).without_defects();
                assert!(
                    subject.violations(&clean).is_empty(),
                    "defect-free {personality} {level} produced a violation"
                );
            }
        }
    }
}

/// A campaign on the trunk compilers finds violations, they can be triaged,
/// and their DIE-level classification is consistent.
#[test]
fn campaign_triage_and_report_work_together() {
    let pool = subject_pool(62_000, 8);
    let mut total_violations = 0usize;
    for personality in [Personality::Ccg, Personality::Lcc] {
        let result = run_campaign(&pool, personality, personality.trunk());
        total_violations += result.records.len();
        let report = build_report(
            &pool,
            &result,
            personality,
            personality.trunk(),
            holes_pipeline::BackendKind::Reg,
            20,
        );
        assert!(report.rows.len() <= 20);
        if let Some(record) = result.records.first() {
            let config =
                CompilerConfig::new(personality, record.level).with_version(personality.trunk());
            let outcome = triage(&pool[record.subject], &config, &record.violation);
            if personality == Personality::Lcc {
                assert!(!outcome.culprits.is_empty());
            }
        }
    }
    assert!(
        total_violations > 0,
        "the trunk defect catalogue should produce violations on an 8-program pool"
    );
}

/// The debugger-friendly level preserves at least as much debugging
/// experience as the aggressive levels, on average (the headline shape of
/// Figure 1).
#[test]
fn og_dominates_o3_in_the_product_metric() {
    let pool = subject_pool(63_000, 6);
    let mut og_product = 0.0f64;
    let mut o3_product = 0.0f64;
    for subject in &pool {
        let baseline = subject.trace(&CompilerConfig::new(Personality::Ccg, OptLevel::O0));
        let og = subject.trace(&CompilerConfig::new(Personality::Ccg, OptLevel::Og));
        let o3 = subject.trace(&CompilerConfig::new(Personality::Ccg, OptLevel::O3));
        og_product += holes_core::metrics::Metrics::compute(&og, &baseline).product;
        o3_product += holes_core::metrics::Metrics::compute(&o3, &baseline).product;
    }
    assert!(
        og_product >= o3_product,
        "-Og should retain at least as much debug information as -O3 ({og_product} vs {o3_product})"
    );
}

/// Directed reproduction of the paper's LSR case study (§3.3): with the
/// clang-like trunk, the loop induction variable indexing global memory
/// becomes unavailable at the store line; with the partially fixed
/// "trunk-star" profile it is available again at most levels.
#[test]
fn lsr_case_study_reproduces() {
    use holes_minic::ast::{BinOp, Expr, LValue, Stmt, Ty, VarRef};
    use holes_minic::build::ProgramBuilder;
    let mut b = ProgramBuilder::new();
    let arr = b.global_array("a", Ty::I32, false, vec![10], (0..10).collect());
    let c = b.global("c", Ty::I32, true, vec![0]);
    let main = b.function("main", Ty::I32);
    let i = b.local(main, "i", Ty::I32);
    b.push(
        main,
        Stmt::for_loop(
            Some(Stmt::assign(LValue::local(i), Expr::lit(0))),
            Some(Expr::binary(BinOp::Lt, Expr::local(i), Expr::lit(10))),
            Some(Stmt::assign(
                LValue::local(i),
                Expr::binary(BinOp::Add, Expr::local(i), Expr::lit(1)),
            )),
            vec![Stmt::assign(
                LValue::global(c),
                Expr::index(VarRef::Global(arr), vec![Expr::local(i)]),
            )],
        ),
    );
    b.push(main, Stmt::ret(Some(Expr::lit(0))));
    let subject = Subject::from_program(b.finish());
    // Disable the scheduler pass so that only the LSR defect can affect this
    // program (mirroring the paper's flag-based isolation of a culprit).
    let trunk =
        CompilerConfig::new(Personality::Lcc, OptLevel::O2).with_disabled_pass("machine-scheduler");
    let violations = subject.violations(&trunk);
    assert!(
        violations
            .iter()
            .any(|v| v.conjecture == holes_core::Conjecture::C2 && v.variable.as_ref() == "i"),
        "the LSR defect should make the induction variable unavailable: {violations:?}"
    );
    let fixed = trunk.clone().with_version(5);
    let after_fix = subject.violations(&fixed);
    assert!(
        !after_fix
            .iter()
            .any(|v| v.conjecture == holes_core::Conjecture::C2 && v.variable.as_ref() == "i"),
        "the trunk-star profile should fix the O2 LSR violation: {after_fix:?}"
    );
}

/// The frame-layout defect class (stale frame-base rule, missing
/// callee-saved save-slot rule) surfaces violations at sites no
/// pre-existing class reaches: over a seed range, the frame-backend
/// campaign's violation set minus the register- and stack-backend sets
/// (same seeds, same levels) is non-empty, and the frame defects verifiably
/// fired (they appear in the pipeline report like pass-level defects).
#[test]
fn frame_defect_class_surfaces_violations_no_preexisting_class_produces() {
    use holes_compiler::BackendKind;
    use std::collections::HashSet;

    let key = |v: holes_core::Violation| (v.conjecture, v.line, v.variable.as_ref().to_owned());
    let mut frame_only = 0usize;
    let mut frame_defects_fired = false;
    for seed in 0u64..8 {
        let subject = Subject::from_seed(seed);
        for &level in Personality::Ccg.levels() {
            let base = CompilerConfig::new(Personality::Ccg, level);
            let preexisting: HashSet<_> = [BackendKind::Reg, BackendKind::Stack]
                .into_iter()
                .flat_map(|backend| {
                    subject
                        .violations(&base.clone().with_backend(backend))
                        .into_iter()
                        .map(key)
                })
                .collect();
            let frame_config = base.with_backend(BackendKind::Frame);
            frame_defects_fired |= subject
                .compile(&frame_config)
                .report
                .defects_applied
                .iter()
                .any(|id| id.contains("-frame-"));
            frame_only += subject
                .violations(&frame_config)
                .into_iter()
                .map(key)
                .filter(|site| !preexisting.contains(site))
                .count();
        }
    }
    assert!(
        frame_defects_fired,
        "no frame-layout defect fired over the probed seed range"
    );
    assert!(
        frame_only > 0,
        "the frame-layout defect class exposed no new violation sites"
    );
}

#[test]
fn corpus_entries_distill_and_replay_deterministically_on_every_backend() {
    use holes_compiler::BackendKind;
    use holes_core::SiteQuery;
    use holes_pipeline::corpus::distill;

    for backend in [BackendKind::Reg, BackendKind::Stack, BackendKind::Frame] {
        // Find a violating site under this backend.
        let found = (2500u64..2520).find_map(|seed| {
            let subject = Subject::from_seed(seed);
            Personality::Ccg.levels().iter().find_map(|&level| {
                let config = CompilerConfig::new(Personality::Ccg, level).with_backend(backend);
                let violation = subject.violations(&config).first().cloned()?;
                Some((seed, config, violation))
            })
        });
        let (seed, config, violation) =
            found.unwrap_or_else(|| panic!("no violation found under {}", backend.name()));

        let subject = Subject::from_seed(seed);
        let entry = distill(&subject, &config, &violation);
        assert_eq!(entry.backend, backend);
        assert!(
            entry.reduced_statements <= entry.original_statements,
            "reduction grew the program"
        );

        // Replay re-verifies, and a second replay over a freshly built
        // subject is outcome-identical (determinism across processes).
        let first = entry.replay(&subject);
        assert!(
            first.passed(),
            "freshly distilled entry failed replay under {}: {first:?}",
            backend.name()
        );
        let again = entry.replay(&Subject::from_seed(entry.seed));
        assert_eq!(first, again, "replay is nondeterministic");

        // Culprit semantics hold at the recorded site: disabling a
        // pass-level culprit makes the violation vanish, while a
        // codegen-level ("isel") culprit survives an empty pass pipeline.
        let site = SiteQuery {
            conjecture: entry.conjecture,
            line: Some(entry.line),
            variable: &entry.variable,
            function: None,
        };
        match entry.culprit.as_deref() {
            Some("isel") => assert!(
                subject.query(&entry.config().with_pass_budget(0), &site),
                "isel-attributed violation vanished without any passes"
            ),
            Some(culprit) => assert!(
                !subject.query(&entry.config().with_disabled_pass(culprit), &site),
                "violation survived disabling its culprit `{culprit}`"
            ),
            None => {}
        }
    }
}
