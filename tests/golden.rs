//! Golden-file tests for the CI-facing emitters: baseline documents,
//! baseline diffs (text/JSON/SARIF/JUnit), SARIF logs, JUnit XML, and
//! corpus entries are compared byte-for-byte against checked-in fixtures
//! under `tests/golden/`.
//!
//! When an emitter changes on purpose, re-bless the fixtures with
//! `HOLES_BLESS=1 cargo test --test golden` and review the diff like any
//! other code change.

use std::path::Path;

use holes::compiler::{BackendKind, OptLevel, Personality};
use holes::core::{Conjecture, Observed};
use holes::pipeline::baseline::Baseline;
use holes::pipeline::corpus::{Corpus, CorpusEntry};
use holes::pipeline::report::junit::{junit_xml, CaseOutcome, TestCase};
use holes::pipeline::report::sarif::{sarif_log, SarifResult};
use holes::pipeline::shard::{run_shard, CampaignSpec};
use holes::progen::SeedRange;

/// Compare `actual` against the fixture `tests/golden/<name>`, or rewrite
/// the fixture when `HOLES_BLESS=1` is set.
fn check(name: &str, actual: &str) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("HOLES_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); bless it with `HOLES_BLESS=1 cargo test --test golden`",
            path.display()
        )
    });
    assert_eq!(
        actual, expected,
        "`{name}` drifted from its golden fixture; if the change is \
         intended, re-bless with `HOLES_BLESS=1 cargo test --test golden`"
    );
}

/// Record a baseline from a real (deterministic) campaign run.
fn recorded_baseline(seeds: &str) -> Baseline {
    let range: SeedRange = seeds.parse().unwrap();
    let spec = CampaignSpec::new(Personality::Ccg, Personality::Ccg.trunk(), range);
    let shard = run_shard(&spec).unwrap();
    Baseline::from_tallies(&shard.spec, &shard.result.tallies())
}

#[test]
fn baseline_document_bytes_are_stable() {
    let baseline = recorded_baseline("2500..2503");
    check("baseline.json", &baseline.to_json().to_pretty());
}

#[test]
fn baseline_diff_renderings_are_stable() {
    let baseline = recorded_baseline("2500..2503");
    let run = recorded_baseline("2500..2504");
    let diff = baseline.diff(&run).unwrap();
    check("diff.txt", &diff.render());
    check("diff.json", &diff.to_json().to_pretty());
    check("diff.sarif.json", &diff.sarif().to_pretty());
    check("diff.junit.xml", &diff.junit());
}

#[test]
fn sarif_log_bytes_are_stable() {
    check("empty.sarif.json", &sarif_log(&[]).to_pretty());
    let results = vec![
        SarifResult {
            rule: Conjecture::C1,
            level: "warning",
            message: "C1 violation: variable `j17` at line 48 of seed 2500".to_owned(),
            uri: "seed-2500.minic".to_owned(),
            line: 48,
            fingerprint: "s2500:C1:L48:j17".to_owned(),
        },
        SarifResult {
            rule: Conjecture::C3,
            level: "error",
            message: "C3 violation: variable `g2` at line 7 of seed 41".to_owned(),
            uri: "seed-41.minic".to_owned(),
            line: 7,
            fingerprint: "s41:C3:L7:g2".to_owned(),
        },
    ];
    check("report.sarif.json", &sarif_log(&results).to_pretty());
}

#[test]
fn junit_xml_bytes_are_stable() {
    let cases = vec![
        TestCase {
            classname: "holes.C1".to_owned(),
            name: "s2500:C1:L48:j17".to_owned(),
            outcome: CaseOutcome::Passed,
        },
        TestCase {
            classname: "holes.C2".to_owned(),
            name: "s7:C2:L3:a0".to_owned(),
            outcome: CaseOutcome::Failed {
                message: "new violation, not in the baseline".to_owned(),
            },
        },
        TestCase {
            classname: "holes.C3".to_owned(),
            name: "s9:C3:L12:b1".to_owned(),
            outcome: CaseOutcome::Skipped {
                message: "fixed: in the baseline, absent from this run".to_owned(),
            },
        },
    ];
    check("report.junit.xml", &junit_xml("baseline-diff", &cases));
}

#[test]
fn corpus_document_bytes_are_stable() {
    let mut corpus = Corpus::new();
    corpus.add(CorpusEntry {
        seed: 2500,
        personality: Personality::Ccg,
        version: Personality::Ccg.trunk(),
        level: OptLevel::Og,
        backend: BackendKind::Reg,
        conjecture: Conjecture::C1,
        line: 48,
        variable: "j17".to_owned(),
        observed: Observed::OptimizedOut,
        culprit: Some("tree-ccp".to_owned()),
        original_statements: 41,
        reduced_statements: 12,
        reduced_source: "int j17 = 1;\nreturn j17;\n".to_owned(),
    });
    corpus.add(CorpusEntry {
        seed: 9,
        personality: Personality::Lcc,
        version: 2,
        level: OptLevel::O2,
        backend: BackendKind::Stack,
        conjecture: Conjecture::C2,
        line: 3,
        variable: "a0".to_owned(),
        observed: Observed::NotVisible,
        culprit: None,
        original_statements: 17,
        reduced_statements: 17,
        reduced_source: "int a0 = 0;\n".to_owned(),
    });
    check("corpus.json", &corpus.to_json().to_pretty());
}
