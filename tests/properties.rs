//! Property-based tests (proptest) over the core invariants of the
//! reproduction.

use proptest::prelude::*;

use holes_compiler::{compile, CompilerConfig, OptLevel, Personality};
use holes_debugger::{trace, DebuggerKind};
use holes_minic::ast::Ty;
use holes_minic::interp::Interpreter;
use holes_minic::validate::validate;
use holes_progen::{GeneratorOptions, ProgramGenerator};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Integer wrapping is idempotent and stays within the type's range for
    /// every scalar type and every value.
    #[test]
    fn ty_wrap_is_idempotent_and_bounded(value in any::<i64>(), index in 0usize..8) {
        let ty = Ty::SCALARS[index];
        let wrapped = ty.wrap(value);
        prop_assert_eq!(ty.wrap(wrapped), wrapped);
        if ty.bits() < 64 {
            let bound = 1i128 << ty.bits();
            prop_assert!((i128::from(wrapped)).abs() < bound);
        }
    }

    /// Every generated program is structurally valid and terminates in the
    /// reference interpreter, for arbitrary seeds.
    #[test]
    fn generated_programs_are_valid_and_terminate(seed in 0u64..5_000) {
        let generated = ProgramGenerator::from_seed(seed).generate();
        prop_assert_eq!(validate(&generated.program), Ok(()));
        prop_assert!(Interpreter::new(&generated.program).run().is_ok());
    }

    /// Generator option assortments always have consistent ranges.
    #[test]
    fn option_assortments_are_consistent(seed in any::<u64>()) {
        let options = GeneratorOptions::assortment(seed);
        prop_assert!(options.min_globals <= options.max_globals);
        prop_assert!(options.min_locals <= options.max_locals);
        prop_assert!(options.min_stmts <= options.max_stmts);
        prop_assert!(options.max_array_dims >= 1 && options.max_array_dims <= 3);
    }

    /// Compilation preserves semantics at a randomly chosen optimization
    /// level and version, for both personalities.
    #[test]
    fn compilation_preserves_semantics(seed in 0u64..300, level_index in 0usize..5, version in 0usize..6) {
        let generated = ProgramGenerator::from_seed(seed).generate();
        let reference = Interpreter::new(&generated.program).run().unwrap();
        for personality in [Personality::Ccg, Personality::Lcc] {
            let levels = personality.levels();
            let level = levels[level_index % levels.len()];
            let config = CompilerConfig::new(personality, level).with_version(version);
            let exe = compile(&generated.program, &config);
            let outcome = exe.run().unwrap();
            prop_assert!(outcome.matches(&reference));
        }
    }

    /// The emitted line table is well-formed: rows sorted by address and every
    /// steppable line has a first address.
    #[test]
    fn line_tables_are_well_formed(seed in 0u64..300) {
        let generated = ProgramGenerator::from_seed(seed).generate();
        let exe = compile(
            &generated.program,
            &CompilerConfig::new(Personality::Ccg, OptLevel::O2),
        );
        let rows = exe.debug.line_table.rows();
        prop_assert!(rows.windows(2).all(|w| w[0].address <= w[1].address));
        for line in exe.debug.line_table.steppable_lines() {
            prop_assert!(exe.debug.line_table.first_address_of_line(line).is_some());
        }
    }

    /// Debugger metrics stay within the unit interval for arbitrary programs
    /// and levels.
    #[test]
    fn metrics_are_bounded(seed in 0u64..200, level_index in 0usize..5) {
        let generated = ProgramGenerator::from_seed(seed).generate();
        let personality = Personality::Ccg;
        let levels = personality.levels();
        let level = levels[level_index % levels.len()];
        let baseline = trace(
            &compile(&generated.program, &CompilerConfig::new(personality, OptLevel::O0)),
            DebuggerKind::GdbLike,
        );
        let optimized = trace(
            &compile(&generated.program, &CompilerConfig::new(personality, level)),
            DebuggerKind::GdbLike,
        );
        let metrics = holes_core::metrics::Metrics::compute(&optimized, &baseline);
        prop_assert!((0.0..=1.0).contains(&metrics.line_coverage));
        prop_assert!((0.0..=1.0).contains(&metrics.availability));
        prop_assert!((0.0..=1.0).contains(&metrics.product));
    }

    /// The cross-backend differential oracle: on defect-free
    /// configurations the register VM, the stack VM, and the frame-ABI
    /// backend are semantically equivalent end to end — same observable run
    /// outcome as the reference interpreter, same steppable and reached
    /// source lines, and the same variable availability *and values* at
    /// every matching line stop. Any divergence would mean one backend's
    /// codegen or location descriptions are wrong, so this property is what
    /// licenses attributing backend-only violations to the injected
    /// spill/frame defects rather than to the backend itself.
    #[test]
    fn backends_agree_on_defect_free_traces(
        seed in 0u64..250,
        level_index in 0usize..7,
        personality_index in 0usize..2,
    ) {
        use holes_compiler::BackendKind;
        let generated = ProgramGenerator::from_seed(seed).generate();
        let reference = Interpreter::new(&generated.program).run().unwrap();
        let personality = [Personality::Ccg, Personality::Lcc][personality_index];
        let levels: Vec<OptLevel> = std::iter::once(OptLevel::O0)
            .chain(personality.levels().iter().copied())
            .collect();
        let level = levels[level_index % levels.len()];
        let reg_config = CompilerConfig::new(personality, level).without_defects();
        let reg_exe = compile(&generated.program, &reg_config);
        prop_assert!(reg_exe.run().unwrap().matches(&reference));
        let kind = DebuggerKind::native_for(personality);
        let reg_trace = trace(&reg_exe, kind);
        for backend in [BackendKind::Stack, BackendKind::Frame] {
            let other_config = reg_config.clone().with_backend(backend);
            let other_exe = compile(&generated.program, &other_config);
            prop_assert!(other_exe.run().unwrap().matches(&reference));
            let other_trace = trace(&other_exe, kind);
            prop_assert_eq!(&reg_trace.steppable_lines, &other_trace.steppable_lines);
            let reg_lines: Vec<u32> = reg_trace.reached.keys().copied().collect();
            let other_lines: Vec<u32> = other_trace.reached.keys().copied().collect();
            prop_assert_eq!(&reg_lines, &other_lines, "reached lines diverge ({})", backend);
            for &line in &reg_lines {
                let stop = reg_trace.stop_at(line).unwrap();
                for variable in &stop.variables {
                    let reg_status = reg_trace.var_at(line, &variable.name).unwrap();
                    let other_status = other_trace.var_at(line, &variable.name).unwrap();
                    prop_assert_eq!(
                        reg_status,
                        other_status,
                        "seed {} {} {} {}: line {} variable {}",
                        seed,
                        personality,
                        level,
                        backend,
                        line,
                        variable.name
                    );
                }
                // The variable listings cover the same names in both directions.
                let other_stop = other_trace.stop_at(line).unwrap();
                prop_assert_eq!(stop.variables.len(), other_stop.variables.len());
            }
        }
    }

    /// The planned tracer is invisible: for arbitrary programs, both
    /// backends, both debugger personalities, and every optimization level
    /// (O0 included), servicing stops from a precomputed [`StopPlan`]
    /// produces a `DebugTrace` **equal** (full structural equality — stops,
    /// values, names, line universe) to the unplanned reference path that
    /// re-resolves scope DIEs and location lists at every stop.
    #[test]
    fn planned_traces_equal_the_unplanned_reference(
        seed in 0u64..300,
        level_index in 0usize..7,
        personality_index in 0usize..2,
        backend_index in 0usize..3,
    ) {
        use holes_compiler::BackendKind;
        use holes_debugger::{trace_unplanned, trace_with_plan, StopPlan};
        let generated = ProgramGenerator::from_seed(seed).generate();
        let personality = [Personality::Ccg, Personality::Lcc][personality_index];
        let backend = BackendKind::ALL[backend_index];
        let levels: Vec<OptLevel> = std::iter::once(OptLevel::O0)
            .chain(personality.levels().iter().copied())
            .collect();
        let level = levels[level_index % levels.len()];
        let config = CompilerConfig::new(personality, level).with_backend(backend);
        let exe = compile(&generated.program, &config);
        for kind in [DebuggerKind::GdbLike, DebuggerKind::LldbLike] {
            let plan = StopPlan::compute(&exe, kind);
            let planned = trace_with_plan(&exe, &plan);
            let reference = trace_unplanned(&exe, kind);
            prop_assert_eq!(
                &planned,
                &reference,
                "planned trace diverged: seed {} {} {} {} {:?}",
                seed,
                personality,
                level,
                backend,
                kind
            );
            // The public `trace` entry point is the planned path.
            prop_assert_eq!(&trace(&exe, kind), &reference);
        }
    }

    /// The defect-free compiler never produces conjecture violations: the
    /// conjectures only fire on injected (catalogued) defects.
    #[test]
    fn defect_free_compilers_never_violate(seed in 0u64..150, level_index in 0usize..5) {
        let generated = ProgramGenerator::from_seed(seed).generate();
        let subject = holes_pipeline::Subject::from_generated(generated);
        for personality in [Personality::Ccg, Personality::Lcc] {
            let levels = personality.levels();
            let level = levels[level_index % levels.len()];
            let config = CompilerConfig::new(personality, level).without_defects();
            prop_assert!(subject.violations(&config).is_empty());
        }
    }

    /// The cached oracle is invisible: a subject's memoized `violations()`
    /// — cold, warm, and via a cache-sharing clone — always equals the
    /// uncached compile + trace + check_all composition.
    #[test]
    fn cached_and_uncached_oracles_agree(seed in 0u64..400, level_index in 0usize..5, version in 0usize..6) {
        let generated = ProgramGenerator::from_seed(seed).generate();
        let subject = holes_pipeline::Subject::from_generated(generated);
        for personality in [Personality::Ccg, Personality::Lcc] {
            let levels = personality.levels();
            let level = levels[level_index % levels.len()];
            let config = CompilerConfig::new(personality, level).with_version(version);
            let uncached = {
                let exe = compile(&subject.program, &config);
                let t = trace(&exe, DebuggerKind::native_for(personality));
                holes_core::check_all(&subject.program, &subject.analysis, &subject.source, &t)
            };
            let cold = subject.violations(&config);
            let warm = subject.violations(&config);
            let clone = subject.clone().violations(&config);
            prop_assert_eq!(&cold, &uncached);
            prop_assert_eq!(&warm, &uncached);
            prop_assert_eq!(&clone, &uncached);
            prop_assert_eq!(subject.cache_stats().compiles, subject.cache_stats().checks);
            // The targeted oracle agrees with the full sweep, violation by
            // violation.
            for violation in &uncached {
                prop_assert!(subject.violation_occurs(&config, violation));
            }
        }
    }

    /// Binary-search bisection returns the same culprit as the linear
    /// prefix scan for every violation of a seeded pool.
    #[test]
    fn binary_and_linear_bisection_agree(seed in 0u64..400, level_index in 0usize..5) {
        use holes_pipeline::triage::{bisect, bisect_linear};
        let generated = ProgramGenerator::from_seed(seed).generate();
        let subject = holes_pipeline::Subject::from_generated(generated);
        let personality = Personality::Lcc;
        let levels = personality.levels();
        let level = levels[level_index % levels.len()];
        let config = CompilerConfig::new(personality, level);
        for violation in subject.violations(&config) {
            let binary = bisect(&subject, &config, &violation);
            let linear = bisect_linear(&subject, &config, &violation);
            prop_assert_eq!(binary.culprits, linear.culprits, "culprit divergence on {:?}", violation);
        }
    }

    /// Merging K sharded campaign runs — round-tripped through their JSON
    /// shard files — reproduces the unsharded campaign byte-for-byte, for
    /// random shard counts, seed ranges, and personalities.
    #[test]
    fn sharded_campaigns_merge_to_the_monolithic_run(
        start in 0u64..10_000,
        len in 1u64..12,
        shards in 1u64..7,
        personality_index in 0usize..2,
    ) {
        use holes_core::json::Json;
        use holes_pipeline::shard::{merge_shards, run_shard, CampaignShard, CampaignSpec};
        use holes_progen::SeedRange;

        let personality = [Personality::Ccg, Personality::Lcc][personality_index];
        let seeds = SeedRange::new(start, start + len);
        let spec = CampaignSpec::new(personality, personality.trunk(), seeds);
        let monolithic = run_shard(&spec).unwrap();

        let mut runs: Vec<CampaignShard> = Vec::new();
        for shard in 0..shards {
            let run = run_shard(&spec.clone().with_shard(shards, shard)).unwrap();
            // Round-trip through the serialized shard file, as a real
            // multi-machine campaign would.
            let rendered = run.to_json().to_pretty();
            let reparsed = CampaignShard::from_json(&Json::parse(&rendered).unwrap()).unwrap();
            prop_assert_eq!(&reparsed, &run, "shard file round-trip changed the shard");
            runs.push(reparsed);
        }

        let merged = merge_shards(runs).unwrap();
        prop_assert_eq!(&merged.records, &monolithic.result.records);
        prop_assert_eq!(merged.programs, monolithic.result.programs);
        prop_assert_eq!(merged.table1(), monolithic.result.table1());
        prop_assert_eq!(merged.venn(), monolithic.result.venn());
        prop_assert_eq!(
            merged.summary_json().to_pretty(),
            monolithic.result.summary_json().to_pretty(),
            "machine-readable summaries must be byte-identical"
        );
    }

    /// A campaign over a cold persistent store, re-run warm in a fresh
    /// in-memory cache, yields byte-identical campaign JSON with zero
    /// recomputation — and a corrupted or truncated store file is rejected
    /// and recomputed, never trusted, for arbitrary ranges and damage.
    #[test]
    fn warm_store_campaigns_are_byte_identical_and_corruption_tolerant(
        start in 20_000u64..30_000,
        len in 1u64..6,
        personality_index in 0usize..2,
        damage in 0usize..64,
        damage_kind in 0usize..3,
    ) {
        use std::sync::Arc;
        use holes_pipeline::campaign::run_campaign;
        use holes_pipeline::shard::{CampaignShard, CampaignSpec};
        use holes_pipeline::{ArtifactStore, CacheStats, Subject};
        use holes_progen::SeedRange;

        let personality = [Personality::Ccg, Personality::Lcc][personality_index];
        let seeds = SeedRange::new(start, start + len);
        let root = std::env::temp_dir().join(format!(
            "holes-prop-store-{}-{start}-{len}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let store = Arc::new(ArtifactStore::open(&root).unwrap());

        // One campaign run over an explicit pool bound to `store`, rendered
        // as the canonical shard JSON.
        let campaign_json = |store: &Arc<ArtifactStore>| -> (String, CacheStats) {
            let subjects: Vec<Subject> = seeds
                .iter()
                .map(|seed| {
                    // `with_fresh_cache` guarantees a store-free cold cache
                    // even if the test environment exports HOLES_CACHE_DIR.
                    let subject = Subject::from_seed(seed).with_fresh_cache();
                    subject.attach_store(Arc::clone(store));
                    subject
                })
                .collect();
            let result = run_campaign(&subjects, personality, personality.trunk());
            let mut stats = CacheStats::default();
            for subject in &subjects {
                stats.absorb(subject.cache_stats());
            }
            let shard = CampaignShard {
                spec: CampaignSpec::new(personality, personality.trunk(), seeds),
                result,
            };
            (shard.to_json().to_pretty(), stats)
        };

        let (cold_json, cold_stats) = campaign_json(&store);
        prop_assert!(cold_stats.compiles > 0, "cold run compiled nothing");
        prop_assert_eq!(cold_stats.disk_loads, 0);

        // Warm run: fresh caches, same store — byte-identical, zero work.
        let (warm_json, warm_stats) = campaign_json(&store);
        prop_assert_eq!(&warm_json, &cold_json, "warm-store campaign JSON diverged");
        prop_assert_eq!(warm_stats.compiles, 0, "warm run recompiled");
        prop_assert_eq!(warm_stats.traces, 0, "warm run retraced");
        prop_assert_eq!(warm_stats.checks, 0, "warm run rechecked");
        prop_assert!(warm_stats.disk_loads > 0);

        // Damage every store file (cycling truncation, garbling, and
        // checksum-breaking, with the cycle offset chosen by proptest): the
        // next run must reject them all, recompute from scratch, and still
        // agree byte-for-byte.
        let mut files: Vec<std::path::PathBuf> = Vec::new();
        let mut stack = vec![root.clone()];
        while let Some(dir) = stack.pop() {
            for entry in std::fs::read_dir(&dir).unwrap().flatten() {
                let path = entry.path();
                if path.is_dir() { stack.push(path); } else { files.push(path); }
            }
        }
        files.sort();
        prop_assert!(!files.is_empty());
        for (index, victim) in files.iter().enumerate() {
            let text = std::fs::read_to_string(victim).unwrap();
            let bad = match (index + damage + damage_kind) % 3 {
                0 => text[..text.len() / 2].to_owned(),
                1 => String::from("{\"format\":\"holes.artifact/v1\""),
                _ => text.replace("\"checksum\":\"", "\"checksum\":\"f0"),
            };
            std::fs::write(victim, bad).unwrap();
        }

        let (damaged_json, damaged_stats) = campaign_json(&store);
        prop_assert_eq!(&damaged_json, &cold_json, "corrupted store changed the campaign");
        prop_assert_eq!(damaged_stats.disk_loads, 0, "a corrupted file was trusted");
        prop_assert_eq!(damaged_stats.compiles, cold_stats.compiles);
        prop_assert!(store.stats().rejected > 0);

        // The recomputation healed the store: a final warm run is free again.
        let (healed_json, healed_stats) = campaign_json(&store);
        prop_assert_eq!(&healed_json, &cold_json);
        prop_assert_eq!(healed_stats.compiles, 0);

        let _ = std::fs::remove_dir_all(&root);
    }

    /// Kill-safe resume: truncating a streamed campaign file at an
    /// **arbitrary byte** — mid-header, mid-record, mid-footer, anywhere —
    /// and rerunning with resume reproduces the uninterrupted stream
    /// byte-for-byte, for random seed ranges and kill points.
    #[test]
    fn killed_streams_resume_byte_identically(
        start in 0u64..10_000,
        len in 1u64..8,
        kill_permille in 0u64..1001,
    ) {
        use holes_pipeline::fault::FaultPolicy;
        use holes_pipeline::shard::CampaignSpec;
        use holes_pipeline::stream::{resume_shard_streaming, run_shard_streaming_with_policy};
        use holes_progen::SeedRange;

        let personality = Personality::Ccg;
        let seeds = SeedRange::new(start, start + len);
        let spec = CampaignSpec::new(personality, personality.trunk(), seeds);
        let policy = FaultPolicy::default();

        let mut full: Vec<u8> = Vec::new();
        run_shard_streaming_with_policy(&spec, &mut full, &policy).unwrap();

        // The kill point covers the whole file, endpoints included: 0 is a
        // fresh start, `full.len()` an already-complete no-op.
        let kill = (full.len() * kill_permille as usize / 1000).min(full.len());
        let path = std::env::temp_dir().join(format!(
            "holes-prop-resume-{}-{start}-{len}-{kill}.jsonl",
            std::process::id()
        ));
        std::fs::write(&path, &full[..kill]).unwrap();

        let outcome = resume_shard_streaming(&spec, &path, &policy);
        let resumed = std::fs::read(&path);
        let _ = std::fs::remove_file(&path);
        let outcome = outcome.unwrap();
        prop_assert_eq!(
            resumed.unwrap(),
            full,
            "kill at byte {} of {} did not resume byte-identically",
            kill,
            outcome.records
        );
    }

    /// Store chaos is invisible to results: an arbitrary schedule of
    /// injected transient I/O failures changes only the store statistics —
    /// the campaign JSON stays byte-identical to a run over an undisturbed
    /// store, and never silently loses records.
    #[test]
    fn failing_store_schedules_never_change_campaign_results(
        start in 30_000u64..40_000,
        len in 1u64..5,
        schedule_bits in any::<u64>(),
        schedule_len in 0usize..64,
    ) {
        use std::sync::Arc;
        use holes_pipeline::campaign::run_campaign;
        use holes_pipeline::shard::{CampaignShard, CampaignSpec};
        use holes_pipeline::store::io::FailingIo;
        use holes_pipeline::{ArtifactStore, Subject};
        use holes_progen::SeedRange;

        let personality = Personality::Ccg;
        let seeds = SeedRange::new(start, start + len);
        let schedule: Vec<bool> = (0..schedule_len)
            .map(|bit| schedule_bits >> bit & 1 == 1)
            .collect();
        let campaign_json = |store: Option<&Arc<ArtifactStore>>| -> String {
            let subjects: Vec<Subject> = seeds
                .iter()
                .map(|seed| {
                    let subject = Subject::from_seed(seed).with_fresh_cache();
                    if let Some(store) = store {
                        subject.attach_store(Arc::clone(store));
                    }
                    subject
                })
                .collect();
            let result = run_campaign(&subjects, personality, personality.trunk());
            let shard = CampaignShard {
                spec: CampaignSpec::new(personality, personality.trunk(), seeds),
                result,
            };
            shard.to_json().to_pretty()
        };

        let reference = campaign_json(None);

        let root = std::env::temp_dir().join(format!(
            "holes-prop-chaos-{}-{start}-{len}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        // The schedule also governs `open`: when it fails the store's
        // creation outright, degrading to no store at all is the correct
        // containment — results must still match.
        let store = ArtifactStore::open_with_io(
            &root,
            Box::new(FailingIo::script(schedule.iter().copied())),
        )
        .ok()
        .map(Arc::new);

        let chaotic = campaign_json(store.as_ref());
        prop_assert_eq!(&chaotic, &reference, "store chaos changed campaign results");
        if let Some(store) = &store {
            // Cold misses happen with or without chaos; errors and retries
            // are bounded by the schedule's failure count.
            let stats = store.stats();
            prop_assert!(stats.retries + stats.store_errors <= schedule.len() * 2);
            // A second pass over the (possibly partially-populated) store
            // still agrees: whatever survived the chaos is valid.
            let warm = campaign_json(Some(store));
            prop_assert_eq!(&warm, &reference, "chaos-surviving store corrupted results");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    /// Diffing a run's recorded baseline against itself is always empty:
    /// every fingerprint is known, nothing is new or fixed, and the gate
    /// stays silent — for arbitrary ranges and both personalities.
    #[test]
    fn baseline_diff_against_itself_is_always_empty(
        start in 0u64..20_000,
        len in 0u64..4,
        personality_index in 0usize..2,
    ) {
        use holes_pipeline::baseline::Baseline;
        use holes_pipeline::shard::{run_shard, CampaignSpec};
        use holes_progen::SeedRange;

        let personality = [Personality::Ccg, Personality::Lcc][personality_index];
        let spec = CampaignSpec::new(
            personality,
            personality.trunk(),
            SeedRange::new(start, start + len),
        );
        let shard = run_shard(&spec).unwrap();
        let baseline = Baseline::from_tallies(&spec, &shard.result.tallies());
        let diff = baseline.diff(&baseline).unwrap();
        prop_assert_eq!(diff.known.len(), baseline.fingerprints.len());
        prop_assert!(diff.new.is_empty());
        prop_assert!(diff.fixed.is_empty());
        prop_assert!(!diff.has_regressions());
        prop_assert!(diff.render().contains("new: 0"));
        // And the document round-trips losslessly through its wire format.
        let text = baseline.to_json().to_pretty();
        let json = holes_core::json::Json::parse(&text).unwrap();
        prop_assert_eq!(Baseline::from_json(&json).unwrap().to_json().to_pretty(), text);
    }

    /// Recording a baseline from K shards folded in reverse order yields
    /// bytes identical to the unsharded recording, for arbitrary small
    /// ranges and shard counts — the CI property that lets sharded fleets
    /// and single-host runs share one baseline file.
    #[test]
    fn sharded_baseline_recording_is_byte_identical_for_any_sharding(
        start in 0u64..20_000,
        len in 1u64..4,
        shards in 1u64..4,
    ) {
        use holes_pipeline::baseline::Baseline;
        use holes_pipeline::campaign::CampaignTallies;
        use holes_pipeline::shard::{run_shard, CampaignSpec};
        use holes_progen::SeedRange;

        let range = SeedRange::new(start, start + len);
        let spec = CampaignSpec::new(Personality::Ccg, Personality::Ccg.trunk(), range);
        let monolithic = run_shard(&spec).unwrap();
        let reference =
            Baseline::from_tallies(&spec, &monolithic.result.tallies()).to_json().to_pretty();

        let mut tallies =
            CampaignTallies::new(spec.personality.levels().to_vec(), len as usize);
        for index in (0..shards).rev() {
            let shard = run_shard(&spec.clone().with_shard(shards, index)).unwrap();
            for record in &shard.result.records {
                tallies.add(record);
            }
        }
        let sharded = Baseline::from_tallies(&spec, &tallies).to_json().to_pretty();
        prop_assert_eq!(sharded, reference, "K={} changed the recorded bytes", shards);
    }

    /// Corpus documents round-trip losslessly for arbitrary (valid) entry
    /// contents, and flipping any single byte of the serialized form never
    /// panics the parser: it either surfaces a named error or yields a
    /// different-but-valid corpus that itself round-trips.
    #[test]
    fn corpus_documents_round_trip_and_survive_byte_flips(
        seed in any::<u64>(),
        version in 0usize..6,
        level_index in 0usize..6,
        personality_index in 0usize..2,
        backend_index in 0usize..3,
        conjecture_index in 0usize..3,
        line in 1u32..500,
        variable_index in 0usize..6,
        statements in 1usize..200,
        reduced in 1usize..200,
        flip in 0usize..4096,
        replacement in any::<u8>(),
    ) {
        use holes_compiler::BackendKind;
        use holes_core::json::Json;
        use holes_core::{Conjecture, Observed};
        use holes_pipeline::corpus::{Corpus, CorpusEntry};

        let personality = [Personality::Ccg, Personality::Lcc][personality_index];
        let mut corpus = Corpus::new();
        corpus.add(CorpusEntry {
            seed,
            personality,
            version,
            level: personality.levels()[level_index % personality.levels().len()],
            backend: [BackendKind::Reg, BackendKind::Stack, BackendKind::Frame][backend_index],
            conjecture: Conjecture::ALL[conjecture_index],
            line,
            variable: ["a", "j17", "v_2", "tmp0", "g", "x9"][variable_index].to_owned(),
            observed: Observed::OptimizedOut,
            culprit: Some("tree-ccp".to_owned()),
            original_statements: statements.max(reduced),
            reduced_statements: reduced,
            reduced_source: "int a = 0;\n".to_owned(),
        });
        let text = corpus.to_json().to_pretty();

        // Lossless round trip of the untampered document.
        let parsed = Corpus::from_json(&Json::parse(&text).unwrap()).unwrap();
        prop_assert_eq!(parsed.to_json().to_pretty(), text.clone());

        // A single flipped byte never panics; when the flip happens to
        // leave a parseable document, that document round-trips too.
        let mut bytes = text.into_bytes();
        let index = flip % bytes.len();
        bytes[index] = replacement;
        if let Ok(tampered) = String::from_utf8(bytes) {
            if let Ok(json) = Json::parse(&tampered) {
                if let Ok(reread) = Corpus::from_json(&json) {
                    let round = reread.to_json().to_pretty();
                    let again = Corpus::from_json(&Json::parse(&round).unwrap()).unwrap();
                    prop_assert_eq!(again.to_json().to_pretty(), round);
                }
            }
        }
    }
}
