//! Acceptance tests for the distributed campaign service: preemption-proof
//! determinism under random kill/revocation schedules, journal-based
//! resume without re-evaluation, and a real-TCP end-to-end run.
//!
//! The proptests drive [`ServeState`] — the coordinator's actual service
//! core, clock passed in as a value — through randomized schedules of
//! lease grants, worker deaths, deadline revocations, late submissions,
//! and coordinator restarts, then assert the two load-bearing guarantees:
//!
//! 1. the merged stream is **byte-identical** to a single-process
//!    unsharded run of the same spec, no matter the schedule;
//! 2. a shard journaled as complete is never leased (hence never
//!    re-evaluated) again, across any number of coordinator restarts.

use std::collections::HashSet;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use holes_compiler::Personality;
use holes_pipeline::fault::FaultPolicy;
use holes_pipeline::serve::lease::GRACE_BEATS;
use holes_pipeline::serve::{
    run_worker, Coordinator, LeaseConfig, Reply, Request, ServeConfig, ServeState, WorkerConfig,
};
use holes_pipeline::shard::{CampaignShard, CampaignSpec};
use holes_pipeline::stream::{read_jsonl_shard, run_shard_streaming};
use holes_progen::SeedRange;

fn spec(start: u64, len: u64) -> CampaignSpec {
    CampaignSpec::new(
        Personality::Ccg,
        Personality::Ccg.trunk(),
        SeedRange::new(start, start + len),
    )
}

/// The single-process unsharded stream the service must reproduce.
fn reference_stream(spec: &CampaignSpec) -> Vec<u8> {
    let mut out = Vec::new();
    run_shard_streaming(spec, &mut out).expect("reference run");
    out
}

/// What a worker does to a leased shard, minus the socket: stream the
/// evaluation and read the result back as a submittable shard.
fn evaluate(spec: &CampaignSpec) -> CampaignShard {
    let mut out = Vec::new();
    run_shard_streaming(spec, &mut out).expect("shard evaluates");
    read_jsonl_shard(&String::from_utf8(out).expect("UTF-8 stream")).expect("stream reads back")
}

/// A self-deleting scratch path (journals, work dirs).
struct Scratch {
    path: PathBuf,
    dir: bool,
}

impl Scratch {
    fn file(name: &str) -> Scratch {
        let path = std::env::temp_dir().join(format!("holes-serve-{name}-{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        Scratch { path, dir: false }
    }

    fn dir(name: &str) -> Scratch {
        let path = std::env::temp_dir().join(format!("holes-serve-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        Scratch { path, dir: true }
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if self.dir {
            let _ = std::fs::remove_dir_all(&self.path);
        } else {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

const HEARTBEAT: Duration = Duration::from_millis(500);

/// Expand a proptest-drawn seed into a stream of schedule events (the
/// vendored proptest has no collection strategies).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One simulated coordinator life plus its fleet's lease bookkeeping.
struct Sim {
    spec: CampaignSpec,
    config: ServeConfig,
    state: ServeState,
    now: Instant,
    /// Leases held by live simulated workers: (lease, shard spec).
    active: Vec<(u64, CampaignSpec)>,
    /// Leases whose workers died silently; they may still submit late.
    zombies: Vec<(u64, CampaignSpec)>,
    /// Shard indices ever accepted — these must never be leased again.
    accepted: HashSet<usize>,
}

impl Sim {
    fn open(spec: CampaignSpec, journal: PathBuf, lease_shards: u64) -> Sim {
        let config = ServeConfig {
            lease_shards,
            lease: LeaseConfig {
                heartbeat: HEARTBEAT,
                // The byte-identity property must hold for arbitrarily
                // vicious schedules, so quarantine (tested on its own) is
                // kept out of the picture here.
                max_attempts: u32::MAX,
            },
            journal,
            cache: None,
            cache_chaos: None,
            quiet: true,
        };
        let state = ServeState::open(&spec, &config).expect("state opens");
        Sim {
            spec,
            config,
            state,
            now: Instant::now(),
            active: Vec::new(),
            zombies: Vec::new(),
            accepted: HashSet::new(),
        }
    }

    fn lease(&mut self) {
        match self.state.handle(
            &Request::Lease {
                worker: "sim".into(),
            },
            self.now,
        ) {
            Ok(Reply::Lease { lease, spec, .. }) => {
                assert!(
                    !self.accepted.contains(&(spec.shard as usize)),
                    "shard {} was already accepted and must never be re-leased",
                    spec.shard
                );
                self.active.push((lease, spec));
            }
            Ok(Reply::Wait { .. } | Reply::Shutdown) => {}
            other => panic!("unexpected lease outcome {other:?}"),
        }
    }

    fn submit(&mut self, lease: u64, shard_spec: &CampaignSpec) {
        let shard = evaluate(shard_spec);
        let request = Request::Result {
            lease,
            shard: Box::new(shard),
        };
        match self.state.handle(&request, self.now) {
            Ok(Reply::Accepted) => {
                self.accepted.insert(shard_spec.shard as usize);
            }
            Ok(Reply::Discarded { .. }) => {}
            other => panic!("unexpected submit outcome {other:?}"),
        }
    }

    fn complete_oldest(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let (lease, shard_spec) = self.active.remove(0);
        self.submit(lease, &shard_spec);
    }

    /// The oldest live worker dies silently mid-lease.
    fn kill_oldest(&mut self) {
        if self.active.is_empty() {
            return;
        }
        let victim = self.active.remove(0);
        self.zombies.push(victim);
    }

    /// Jump past every deadline and reap — the preemption hammer.
    fn expire_leases(&mut self) {
        self.now += HEARTBEAT * (GRACE_BEATS + 1);
        self.state.reap(self.now);
        // Revoked live workers become zombies too: their eventual
        // submissions must be discarded.
        self.zombies.append(&mut self.active);
    }

    /// A dead worker's result arrives after all — revoked leases must
    /// discard it idempotently.
    fn zombie_submits(&mut self) {
        if self.zombies.is_empty() {
            return;
        }
        let (lease, shard_spec) = self.zombies.remove(0);
        self.submit(lease, &shard_spec);
    }

    fn heartbeat_all(&mut self) {
        for (lease, _) in &self.active {
            match self
                .state
                .handle(&Request::Heartbeat { lease: *lease }, self.now)
            {
                Ok(Reply::Heartbeat { active }) => {
                    assert!(active, "live lease {lease} refused a heartbeat")
                }
                other => panic!("unexpected heartbeat outcome {other:?}"),
            }
        }
    }

    /// Kill the coordinator and restart it over the same journal. Every
    /// lease dies with it; journaled shards must come back `Done`.
    fn restart(&mut self) {
        let reopened = ServeState::open(&self.spec, &self.config).expect("journal reopens");
        assert_eq!(
            reopened.recovered(),
            self.accepted.len(),
            "every acknowledged shard survives the restart"
        );
        self.state = reopened;
        self.active.clear();
        self.zombies.clear();
    }

    /// Drive the campaign to completion with a well-behaved fleet.
    fn finish(&mut self) {
        for _ in 0..10_000 {
            self.expire_leases();
            match self.state.handle(
                &Request::Lease {
                    worker: "sim".into(),
                },
                self.now,
            ) {
                Ok(Reply::Lease { lease, spec, .. }) => {
                    assert!(!self.accepted.contains(&(spec.shard as usize)));
                    self.submit(lease, &spec);
                }
                Ok(Reply::Wait { .. }) => {}
                Ok(Reply::Shutdown) => return,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        panic!("campaign failed to converge");
    }

    fn into_report(self) -> holes_pipeline::serve::ServeReport {
        self.state.into_report()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole guarantee: for random shard decompositions and random
    /// schedules of worker death, lease revocation, late (discarded)
    /// submissions, and coordinator crash/restarts, the merged stream is
    /// byte-identical to the single-process unsharded run, and no
    /// journaled shard is ever re-leased.
    #[test]
    fn any_preemption_schedule_yields_the_single_process_bytes(
        start in 2800u64..2804,
        len in 0u64..8,
        k in 1u64..5,
        schedule_seed in any::<u64>(),
        steps in 0usize..24,
    ) {
        let journal = Scratch::file(&format!("prop-{start}-{len}-{k}"));
        let campaign = spec(start, len);
        let reference = reference_stream(&campaign);

        let mut sim = Sim::open(campaign.clone(), journal.path.clone(), k);
        let mut schedule = schedule_seed;
        for _ in 0..steps {
            match splitmix64(&mut schedule) % 8 {
                0 | 1 => sim.lease(),
                2 => sim.complete_oldest(),
                3 => sim.kill_oldest(),
                4 => sim.expire_leases(),
                5 => sim.zombie_submits(),
                6 => sim.heartbeat_all(),
                _ => sim.restart(),
            }
        }
        // One mid-flight restart regardless of schedule, then run dry.
        sim.restart();
        sim.finish();

        let report = sim.into_report();
        prop_assert!(report.complete(), "every shard resolved");
        prop_assert!(report.quarantined.is_empty());
        let mut merged = Vec::new();
        report.write_merged(&mut merged).expect("merge writes");
        prop_assert_eq!(
            String::from_utf8(merged).expect("UTF-8"),
            String::from_utf8(reference).expect("UTF-8"),
            "merged stream must be byte-identical to the unsharded run"
        );
    }

    /// Journal resume in isolation: complete a random subset of shards,
    /// crash, restart — the recovered coordinator leases exactly the
    /// complement and the final merge is still byte-identical.
    #[test]
    fn restarted_coordinators_resume_without_rerunning_finished_work(
        len in 1u64..10,
        k in 2u64..6,
        done_mask in 0u64..64,
    ) {
        let journal = Scratch::file(&format!("resume-{len}-{k}-{done_mask}"));
        let campaign = spec(2810, len);
        let reference = reference_stream(&campaign);

        let mut sim = Sim::open(campaign.clone(), journal.path.clone(), k);
        // First life: complete the shards the mask selects.
        let goal: HashSet<usize> =
            (0..k as usize).filter(|i| done_mask & (1 << i) != 0).collect();
        for _ in 0..k {
            sim.lease();
        }
        let held = std::mem::take(&mut sim.active);
        for (lease, shard_spec) in held {
            if goal.contains(&(shard_spec.shard as usize)) {
                sim.submit(lease, &shard_spec);
            }
        }
        prop_assert_eq!(&sim.accepted, &goal);

        // Crash. The second life must recover exactly the accepted set and
        // never hand their shards out again (asserted inside lease()).
        sim.restart();
        sim.finish();

        let report = sim.into_report();
        prop_assert!(report.complete());
        let mut merged = Vec::new();
        report.write_merged(&mut merged).expect("merge writes");
        prop_assert_eq!(merged, reference);
    }
}

/// End-to-end over real sockets: a coordinator on an ephemeral port, three
/// concurrent `run_worker` fleets racing for leases, and a merged stream
/// byte-identical to the single-process run.
#[test]
fn tcp_fleet_reproduces_the_single_process_stream() {
    let campaign = spec(2820, 9);
    let reference = reference_stream(&campaign);
    let journal = Scratch::file("tcp");
    let config = ServeConfig {
        lease_shards: 4,
        lease: LeaseConfig {
            heartbeat: Duration::from_millis(100),
            max_attempts: 5,
        },
        journal: journal.path.clone(),
        cache: None,
        cache_chaos: None,
        quiet: true,
    };

    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let drain = std::sync::atomic::AtomicBool::new(false);
    let report = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..3)
            .map(|i| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let work_dir = Scratch::dir(&format!("tcp-w{i}"));
                    let outcome = run_worker(&WorkerConfig {
                        connect: addr,
                        work_dir: work_dir.path.clone(),
                        policy: FaultPolicy::default(),
                        worker_id: format!("w{i}"),
                        patience: Duration::from_secs(10),
                        quiet: true,
                    })
                    .expect("worker runs");
                    outcome.accepted
                })
            })
            .collect();
        let report = coordinator
            .run(&campaign, &config, &drain)
            .expect("coordinator runs");
        let accepted: usize = workers
            .into_iter()
            .map(|w| w.join().expect("worker joins"))
            .sum();
        assert_eq!(
            accepted, 4,
            "each shard accepted exactly once across the fleet"
        );
        report
    });

    assert!(report.complete());
    assert!(report.quarantined.is_empty());
    assert!(!report.drained);
    let mut merged = Vec::new();
    report.write_merged(&mut merged).expect("merge writes");
    assert_eq!(
        String::from_utf8(merged).expect("UTF-8"),
        String::from_utf8(reference).expect("UTF-8"),
    );
}

/// Peers that connect and never send a byte must not stall lease traffic:
/// request lines are read on per-connection threads, so the accept loop
/// keeps heartbeats flowing while the loris connections sit in their 10 s
/// read timeout. Before that fix each such connection froze the whole
/// coordinator for the full timeout.
#[test]
fn slow_loris_peers_do_not_stall_lease_traffic() {
    let campaign = spec(2840, 6);
    let reference = reference_stream(&campaign);
    let journal = Scratch::file("loris");
    let config = ServeConfig {
        lease_shards: 3,
        lease: LeaseConfig {
            heartbeat: Duration::from_millis(100),
            max_attempts: 5,
        },
        journal: journal.path.clone(),
        cache: None,
        cache_chaos: None,
        quiet: true,
    };

    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let _loris: Vec<std::net::TcpStream> = (0..4)
        .map(|_| std::net::TcpStream::connect(&addr).expect("loris connects"))
        .collect();
    let drain = std::sync::atomic::AtomicBool::new(false);
    let started = Instant::now();
    let report = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..2)
            .map(|i| {
                let addr = addr.clone();
                scope.spawn(move || {
                    let work_dir = Scratch::dir(&format!("loris-w{i}"));
                    run_worker(&WorkerConfig {
                        connect: addr,
                        work_dir: work_dir.path.clone(),
                        policy: FaultPolicy::default(),
                        worker_id: format!("w{i}"),
                        patience: Duration::from_secs(10),
                        quiet: true,
                    })
                    .expect("worker runs")
                })
            })
            .collect();
        let report = coordinator
            .run(&campaign, &config, &drain)
            .expect("coordinator runs");
        for worker in workers {
            worker.join().expect("worker joins");
        }
        report
    });

    assert!(
        started.elapsed() < Duration::from_secs(8),
        "stalled peers must not serialize the run behind their read \
         timeouts (took {:?})",
        started.elapsed()
    );
    assert!(report.complete());
    assert!(report.quarantined.is_empty());
    let mut merged = Vec::new();
    report.write_merged(&mut merged).expect("merge writes");
    assert_eq!(
        String::from_utf8(merged).expect("UTF-8"),
        String::from_utf8(reference).expect("UTF-8"),
    );
}

/// The per-connection thread budget is finite: once every slot is held by
/// a stalled peer, the next connection gets an immediate, clean busy error
/// instead of an unbounded thread pile (or a hang).
#[test]
fn saturated_coordinator_refuses_extra_connections_cleanly() {
    use std::io::BufRead;

    use holes_pipeline::serve::coordinator::MAX_CONNECTION_THREADS;

    let campaign = spec(2850, 2);
    let journal = Scratch::file("busy");
    let config = ServeConfig {
        lease_shards: 1,
        lease: LeaseConfig {
            heartbeat: Duration::from_millis(100),
            max_attempts: 5,
        },
        journal: journal.path.clone(),
        cache: None,
        cache_chaos: None,
        quiet: true,
    };

    let coordinator = Coordinator::bind("127.0.0.1:0").expect("bind");
    let addr = coordinator.local_addr().expect("local addr").to_string();
    let drain = std::sync::atomic::AtomicBool::new(false);
    std::thread::scope(|scope| {
        let run = scope.spawn(|| coordinator.run(&campaign, &config, &drain));
        // Fill every connection-thread slot with peers that never send.
        let _loris: Vec<std::net::TcpStream> = (0..MAX_CONNECTION_THREADS)
            .map(|_| std::net::TcpStream::connect(&addr).expect("loris connects"))
            .collect();
        // The one-over-budget connection is answered without a request.
        let extra = std::net::TcpStream::connect(&addr).expect("extra connects");
        extra
            .set_read_timeout(Some(Duration::from_secs(5)))
            .expect("read timeout");
        let mut line = String::new();
        std::io::BufReader::new(extra)
            .read_line(&mut line)
            .expect("busy reply arrives");
        assert!(line.contains("saturated"), "clean busy error: {line}");
        drain.store(true, std::sync::atomic::Ordering::SeqCst);
        let report = run.join().expect("run joins").expect("coordinator runs");
        assert!(report.drained, "no worker ever evaluated anything");
    });
}
