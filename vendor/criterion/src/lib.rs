//! A minimal, dependency-free, offline stand-in for the subset of `criterion`
//! this workspace's benches use: [`Criterion::benchmark_group`],
//! `sample_size`, `bench_function`, [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Unlike real criterion there is no statistical analysis, warm-up tuning or
//! HTML report: each benchmark runs a fixed warm-up followed by
//! `sample_size` timed samples and prints min/mean/max per-iteration times.
//! That is enough for the repository's benches, whose primary output is the
//! regenerated paper tables plus a coarse timing signal.

#![forbid(unsafe_code)]

use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark driver handed to `criterion_group!` functions.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n-- group {name} --");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }
}

/// A group of related benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let per_iter: Vec<Duration> = bencher.samples;
        if per_iter.is_empty() {
            println!("{id:<40} (no samples)");
            return self;
        }
        let min = per_iter.iter().min().copied().unwrap_or_default();
        let max = per_iter.iter().max().copied().unwrap_or_default();
        let mean = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
        println!(
            "{id:<40} [{:>12?} {:>12?} {:>12?}]  ({} samples)",
            min,
            mean,
            max,
            per_iter.len()
        );
        self
    }

    /// End the group (kept for API compatibility; printing is immediate).
    pub fn finish(self) {}
}

/// Times closures for one benchmark.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Run `routine` for one warm-up round plus `sample_size` timed samples.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundle benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $function(&mut criterion); )+
        }
    };
}

/// Produce `main` from one or more groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_time_and_report() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("shim");
        let mut runs = 0u64;
        group.sample_size(3);
        group.bench_function("count", |b| b.iter(|| runs += 1));
        group.finish();
        // One warm-up plus three samples.
        assert_eq!(runs, 4);
    }

    criterion_group!(example_group, noop_bench);

    fn noop_bench(c: &mut Criterion) {
        c.benchmark_group("noop")
            .bench_function("nothing", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn macros_compose() {
        example_group();
    }
}
