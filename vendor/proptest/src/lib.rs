//! A minimal, dependency-free, offline stand-in for the subset of `proptest`
//! this workspace uses: the [`proptest!`] macro with `arg in strategy`
//! bindings and an optional `#![proptest_config(...)]` header, range and
//! [`any`] strategies, and the `prop_assert*` macros.
//!
//! Unlike real proptest there is no shrinking and no persisted failure file:
//! each test runs `cases` deterministic samples (seeded from the test's name,
//! so failures reproduce across runs) and panics on the first failing case
//! with the sampled inputs in the panic message via `prop_assert!`'s
//! formatting.

#![forbid(unsafe_code)]

use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything a proptest-style test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig, Strategy,
    };
}

/// Per-test configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// The deterministic RNG driving all strategies of one test.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Seed from a test name: the same test always replays the same cases.
    pub fn from_name(name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            seed ^= u64::from(byte);
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng(StdRng::seed_from_u64(seed))
    }
}

/// A source of sampled values.
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// A strategy producing arbitrary values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen::<u64>() as $t
            }
        }
    )*};
}

impl_any_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.0.gen::<u64>() & 1 == 1
    }
}

impl Strategy for Any<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.0.gen::<f64>()
    }
}

/// Define property tests. Supports the subset of the real macro's grammar
/// used here: an optional `#![proptest_config(expr)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { (<$crate::ProptestConfig as ::core::default::Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

/// Assert within a property test; plain `assert!` semantics here.
#[macro_export]
macro_rules! prop_assert {
    ($($tokens:tt)*) => { assert!($($tokens)*) };
}

/// Assert equality within a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tokens:tt)*) => { assert_eq!($($tokens)*) };
}

/// Assert inequality within a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tokens:tt)*) => { assert_ne!($($tokens)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_are_bounded(v in 10u64..20, w in 0usize..3) {
            prop_assert!((10..20).contains(&v));
            prop_assert!(w < 3);
        }

        /// `any` produces varying values deterministically.
        #[test]
        fn any_is_deterministic(v in any::<i64>()) {
            let _ = v;
        }
    }

    #[test]
    fn same_name_replays_the_same_stream() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        let s = 0u64..1000;
        for _ in 0..50 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }
}
