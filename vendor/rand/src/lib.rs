//! A minimal, dependency-free, offline stand-in for the parts of the `rand`
//! crate this workspace uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range` and `gen_bool`.
//!
//! The generator is xoshiro256++ seeded through SplitMix64. It is **not** the
//! real `StdRng` (ChaCha12) and produces a different stream — which is fine
//! here: every consumer in this workspace derives its data from explicit
//! seeds, so determinism *within* this implementation is all that matters.
//! Statistical quality is far beyond what program generation needs.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named RNGs, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            // SplitMix64 expansion of the seed, as rand does for small seeds.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draw a uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Types `Rng::gen_range` can sample; ties a range's element type to the
/// sampled type so literal inference works as with the real crate.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform value in `[low, high)`, or `[low, high]` when `inclusive`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                low: $t,
                high: $t,
                inclusive: bool,
            ) -> $t {
                let span = (high as i128 - low as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        low: f64,
        high: f64,
        _inclusive: bool,
    ) -> f64 {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// Ranges `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draw a value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_between(rng, start, end, true)
    }
}

/// The user-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A value uniformly distributed over `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-8..64);
            assert!((-8..64).contains(&v));
            let u = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&u));
            let f = rng.gen_range(0.1..0.5);
            assert!((0.1..0.5).contains(&f));
            let p = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&p));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
